#!/usr/bin/env python
"""The Figure 6 comparison-analysis scenario.

Runs Global, Local, CODICIL and ACQ on the same query and prints the
statistics table, the CPJ/CMF bars and the overlap matrix -- the whole
Analysis screen, in the terminal.

Run:  python examples/compare_algorithms.py
"""

from repro import CExplorer
from repro.datasets import generate_dblp_graph


def bar(value, width=40):
    return "#" * int(round(value * width))


def main():
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())

    print("=== Comparison analysis: jim gray, degree >= 4 ===\n")
    report = explorer.compare(
        "jim gray", k=4,
        methods=("global", "local", "codicil", "acq"))

    print(report.render_text())

    print("\nSimilarity Analysis (CPJ / CMF bars):")
    for metric in ("cpj", "cmf"):
        print("  {}:".format(metric.upper()))
        for method, bars in report.quality_bars().items():
            print("    {:<8} {:<7} {}".format(method, bars[metric],
                                              bar(bars[metric])))

    print("\nMember-set overlap between methods (Jaccard):")
    matrix = report.overlap_matrix()
    methods = sorted({a for a, _ in matrix})
    header = "          " + "".join("{:>9}".format(m) for m in methods)
    print(header)
    for a in methods:
        row = "  {:<8}".format(a)
        for b in methods:
            row += "{:>9}".format(matrix[(a, b)])
        print(row)

    print("\nView links: the communities can be rendered side by side")
    for method in ("acq", "local"):
        communities = report.results[method]
        if communities:
            print("\n--- Method: {}  Communities: {} ---".format(
                method.upper(), len(communities)))
            print(explorer.display(communities[0], fmt="ascii",
                                   height=14))


if __name__ == "__main__":
    main()
