#!/usr/bin/env python
"""Plugging a custom CR algorithm into C-Explorer (the Section 3.1 API).

"A user can also plug in her own CR solution on C-Explorer through a
simple application programmer interface."  This example registers a
toy CS algorithm -- the query vertex's immediate neighbourhood,
filtered by keyword overlap -- and then uses every system facility
(search, analyze, compare, display) on it, unchanged.

Run:  python examples/plugin_algorithm.py
"""

from repro import CExplorer, Community
from repro.algorithms.registry import cs_algorithm
from repro.datasets import generate_dblp_graph


@cs_algorithm("ego-overlap",
              "query vertex + neighbours sharing >= 2 keywords")
def ego_overlap(graph, q, k, keywords=None, min_shared=2):
    """A deliberately simple plug-in: q plus the neighbours whose
    keyword sets overlap W(q) in at least `min_shared` words."""
    wq = graph.keywords(q)
    members = {q}
    for u in graph.neighbors(q):
        if len(graph.keywords(u) & wq) >= min_shared:
            members.add(u)
    return [Community(graph, members, method="ego-overlap",
                      query_vertices=(q,), k=k)]


def main():
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())

    print("Registered CS algorithms:",
          ", ".join(explorer.available_algorithms()["cs"]))

    # The new method is a first-class citizen: search it...
    communities = explorer.search("ego-overlap", "jim gray", k=0)
    community = communities[0]
    print("\nego-overlap community of Jim Gray: {} members".format(
        len(community)))

    # ... analyze it ...
    print("Analysis:", explorer.analyze(community))

    # ... and compare it against the built-in engines (Figure 6 style).
    report = explorer.compare("jim gray", k=4,
                              methods=("acq", "ego-overlap"))
    from repro.analysis.statistics import format_table
    print("\n" + format_table(report.table_rows()))

    # Display works too.
    print("\n" + explorer.display(community, fmt="ascii", height=12))


if __name__ == "__main__":
    main()
