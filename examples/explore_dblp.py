#!/usr/bin/env python
"""The Figure 1 / Figure 2 demonstration scenario, end to end.

Reproduces Section 4's "Community exploration": type an author name,
inspect the degree constraints and keywords the system suggests,
search, read the theme, open a member's profile, and continue
exploring from that member -- then save the community view as SVG.

Run:  python examples/explore_dblp.py
"""

import os

from repro import CExplorer
from repro.datasets import generate_dblp_graph
from repro.viz.render import save_svg

OUT = os.path.join(os.path.dirname(__file__), "out")


def main():
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())

    # -- the left panel: the user types a name ------------------------
    options = explorer.query_options("jim gray")
    print("Name: {}".format(options["name"]))
    print("Structure: degree >= 1 .. {}".format(options["max_k"]))
    print("Keywords: {}".format(", ".join(options["keywords"][:10])))

    # -- Search (degree >= 4, the author's keywords) ------------------
    print("\n=== Exploration: communities of Jim Gray (k=4) ===")
    communities = explorer.search("acq", "jim gray", k=4)
    print("Communities: {}".format(" ".join(
        str(i + 1) for i in range(len(communities)))))
    community = communities[0]
    print("Theme: {}".format(", ".join(community.theme(limit=8))))
    print(explorer.display(community, fmt="ascii"))

    # -- click a member: the profile pop-up (Figure 2) ----------------
    jim = explorer.resolve_vertex("jim gray")
    member = next(v for v in sorted(community.vertices) if v != jim)
    member_name = explorer.graph.display_name(member)
    print("\n=== Clicking on {} ===".format(member_name))
    print(explorer.profile(member_name).render_text())

    # -- continue exploring from the member ---------------------------
    print("\n=== Exploring {}'s own community (k=3) ===".format(
        member_name))
    onward = explorer.search("acq", member_name, k=3)
    if onward:
        print("Theme: {}".format(", ".join(onward[0].theme(limit=8))))
        print("Members: {}".format(
            ", ".join(onward[0].member_names()[:10])))

    # -- save the community as an image (the demo's .jpg button) ------
    os.makedirs(OUT, exist_ok=True)
    path = save_svg(community, os.path.join(OUT, "jim_gray_community.svg"),
                    title="Community of Jim Gray (ACQ, degree >= 4)")
    print("\nSaved community view to {}".format(path))


if __name__ == "__main__":
    main()
