#!/usr/bin/env python
"""Quickstart: load a graph, search a community, inspect and draw it.

Run:  python examples/quickstart.py
"""

from repro import CExplorer
from repro.datasets import generate_dblp_graph


def main():
    # 1. Stand up the system with the bundled DBLP-like network
    #    (the paper demos on a real DBLP snapshot; see DESIGN.md).
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())
    graph = explorer.graph
    print("Loaded graph: {} authors, {} co-authorship edges".format(
        graph.vertex_count, graph.edge_count))

    # 2. Ask for Jim Gray's attributed community with min degree 4,
    #    exactly like the Figure 1 walkthrough.
    communities = explorer.search("acq", "jim gray", k=4)
    community = communities[0]
    print("\nCommunities found: {}".format(len(communities)))
    print("Theme: {}".format(", ".join(community.theme(limit=8))))
    print("Members ({}):".format(len(community)))
    for name in community.member_names():
        print("  -", name)

    # 3. Quality metrics for the community (the Analysis panel).
    metrics = explorer.analyze(community)
    print("\nAnalysis: {} vertices, {} edges, avg degree {}, "
          "CPJ {}, CMF {}".format(
              metrics["vertices"], metrics["edges"],
              metrics["average_degree"], metrics["cpj"], metrics["cmf"]))

    # 4. Draw it (ASCII here; `fmt="svg"` gives the browser rendering).
    print("\n" + explorer.display(community, fmt="ascii"))


if __name__ == "__main__":
    main()
