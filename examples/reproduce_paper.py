#!/usr/bin/env python
"""Reproduce every paper artefact in one run (fast mode).

Walks the experiment index of DESIGN.md (E1-E12) end to end on the
default synthetic DBLP workload and prints a compact paper-vs-measured
report -- a lighter-weight companion to the full benchmark harness
(`pytest benchmarks/ --benchmark-only`), useful for a quick smoke of
the whole reproduction.

Run:  python examples/reproduce_paper.py
"""

import time

from repro.algorithms.codicil import codicil
from repro.analysis.comparison import compare_methods
from repro.analysis.statistics import format_table
from repro.core.acq import AcqQuery, acq_search, brute_force_acq
from repro.core.cltree import build_cltree
from repro.datasets import figure5_graph, generate_dblp_graph
from repro.explorer.cexplorer import CExplorer


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def main():
    print("=" * 68)
    print("C-Explorer reproduction: all paper artefacts, fast mode")
    print("=" * 68)

    # ------------------------------------------------------------ E3
    print("\n[E3] Figure 5: the example graph and its CL-tree")
    fig5 = figure5_graph()
    tree5 = build_cltree(fig5)
    print(tree5.describe())
    result = acq_search(fig5, fig5.id_of("A"), 2, keywords={"w", "x",
                                                            "y"})
    print("Worked ACQ example: {} sharing {}".format(
        result[0].member_names(), sorted(result[0].shared_keywords)))
    assert {fig5.label(v) for v in result[0]} == {"A", "C", "D"}

    # ----------------------------------------------------------- prep
    graph = generate_dblp_graph()
    explorer = CExplorer()
    explorer.add_graph("dblp", graph)
    index, build_secs = timed(build_cltree, graph)
    print("\nWorkload: {} authors / {} edges; CL-tree built in "
          "{:.3f}s (E8: linear-time index)".format(
              graph.vertex_count, graph.edge_count, build_secs))
    jim = graph.id_of("Jim Gray")

    # ------------------------------------------------------------ E1
    print("\n[E1] Figure 1: exploration (q=jim gray, degree>=4)")
    communities, secs = timed(acq_search, graph, jim, 4, index=index)
    community = communities[0]
    print("  {} communities in {:.4f}s; theme: {}".format(
        len(communities), secs, ", ".join(community.theme(limit=6))))

    # ------------------------------------------------------------ E2
    print("\n[E2] Figure 2: member profile")
    profile = explorer.profile("Michael Stonebraker")
    print("  " + profile.render_text().replace("\n", "\n  "))

    # ------------------------------------------------------------ E4/E5
    print("\n[E4/E5] Figure 6(a): statistics table + quality bars")
    report = compare_methods(
        graph, jim, 4, methods=("global", "local", "codicil", "acq"),
        method_params={"acq": {"index": index}})
    print(format_table(report.table_rows()))
    for method, bars in report.quality_bars().items():
        print("  {:<8} CPJ={:<7} CMF={:<7}".format(method, bars["cpj"],
                                                   bars["cmf"]))

    # ------------------------------------------------------------ E6
    print("\n[E6] Figure 6(b): visual comparison -> SVG strings")
    for method in ("acq", "local"):
        if report.results[method]:
            svg = explorer.display(report.results[method][0], fmt="svg")
            print("  {}: {} bytes of SVG".format(method, len(svg)))

    # ------------------------------------------------------------ E7
    print("\n[E7] Dec vs Inc-S vs Inc-T (why the system ships Dec)")
    for algorithm in ("dec", "inc-t", "inc-s"):
        _, secs = timed(acq_search, graph, jim, 4, algorithm=algorithm,
                        index=index)
        print("  {:<6} {:.4f}s".format(algorithm, secs))

    # ------------------------------------------------------------ E9
    print("\n[E9] online CS vs offline CD")
    _, cs_secs = timed(acq_search, graph, jim, 4, index=index)
    _, cd_secs = timed(codicil, graph)
    print("  ACQ {:.4f}s vs CODICIL {:.2f}s -> {:.0f}x".format(
        cs_secs, cd_secs, cd_secs / cs_secs))

    # ------------------------------------------------------------ E10
    print("\n[E10] the exponential strawman (|S| = 10)")
    keywords = sorted(graph.keywords(jim))[:10]
    _, brute_secs = timed(brute_force_acq,
                          AcqQuery(graph, jim, 4, keywords=keywords))
    _, dec_secs = timed(acq_search, graph, jim, 4, keywords=keywords,
                        algorithm="dec", index=index)
    print("  brute force {:.4f}s vs Dec {:.4f}s -> {:.0f}x".format(
        brute_secs, dec_secs, brute_secs / dec_secs))

    # ------------------------------------------------------------ E12
    print("\n[E12] multi-vertex variant")
    partner = next(v for v in sorted(community.vertices) if v != jim)
    multi, secs = timed(acq_search, graph, [jim, partner], 4,
                        index=index)
    print("  |Q|=2 -> {} communities in {:.4f}s".format(
        len(multi), secs))

    print("\nAll artefacts reproduced. Full harness: "
          "pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
