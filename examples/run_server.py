#!/usr/bin/env python
"""Start the C-Explorer web system (the Figure 3 browser-server model).

Serves the bundled synthetic DBLP graph on http://127.0.0.1:8080 --
open it in a browser for the Figure 1 exploration UI, or talk JSON to
the /api/* endpoints (see repro/server/app.py for the endpoint table).

Run:  python examples/run_server.py [port]
"""

import sys

from repro import CExplorer, make_server
from repro.datasets import generate_dblp_graph


def main():
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 8080
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())
    explorer.index()  # build the CL-tree up front: queries stay instant

    server = make_server(explorer, port=port)
    host, bound_port = server.server_address
    print("C-Explorer serving dblp ({} vertices, {} edges)".format(
        explorer.graph.vertex_count, explorer.graph.edge_count))
    print("Open http://{}:{}/  (Ctrl-C to stop)".format(host, bound_port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nbye")
        server.shutdown()


if __name__ == "__main__":
    main()
