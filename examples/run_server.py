#!/usr/bin/env python
"""Start the C-Explorer web system (the Figure 3 browser-server model).

Serves the bundled synthetic DBLP graph on http://127.0.0.1:8080 --
open it in a browser for the Figure 1 exploration UI, or talk JSON to
the versioned /v1/* endpoints (see docs/API.md for the contract; the
legacy /api/* paths still answer, with a Deprecation header).

Run:  python examples/run_server.py [port] [--async]

``--async`` serves through the asyncio front-end instead of the
threaded one: requests are accepted without a thread per connection
and concurrent overlapping searches are coalesced by the cross-query
batching layer (one execution answers the whole burst).
"""

import sys

from repro import CExplorer, make_server
from repro.datasets import generate_dblp_graph
from repro.server.async_app import make_async_server


def main():
    args = [a for a in sys.argv[1:] if a != "--async"]
    use_async = "--async" in sys.argv[1:]
    port = int(args[0]) if args else 8080
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())
    explorer.index()  # build the CL-tree up front: queries stay instant

    maker = make_async_server if use_async else make_server
    server = maker(explorer, port=port)
    if use_async:
        server.start_background()
    host, bound_port = server.server_address
    print("C-Explorer serving dblp ({} vertices, {} edges) via the "
          "{} front-end".format(explorer.graph.vertex_count,
                                explorer.graph.edge_count,
                                "asyncio" if use_async else "threaded"))
    print("Open http://{}:{}/  (Ctrl-C to stop)".format(host, bound_port))
    print("API: POST http://{}:{}/v1/search  "
          '{{"vertex": "jim gray", "k": 4}}'.format(host, bound_port))
    try:
        if use_async:
            import time
            while True:
                time.sleep(3600)
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("\nbye")
        server.shutdown()


if __name__ == "__main__":
    main()
