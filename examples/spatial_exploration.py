#!/usr/bin/env python
"""Spatial-aware community search (reference [3] of the paper).

Generates a spatial social network (users with coordinates, planted
geographic communities), runs SAC (AppInc) for a query user, and
contrasts the result with the structure-only Global community: same
degree guarantee, radically tighter geography.

Run:  python examples/spatial_exploration.py
"""

from repro.algorithms.global_search import global_search
from repro.algorithms.spatial import spatial_community_search
from repro.datasets.spatial import euclidean, generate_spatial_graph


def main():
    graph, coords, truth = generate_spatial_graph(
        n=600, communities=8, seed=21)
    print("Spatial graph: {} users, {} edges, 8 planted regions".format(
        graph.vertex_count, graph.edge_count))

    q, k = 0, 2
    qx, qy = coords[q]
    print("\nQuery: user {} at ({:.2f}, {:.2f}), degree >= {}".format(
        graph.display_name(q), qx, qy, k))

    communities, radius = spatial_community_search(graph, coords, q, k)
    sac = communities[0]
    print("\nSAC community: {} members within radius {:.3f}".format(
        len(sac), radius))
    print("  min internal degree: {}".format(
        sac.minimum_internal_degree()))

    glob = global_search(graph, q, k)[0]
    global_radius = max(euclidean(coords[v], coords[q]) for v in glob)
    print("\nGlobal community (structure only): {} members, "
          "radius {:.3f}".format(len(glob), global_radius))

    print("\nSAC keeps the community {}x geographically tighter with "
          "the same degree guarantee.".format(
              round(global_radius / radius, 1)))

    # How local is it, against the planted ground truth?
    home = next(members for members in truth.values() if q in members)
    overlap = len(sac.vertices & home) / len(sac)
    print("{}% of SAC members come from the query user's home "
          "region.".format(round(100 * overlap)))


if __name__ == "__main__":
    main()
