#!/usr/bin/env python
"""Aggregate evaluation of CR methods over a query pool.

The paper motivates C-Explorer as the tool for "a more extensive
experimental evaluation of CR solutions": not one walkthrough query
but many, with aggregate quality and latency.  This example runs that
evaluation over 25 random feasible query vertices and prints the
summary table, plus a ground-truth check of the CD methods against
the generator's planted communities.

Run:  python examples/batch_evaluation.py
"""

from repro.analysis.batch import batch_evaluate, format_batch_table
from repro.analysis.ground_truth import evaluate_partition
from repro.core.cltree import build_cltree
from repro.datasets import DblpConfig, generate_dblp_graph


def main():
    graph, planted = generate_dblp_graph(DblpConfig(),
                                         return_communities=True)
    index = build_cltree(graph)
    print("Workload: {} authors, {} edges, {} planted communities"
          .format(graph.vertex_count, graph.edge_count, len(planted)))

    print("\n=== Community search: 25 random queries, k=4 ===")
    results = batch_evaluate(
        graph, ("global", "local", "acq"), k=4, n_queries=25, seed=17,
        method_params={"acq": {"index": index}})
    print(format_batch_table(results))
    print("\nReading: ACQ pairs Global's guarantee with far better "
          "keyword cohesiveness (CPJ/CMF), at interactive latency.")

    print("\n=== Community detection vs planted ground truth ===")
    from repro.algorithms.label_propagation import label_propagation
    from repro.algorithms.codicil import codicil
    for name, method in (("label-propagation",
                          lambda: label_propagation(graph, seed=3)),
                         ("codicil", lambda: codicil(graph, seed=3))):
        found = method()
        report = evaluate_partition(found, planted.values())
        print("  {:<18} F1={:<7} NMI={:<7} ARI={:<7} ({} communities)"
              .format(name, report["f1"], report["nmi"], report["ari"],
                      report["found_communities"]))


if __name__ == "__main__":
    main()
