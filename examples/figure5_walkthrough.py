#!/usr/bin/env python
"""The paper's running example (Figure 5), reproduced step by step.

Builds the 10-vertex attributed graph of Figure 5(a), prints its core
decomposition and CL-tree (Figure 5(b)), and runs the worked ACQ query
from Problem 1: q=A, k=2, S={w,x,y} -> community {A,C,D} sharing
{x, y}.

Run:  python examples/figure5_walkthrough.py
"""

from repro import acq_search, build_cltree, core_decomposition
from repro.core.acq import AcqQuery, brute_force_acq
from repro.datasets import figure5_graph


def main():
    graph = figure5_graph()
    print("Figure 5(a): {} vertices, {} edges".format(
        graph.vertex_count, graph.edge_count))
    for v in graph.vertices():
        print("  {}: {{{}}}".format(graph.label(v),
                                    ", ".join(sorted(graph.keywords(v)))))

    print("\nCore numbers (the Figure 5(b) table):")
    core = core_decomposition(graph)
    by_core = {}
    for v in graph.vertices():
        by_core.setdefault(core[v], []).append(graph.label(v))
    for k in sorted(by_core):
        print("  core {}: {}".format(k, ", ".join(sorted(by_core[k]))))

    print("\nCL-tree (Figure 5(b)):")
    tree = build_cltree(graph)
    print(tree.describe())

    print("\nACQ query: q=A, k=2, S={w, x, y}")
    for algorithm in ("dec", "inc-s", "inc-t"):
        result = acq_search(graph, graph.id_of("A"), 2,
                            keywords={"w", "x", "y"},
                            algorithm=algorithm, index=tree)
        community = result[0]
        print("  {:<6} -> {{{}}} sharing {{{}}}".format(
            algorithm,
            ", ".join(community.member_names()),
            ", ".join(community.theme())))

    brute = brute_force_acq(AcqQuery(graph, graph.id_of("A"), 2,
                                     keywords={"w", "x", "y"}))
    print("  brute  -> {{{}}} sharing {{{}}}  (the exponential strawman"
          " agrees)".format(", ".join(brute[0].member_names()),
                            ", ".join(brute[0].theme())))


if __name__ == "__main__":
    main()
