"""Tests for the batch evaluation harness."""

import pytest

from repro.analysis.batch import (
    batch_evaluate,
    format_batch_table,
    pick_query_vertices,
)
from repro.core.kcore import core_decomposition


class TestPickQueryVertices:
    def test_respects_core_threshold(self, dblp_small):
        core = core_decomposition(dblp_small)
        queries = pick_query_vertices(dblp_small, 3, 10, seed=1)
        assert len(queries) == 10
        assert all(core[q] >= 3 for q in queries)

    def test_deterministic(self, dblp_small):
        a = pick_query_vertices(dblp_small, 3, 10, seed=1)
        b = pick_query_vertices(dblp_small, 3, 10, seed=1)
        assert a == b

    def test_all_when_pool_small(self, fig5):
        queries = pick_query_vertices(fig5, 3, 100)
        assert sorted(fig5.label(q) for q in queries) == \
            ["A", "B", "C", "D"]

    def test_empty_when_infeasible(self, fig5):
        assert pick_query_vertices(fig5, 9, 5) == []


class TestBatchEvaluate:
    def test_report_shape(self, dblp_small):
        results = batch_evaluate(dblp_small, ("global", "acq"), k=3,
                                 n_queries=6, seed=2)
        assert set(results) == {"global", "acq"}
        for row in results.values():
            assert row["queries"] == 6
            assert 0 <= row["answered"] <= 6
            assert row["avg_seconds"] >= 0

    def test_all_queries_answered_for_feasible_pool(self, dblp_small):
        results = batch_evaluate(dblp_small, ("global",), k=3,
                                 n_queries=6, seed=2)
        assert results["global"]["answered"] == 6

    def test_acq_beats_global_on_quality_in_aggregate(self, dblp_small):
        """The ACQ paper's aggregate claim over a query pool."""
        from repro.core.cltree import build_cltree
        index = build_cltree(dblp_small)
        results = batch_evaluate(
            dblp_small, ("global", "acq"), k=3, n_queries=10, seed=3,
            method_params={"acq": {"index": index}})
        assert results["acq"]["avg_cpj"] > results["global"]["avg_cpj"]
        assert results["acq"]["avg_cmf"] > results["global"]["avg_cmf"]

    def test_explicit_queries_used(self, fig5):
        a = fig5.id_of("A")
        results = batch_evaluate(fig5, ("global",), k=2, queries=[a])
        assert results["global"]["queries"] == 1
        assert results["global"]["answered"] == 1

    def test_failing_method_counts_zero(self, fig5):
        results = batch_evaluate(fig5, ("k-truss",), k=1,
                                 queries=[fig5.id_of("A")])
        assert results["k-truss"]["answered"] == 0

    def test_engine_parallelism_matches_serial(self, dblp_small):
        """Fanning the pool out over the engine's workers must not
        change any aggregate (only wall-clock)."""
        from repro.engine.executor import QueryEngine
        engine = QueryEngine(workers=4, max_queue=256)
        try:
            serial = batch_evaluate(dblp_small, ("global",), k=3,
                                    n_queries=8, seed=5)
            parallel = batch_evaluate(dblp_small, ("global",), k=3,
                                      n_queries=8, seed=5,
                                      engine=engine)
        finally:
            engine.shutdown()
        for field in ("queries", "answered", "avg_vertices",
                      "avg_edges", "avg_degree", "avg_cpj", "avg_cmf"):
            assert serial["global"][field] == parallel["global"][field]
        assert parallel["global"]["wall_seconds"] >= 0

    def test_explorer_routing_matches_raw_algorithms(self, dblp_small):
        """Routing queries through a (sharded) explorer facade -- the
        production path -- must not change any aggregate either."""
        from repro.explorer.cexplorer import CExplorer
        explorer = CExplorer(workers=2)
        explorer.add_graph("dblp", dblp_small, shards=2,
                           partitioner="greedy")
        raw = batch_evaluate(dblp_small, ("global",), k=3,
                             n_queries=8, seed=5)
        routed = batch_evaluate(dblp_small, ("global",), k=3,
                                n_queries=8, seed=5, explorer=explorer)
        for field in ("queries", "answered", "avg_vertices",
                      "avg_edges", "avg_degree", "avg_cpj", "avg_cmf"):
            assert raw["global"][field] == routed["global"][field]
        # The fan-out actually ran.
        assert "dblp" in explorer.engine.stats.snapshot()["sharding"]

    def test_explorer_graph_mismatch_rejected(self, dblp_small, fig5):
        from repro.explorer.cexplorer import CExplorer
        from repro.util.errors import CExplorerError
        explorer = CExplorer()
        explorer.add_graph("fig5", fig5)
        with pytest.raises(CExplorerError):
            batch_evaluate(dblp_small, ("global",), explorer=explorer)


class TestFormatBatchTable:
    def test_renders(self, dblp_small):
        results = batch_evaluate(dblp_small, ("global",), k=3,
                                 n_queries=4, seed=1)
        table = format_batch_table(results)
        assert "method" in table.splitlines()[0]
        assert "global" in table
