"""Tests for sharded graph execution (repro.engine.sharding).

The load-bearing invariants:

* **equivalence** -- for any graph, query, and shard count, the
  sharded fan-out/merge path returns *exactly* the unsharded result
  (property-tested over random attributed graphs for shards in
  {2, 4}, both partitioners);
* **shards=1 is the old engine** -- no shard entries exist, plans
  never fan out, and results are identical to an unsharded explorer;
* **maintenance routing** -- an edge update bumps the owning shard's
  index version only; other shards keep their cached decompositions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kcore import core_decomposition
from repro.engine.sharding import (
    GraphPartitioner,
    ShardMergeError,
    ShardedIndexManager,
    hash_shard,
    merge_shard_reports,
    parent_graph_name,
    shard_entry_name,
    verify_boundary,
)
from repro.engine.stats import EngineStats
from repro.explorer.cexplorer import CExplorer
from repro.util.errors import CExplorerError

from conftest import build_graph, random_graphs


def _feasible_queries(graph, limit=4):
    """A few (q, k) pairs with a non-trivial answer, plus one
    infeasible pair (the empty-result path must agree too)."""
    core = core_decomposition(graph)
    pairs = []
    for v in graph.vertices():
        if core[v] >= 1 and len(pairs) < limit:
            pairs.append((v, min(core[v], 3)))
    if core:
        top = max(core)
        pairs.append((0, top + 1))      # infeasible: both sides say []
    return pairs


def _sharded_explorers(graph, configs):
    explorers = []
    for shards, method, workers in configs:
        ex = CExplorer(workers=workers)
        ex.add_graph("g", graph, shards=shards, partitioner=method)
        explorers.append(ex)
    return explorers


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
class TestGraphPartitioner:
    def test_hash_is_deterministic_and_total(self, karate):
        a = GraphPartitioner(4, "hash").partition(karate)
        b = GraphPartitioner(4, "hash").partition(karate)
        assert a.assignment == b.assignment
        assert len(a.assignment) == karate.vertex_count
        assert set(a.assignment) <= set(range(4))
        assert a.assignment[7] == hash_shard(7, 4)

    def test_greedy_is_balanced_and_cuts_less(self, dblp_small):
        hashed = GraphPartitioner(4, "hash").partition(dblp_small)
        greedy = GraphPartitioner(4, "greedy").partition(dblp_small)
        capacity = -(-dblp_small.vertex_count // 4)
        assert max(greedy.sizes()) <= capacity
        # On a community-structured graph the greedy balancer must
        # beat structure-oblivious hashing on edge cut.
        assert greedy.cut_edges < hashed.cut_edges

    def test_single_shard_owns_everything(self, fig5):
        part = GraphPartitioner(1).partition(fig5)
        assert set(part.assignment) == {0}
        assert part.cut_edges == 0

    def test_stats_shape(self, karate):
        doc = GraphPartitioner(2, "greedy").partition(karate).stats()
        assert set(doc) == {"shards", "method", "sizes", "cut_edges",
                            "balance"}
        assert sum(doc["sizes"]) == karate.vertex_count

    def test_late_vertices_get_hash_owner(self, fig5):
        part = GraphPartitioner(2).partition(fig5)
        n = fig5.vertex_count
        assert part.owner(n + 3) == hash_shard(n + 3, 2)
        part.assign(n + 1)
        assert len(part.assignment) == n + 2

    def test_invalid_arguments(self, fig5):
        with pytest.raises(CExplorerError):
            GraphPartitioner(0)
        with pytest.raises(CExplorerError):
            GraphPartitioner(2, "psychic")


# ----------------------------------------------------------------------
# sharded index manager
# ----------------------------------------------------------------------
class TestShardedIndexManager:
    def test_register_creates_shard_entries(self, karate):
        manager = ShardedIndexManager()
        manager.register("k", karate, shards=3)
        assert manager.shards("k") == 3
        names = manager.shard_names("k")
        assert names == [shard_entry_name("k", i) for i in range(3)]
        for entry in names:
            assert manager.version(entry) == 1
            assert parent_graph_name(entry) == "k"
        # Shard subgraph sizes match the partition.
        sizes = manager.partition("k").sizes()
        assert sum(sizes) == karate.vertex_count

    def test_unsharded_register_stays_plain(self, karate):
        manager = ShardedIndexManager()
        manager.register("k", karate)
        assert manager.shards("k") == 1
        assert manager.partition("k") is None
        assert manager.shard_names("k") == []
        assert manager.names() == ["k"]

    def test_reregister_replaces_shards(self, karate, fig5):
        manager = ShardedIndexManager()
        manager.register("g", karate, shards=4)
        manager.register("g", fig5, shards=2)
        assert manager.shards("g") == 2
        assert len(manager.names()) == 3     # g + 2 shard entries
        manager.unregister("g")
        assert manager.names() == []

    def test_shard_names_are_reserved(self, karate):
        manager = ShardedIndexManager()
        with pytest.raises(CExplorerError):
            manager.register(shard_entry_name("g", 0), karate)

    def test_rejected_name_leaves_no_phantom_graph(self, karate):
        explorer = CExplorer()
        with pytest.raises(CExplorerError):
            explorer.add_graph(shard_entry_name("g", 0), karate)
        assert explorer.graph_names() == []

    def test_shard_candidates_certify_soundly(self, karate):
        """Shard-local core >= k certifies global membership; every
        certified vertex must be in the true global k-core."""
        manager = ShardedIndexManager()
        manager.register("k", karate, shards=2, partitioner="greedy")
        core = core_decomposition(karate)
        for k in (1, 2, 3):
            for shard in range(2):
                report = manager.shard_candidates("k", shard, k)
                assert all(core[v] >= k for v in report.certified)
                assert all(karate.degree(v) < k
                           for v in report.dropped)

    def test_shard_stats_surface_partition(self, karate):
        manager = ShardedIndexManager()
        manager.register("k", karate, shards=2)
        doc = manager.shard_stats("k")
        assert doc["shards"] == 2
        assert len(doc["indexes"]) == 2
        assert manager.shard_stats("missing") is None


# ----------------------------------------------------------------------
# maintenance routing
# ----------------------------------------------------------------------
class TestMaintenanceRouting:
    def _versions(self, manager, name, shards):
        return [manager.version(shard_entry_name(name, i))
                for i in range(shards)]

    def test_intra_shard_update_bumps_owner_only(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        maintainer = explorer.maintainer()
        part = explorer.indexes.partition("k")
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v)
            and part.owner(u) == part.owner(v))
        owner = part.owner(u)
        before = self._versions(explorer.indexes, "k", 2)
        maintainer.insert_edge(u, v)
        after = self._versions(explorer.indexes, "k", 2)
        for shard in range(2):
            expected = before[shard] + (1 if shard == owner else 0)
            assert after[shard] == expected
        # The edge reached the owning shard's subgraph: its shard-local
        # core numbers keep lower-bounding the (new) global ones.
        core = core_decomposition(karate)
        report = explorer.indexes.shard_candidates("k", owner, 2)
        assert all(core[w] >= 2 for w in report.certified)

    def test_cross_shard_update_bumps_both_owners(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        maintainer = explorer.maintainer()
        part = explorer.indexes.partition("k")
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v)
            and part.owner(u) != part.owner(v))
        before = self._versions(explorer.indexes, "k", 2)
        maintainer.insert_edge(u, v)
        after = self._versions(explorer.indexes, "k", 2)
        assert after == [b + 1 for b in before]

    def test_results_stay_equivalent_under_maintenance(self, karate):
        sharded = CExplorer()
        sharded.add_graph("k", karate.copy(), shards=2)
        plain = CExplorer()
        plain.add_graph("k", karate.copy())
        ms, mp = sharded.maintainer(), plain.maintainer()
        for u, v in ((0, 9), (4, 12), (33, 9)):
            if sharded.indexes.graph("k").has_edge(u, v):
                ms.remove_edge(u, v)
                mp.remove_edge(u, v)
            else:
                ms.insert_edge(u, v)
                mp.insert_edge(u, v)
            for q in (0, 33):
                for k in (2, 3):
                    assert sharded.search("global", q, k=k) == \
                        plain.search("global", q, k=k)
                    assert sharded.search("acq", q, k=k) == \
                        plain.search("acq", q, k=k)

    def test_reattach_maintainer_routes_once(self, karate):
        """Re-attaching (implicitly or with the same maintainer) must
        not stack listeners: one update = one version bump."""
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        maintainer = explorer.maintainer()
        assert explorer.maintainer() is maintainer
        explorer.indexes.attach_maintainer("k", maintainer)
        part = explorer.indexes.partition("k")
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v)
            and part.owner(u) == part.owner(v))
        name = shard_entry_name("k", part.owner(u))
        parent_before = explorer.indexes.version("k")
        shard_before = explorer.indexes.version(name)
        maintainer.insert_edge(u, v)
        assert explorer.indexes.version("k") == parent_before + 1
        assert explorer.indexes.version(name) == shard_before + 1

    def test_new_vertex_adopted_by_hash_shard(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        maintainer = explorer.maintainer()
        a = maintainer.add_vertex("appendix-a")
        maintainer.insert_edge(a, 0)
        part = explorer.indexes.partition("k")
        assert part.assignment[a] == hash_shard(a, 2)
        # The adopted vertex takes part in sharded queries.
        result = explorer.search("global", a, k=1)
        assert result and a in result[0]

    def test_adoption_invalidates_grown_shards(self, karate):
        """Shards that adopt a new vertex must drop their cached core
        decomposition, or every later query degrades to the serial
        fallback (stale short core list -> IndexError)."""
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=4)
        explorer.search("global", 0, k=2)    # warm per-shard cores
        maintainer = explorer.maintainer()
        a = maintainer.add_vertex("x1")
        b = maintainer.add_vertex("x2")
        maintainer.insert_edge(a, b)
        stats = explorer.engine.stats
        before = stats.snapshot()["sharding"]["k"]["fanouts"]
        fresh = explorer.search("global", 0, k=2, use_cache=False)
        assert set(fresh[0].vertices) == \
            set(explorer.search("global", 0, k=2, use_cache=False)[0]
                .vertices)
        # The fan-out actually ran (no silent serial fallback).
        assert stats.snapshot()["sharding"]["k"]["fanouts"] > before

    def test_failed_reregistration_keeps_old_graph(self, karate, fig5):
        """A rejected sharded re-registration must not leave the index
        manager holding a graph the explorer rolled back."""
        explorer = CExplorer()
        explorer.add_graph("g", karate)
        baseline = explorer.search("global", 0, k=2, use_cache=False)
        with pytest.raises(CExplorerError):
            explorer.add_graph("g", fig5, shards=2, partitioner="bogus")
        assert explorer.indexes.graph("g") is karate
        assert explorer.search("global", 0, k=2, use_cache=False) \
            == baseline


# ----------------------------------------------------------------------
# merge primitives
# ----------------------------------------------------------------------
class TestMergePrimitives:
    def test_merge_handles_unreported_vertices(self):
        graph = build_graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        # No shard reported anything: every vertex is "extra".
        component = merge_shard_reports(graph, [], 0, 2,
                                        extra_vertices=range(4))
        assert component == {0, 1, 2}

    def test_verify_boundary_raises_on_bad_merge(self):
        graph = build_graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        part = GraphPartitioner(2).partition(graph)
        with pytest.raises(ShardMergeError):
            # Vertex 3 has internal degree 1 < k=2: a correct merge
            # could never include it.
            verify_boundary(graph, part, {0, 1, 2, 3}, 2)

    def test_fanout_stats_record_skew(self):
        stats = EngineStats()
        stats.observe_fanout("g", [0.01, 0.03])
        doc = stats.snapshot()["sharding"]["g"]
        assert doc["fanouts"] == 1
        assert doc["shards"] == 2
        assert doc["last_skew"] == pytest.approx(1.5)
        stats.observe_fanout("g", [0.02, 0.02])
        doc = stats.snapshot()["sharding"]["g"]
        assert doc["fanouts"] == 2
        assert doc["max_skew"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# end-to-end equivalence
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    CONFIGS = ((2, "hash", 1), (4, "greedy", 2))

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=16, max_m=48, keywords=list("abc")),
           st.integers(0, 3))
    def test_sharded_equals_unsharded(self, graph, k):
        plain = CExplorer()
        plain.add_graph("g", graph)
        sharded = _sharded_explorers(graph, self.CONFIGS)
        for q, kk in _feasible_queries(graph) + [(0, k)]:
            for algorithm in ("global", "acq"):
                expected = plain.search(algorithm, q, k=kk,
                                        use_cache=False)
                for ex in sharded:
                    got = ex.search(algorithm, q, k=kk, use_cache=False)
                    assert got == expected, (algorithm, q, kk)
        for ex in sharded:
            # Every query took the true fan-out path: no merge ever
            # failed re-verification and fell back to serial.
            assert ex.engine.stats.get("shard_fallbacks") == 0

    def test_acq_variants_and_keywords(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        sharded = CExplorer(workers=4)
        sharded.add_graph("g", dblp_small, shards=4,
                          partitioner="greedy")
        jim = dblp_small.id_of("Jim Gray")
        keywords = set(sorted(dblp_small.keywords(jim))[:2])
        for algorithm in ("acq", "acq-inc-s", "acq-inc-t"):
            for kw in (None, keywords):
                assert sharded.search(algorithm, jim, k=3, keywords=kw) \
                    == plain.search(algorithm, jim, k=3, keywords=kw)

    def test_multi_vertex_query(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        sharded = CExplorer()
        sharded.add_graph("g", dblp_small, shards=2)
        expected = plain.search("acq", ["jim gray", 17], k=2)
        assert sharded.search("acq", ["jim gray", 17], k=2) == expected

    def test_single_worker_fanout_does_not_deadlock(self, dblp_small):
        """The regression the work-stealing design exists for: the
        pool's only worker coordinates a fan-out and must claim the
        per-shard subjobs itself."""
        explorer = CExplorer(workers=1)
        explorer.add_graph("g", dblp_small, shards=4)
        result = explorer.engine.search_sync("global", "jim gray", k=3,
                                             timeout=30)
        assert result
        snapshot = explorer.engine.snapshot()
        assert "g" in snapshot["sharding"]

    def test_merged_result_cached_under_same_key(self, dblp_small):
        explorer = CExplorer()
        explorer.add_graph("g", dblp_small, shards=2)
        first = explorer.search("acq", "jim gray", k=3)
        future = explorer.engine.search("acq", "jim gray", k=3)
        assert future.done()                 # cache fast path
        assert future.result(0) is first
        assert explorer.cache.entries_by_graph() == {"g": 1}

    def test_shards_one_is_the_old_engine(self, dblp_small):
        explorer = CExplorer()
        explorer.add_graph("g", dblp_small, shards=1)
        assert explorer.shards("g") == 1
        assert explorer.indexes.shard_names("g") == []
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        for algorithm in ("global", "acq", "local"):
            assert explorer.search(algorithm, "jim gray", k=3) == \
                plain.search(algorithm, "jim gray", k=3)
        # And nothing sharded ever ran.
        assert "sharding" not in explorer.engine.stats.snapshot()

    def test_non_shardable_algorithms_run_plain(self, dblp_small):
        explorer = CExplorer()
        explorer.add_graph("g", dblp_small, shards=2)
        assert explorer.search("local", "jim gray", k=3) is not None
        assert "sharding" not in explorer.engine.stats.snapshot()

    def test_truss_family_fans_out(self, dblp_small):
        """Since the truss maintenance subsystem, the triangle family
        shards too: the fan-out actually runs and agrees with the
        serial path."""
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        explorer = CExplorer()
        explorer.add_graph("g", dblp_small, shards=2)
        for algorithm in ("k-truss", "atc"):
            assert explorer.search(algorithm, "jim gray", k=3) == \
                plain.search(algorithm, "jim gray", k=3)
        assert "sharding" in explorer.engine.stats.snapshot()
        assert explorer.engine.stats.get("shard_fallbacks") == 0
