"""The graph read protocol and its load-bearing equivalences.

The whole-query worker pipeline stands on one invariant: **every
registered CS/CD algorithm accepts a FrozenGraph and returns results
byte-identical to the AttributedGraph path**.  This suite proves it --
per algorithm, property-tested over random graphs and checked on the
DBLP/LFR workloads -- and then proves the execution layers built on
top of it:

* sharded execution across the full shardable registry for shards in
  {1, 2, 4} on both backends;
* whole-query worker execution (process backend) equal to inline
  execution for every CS algorithm;
* engine detections (whole-graph and per-component) identical between
  inline and worker execution;
* the payload/memo/cut-support caches behind the pipeline.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms.registry import (
    get_cd_algorithm,
    get_cs_algorithm,
    list_cd_algorithms,
    list_cs_algorithms,
)
from repro.core.community import Community
from repro.core.kcore import core_decomposition
from repro.datasets import generate_planted_partition
from repro.explorer.cexplorer import CExplorer
from repro.graph.attributed import AttributedGraph
from repro.graph.frozen import freeze
from repro.graph.protocol import (
    missing_protocol_methods,
    require_read_protocol,
    supports_read_protocol,
    thaw,
)
from repro.util.errors import GraphFormatError

from conftest import random_graphs

# Per-algorithm query parameters: the triangle family needs k >= 2,
# codicil ignores k, everything else is happy with small k.
CS_K = {"k-truss": 3, "atc": 3}


@pytest.fixture(scope="module")
def lfr():
    graph, _ = generate_planted_partition(n=300, communities=6,
                                          avg_degree=8, seed=5)
    return graph


def _cs_queries(graph, count=3):
    """A few interesting query vertices: highest-core first."""
    core = core_decomposition(graph)
    order = sorted(graph.vertices(), key=lambda v: (-core[v], v))
    return order[:count]


# ----------------------------------------------------------------------
# the protocol itself
# ----------------------------------------------------------------------
class TestProtocol:
    def test_both_representations_conform(self, karate):
        assert supports_read_protocol(karate)
        assert supports_read_protocol(freeze(karate))
        assert missing_protocol_methods(freeze(karate)) == []

    def test_require_names_missing_attributes(self):
        with pytest.raises(GraphFormatError) as err:
            require_read_protocol(object())
        assert "neighbors" in str(err.value)

    def test_thaw_is_canonical_and_mutable(self, karate):
        a = thaw(karate)
        b = thaw(freeze(karate))
        assert sorted(a.edges()) == sorted(b.edges())
        assert [a.label(v) for v in a.vertices()] == \
            [b.label(v) for v in b.vertices()]
        # Identical insertion history => identical iteration order.
        for v in a.vertices():
            assert list(a.neighbors(v)) == list(b.neighbors(v))
        b.add_vertex("fresh")          # a thawed graph is mutable

    def test_frozen_copy_is_mutable(self, karate):
        copy = freeze(karate).copy()
        assert isinstance(copy, AttributedGraph)
        assert sorted(copy.edges()) == sorted(karate.edges())

    def test_frozen_induced_subgraph_matches_mutable(self, karate):
        members = sorted(karate.connected_component(0))[:20]
        mutable_sub, mutable_map = karate.induced_subgraph(members)
        frozen_sub, frozen_map = freeze(karate).induced_subgraph(members)
        assert frozen_map == mutable_map
        assert sorted(frozen_sub.edges()) == sorted(mutable_sub.edges())
        assert [frozen_sub.keywords(v) for v in frozen_sub.vertices()] \
            == [mutable_sub.keywords(v) for v in mutable_sub.vertices()]

    def test_keyword_postings(self, dblp_small):
        frozen = freeze(dblp_small)
        postings = frozen.keyword_postings()
        for keyword, vertices in list(postings.items())[:25]:
            assert vertices == {v for v in dblp_small.vertices()
                                if keyword in dblp_small.keywords(v)}
        assert frozen.vertices_with_keyword("no-such-kw") == frozenset()

    def test_community_wire_roundtrip(self, karate):
        community = Community(karate, {0, 1, 2}, method="X",
                              query_vertices=(0,), k=2,
                              shared_keywords={"a"})
        back = Community.from_wire(karate, community.to_wire())
        assert back == community
        assert back.method == "X" and back.k == 2
        assert back.query_vertices == (0,)


# ----------------------------------------------------------------------
# frozen == mutable, per registered algorithm
# ----------------------------------------------------------------------
class TestFrozenEquivalence:
    @pytest.mark.parametrize("name", list_cs_algorithms())
    def test_cs_on_dblp(self, name, dblp_small):
        algo = get_cs_algorithm(name)
        frozen = freeze(dblp_small)
        k = CS_K.get(name, 2)
        for q in _cs_queries(dblp_small):
            assert algo(frozen, q, k) == algo(dblp_small, q, k), (name, q)

    @pytest.mark.parametrize("name", list_cs_algorithms())
    def test_cs_on_lfr(self, name, lfr):
        algo = get_cs_algorithm(name)
        frozen = freeze(lfr)
        k = CS_K.get(name, 2)
        for q in _cs_queries(lfr, count=2):
            assert algo(frozen, q, k) == algo(lfr, q, k), (name, q)

    @pytest.mark.parametrize("name", list_cd_algorithms())
    def test_cd_on_dblp(self, name, dblp_small):
        algo = get_cd_algorithm(name)
        params = {"max_removals": 12} if name == "newman-girvan" \
            else {"seed": 7}
        assert algo(freeze(dblp_small), **params) == \
            algo(dblp_small, **params)

    @pytest.mark.parametrize("name", list_cd_algorithms())
    def test_cd_on_lfr(self, name, lfr):
        algo = get_cd_algorithm(name)
        params = {"max_removals": 8} if name == "newman-girvan" \
            else {"seed": 11}
        assert algo(freeze(lfr), **params) == algo(lfr, **params)

    @settings(max_examples=10, deadline=None)
    @given(random_graphs(max_n=16, max_m=44, keywords=list("abc")))
    def test_cs_property(self, graph):
        frozen = freeze(graph)
        for name in list_cs_algorithms():
            algo = get_cs_algorithm(name)
            k = CS_K.get(name, 1)
            assert algo(frozen, 0, k) == algo(graph, 0, k), name

    @settings(max_examples=10, deadline=None)
    @given(random_graphs(max_n=16, max_m=44, keywords=list("ab")))
    def test_cd_property(self, graph):
        frozen = freeze(graph)
        for name in list_cd_algorithms():
            algo = get_cd_algorithm(name)
            assert algo(frozen) == algo(graph), name


# ----------------------------------------------------------------------
# whole-query worker execution == inline execution
# ----------------------------------------------------------------------
class TestWholeQueryWorkers:
    @pytest.fixture()
    def plain(self, dblp_small):
        explorer = CExplorer()
        explorer.add_graph("g", dblp_small)
        return explorer

    def test_process_backend_runs_whole_queries(self, plain,
                                                dblp_small):
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", dblp_small)
        try:
            queries = _cs_queries(dblp_small)
            for name in list_cs_algorithms():
                k = CS_K.get(name, 2)
                for q in queries[:2]:
                    assert proc.search(name, q, k=k, use_cache=False) \
                        == plain.search(name, q, k=k, use_cache=False), \
                        (name, q)
            snapshot = proc.engine.snapshot()
            assert snapshot["worker_full_query"] > 0
            assert proc.engine.stats.get("full_query_fallbacks") == 0
            assert proc.engine.stats.get("process_fallbacks") == 0
        finally:
            proc.engine.shutdown()

    def test_sharded_full_registry(self, plain, dblp_small):
        from repro.engine.plans import FANOUT_ALGORITHMS
        queries = _cs_queries(dblp_small, count=2)
        for backend in ("thread", "process"):
            for shards in (1, 2, 4):
                other = CExplorer(workers=2, backend=backend)
                other.add_graph("g", dblp_small, shards=shards,
                                partitioner="greedy")
                try:
                    for name in sorted(FANOUT_ALGORITHMS):
                        k = CS_K.get(name, 2)
                        for q in queries:
                            expected = plain.search(name, q, k=k,
                                                    use_cache=False)
                            got = other.search(name, q, k=k,
                                               use_cache=False)
                            assert got == expected, \
                                (backend, shards, name, q)
                    assert other.engine.stats.get("shard_fallbacks") \
                        == 0
                finally:
                    other.engine.shutdown()

    def test_keywords_survive_worker_execution(self, plain,
                                               dblp_small):
        jim = dblp_small.id_of("Jim Gray")
        keywords = set(sorted(dblp_small.keywords(jim))[:2])
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", dblp_small, shards=2, partitioner="greedy")
        try:
            for name in ("acq", "acq-inc-s", "acq-inc-t", "atc"):
                k = CS_K.get(name, 3)
                assert proc.search(name, jim, k=k, keywords=keywords) \
                    == plain.search(name, jim, k=k, keywords=keywords)
        finally:
            proc.engine.shutdown()

    @settings(max_examples=6, deadline=None)
    @given(random_graphs(max_n=14, max_m=40, keywords=list("ab")))
    def test_worker_pipeline_property(self, graph):
        plain = CExplorer()
        plain.add_graph("g", graph)
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", graph, shards=2)
        try:
            for name in ("acq", "global", "k-truss"):
                k = CS_K.get(name, 1)
                assert proc.search(name, 0, k=k, use_cache=False) == \
                    plain.search(name, 0, k=k, use_cache=False), name
            assert proc.engine.stats.get("shard_fallbacks") == 0
        finally:
            proc.engine.shutdown()


# ----------------------------------------------------------------------
# engine detections: inline == worker, whole-graph and per-component
# ----------------------------------------------------------------------
def _disconnected_graph(copies=3):
    from repro.datasets import karate_club_graph

    graph = AttributedGraph()
    base = karate_club_graph()
    for c in range(copies):
        offset = c * base.vertex_count
        for v in base.vertices():
            graph.add_vertex("c{}-{}".format(c, v), base.keywords(v))
        for u, v in base.edges():
            graph.add_edge(u + offset, v + offset)
    return graph


class TestEngineDetect:
    CD_PARAMS = {"newman-girvan": {"max_removals": 10},
                 "codicil": {"seed": 3},
                 "label-propagation": {"seed": 3}}

    def test_process_detect_equals_inline(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", dblp_small)
        try:
            for name in ("label-propagation", "codicil"):
                params = self.CD_PARAMS[name]
                assert proc.detect(name, **params) == \
                    plain.detect(name, **params), name
            doc = proc.engine.snapshot()["detect_parallelism"]
            assert doc["runs"] == 2 and doc["jobs"] == 2
        finally:
            proc.engine.shutdown()

    @pytest.mark.parametrize("name", list_cd_algorithms())
    def test_per_component_inline_equals_worker(self, name):
        graph = _disconnected_graph()
        inline = CExplorer(workers=2)
        inline.add_graph("g", graph)
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", graph)
        try:
            params = self.CD_PARAMS[name]
            a = inline.detect(name, per_component=True, **params)
            b = proc.detect(name, per_component=True, **params)
            assert a == b
            assert proc.engine.snapshot()["detect_parallelism"][
                "last_jobs"] == 3
        finally:
            proc.engine.shutdown()

    def test_per_component_on_connected_graph_is_whole_graph(
            self, karate):
        explorer = CExplorer(workers=2)
        explorer.add_graph("k", karate)
        direct = get_cd_algorithm("label-propagation")(karate, seed=2)
        assert explorer.detect("label-propagation", per_component=True,
                               seed=2) == direct
        assert explorer.engine.snapshot()["detect_parallelism"][
            "last_jobs"] == 1


# ----------------------------------------------------------------------
# the caches behind the pipeline
# ----------------------------------------------------------------------
class TestPayloadAndMemo:
    def test_full_payload_cached_per_version(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        payload, fresh = explorer.indexes.full_payload("k")
        assert fresh
        again, fresh = explorer.indexes.full_payload("k")
        assert not fresh and again is payload
        assert explorer.indexes.full_payload_ready("k")
        maintainer = explorer.maintainer()
        u, v = next((u, v) for u in karate.vertices()
                    for v in karate.vertices()
                    if u < v and not karate.has_edge(u, v))
        maintainer.insert_edge(u, v)
        assert not explorer.indexes.full_payload_ready("k")
        rebuilt, fresh = explorer.indexes.full_payload("k")
        assert fresh and rebuilt.version != payload.version

    def test_thread_backend_uses_payload_once_cached(self, karate):
        explorer = CExplorer(workers=2)
        explorer.add_graph("k", karate)
        assert not explorer.engine.full_query_capable("k")
        explorer.indexes.full_payload("k")
        assert explorer.engine.full_query_capable("k")
        plain = CExplorer()
        plain.add_graph("k", karate)
        assert explorer.search("global", 0, k=2, use_cache=False) == \
            plain.search("global", 0, k=2, use_cache=False)
        assert explorer.engine.stats.get("worker_full_query") == 1

    def test_strong_edge_set_memoized_across_queries(self, karate):
        explorer = CExplorer(workers=2)
        explorer.add_graph("k", karate, shards=2, partitioner="greedy")
        explorer.search("k-truss", 0, k=3, use_cache=False)
        hits = explorer.engine.memo.stats()["hits"]
        explorer.search("k-truss", 33, k=3, use_cache=False)
        assert explorer.engine.memo.stats()["hits"] > hits

    def test_memo_invalidation_is_version_aware(self):
        from repro.engine.cache import SubproblemMemo
        memo = SubproblemMemo()
        memo.get_or_compute("g", 3, "cltree-keyword", (0,), lambda: "a")
        memo.get_or_compute("g", 7, "ktruss-strong", 4, lambda: "b")
        # Core index moved to 4, truss index still at 7: only the
        # truss intermediate survives.
        memo.invalidate("g", version=4, truss_version=7)
        assert memo.get_or_compute("g", 7, "ktruss-strong", 4,
                                   lambda: "FRESH") == "b"
        assert memo.get_or_compute("g", 3, "cltree-keyword", (0,),
                                   lambda: "FRESH") == "FRESH"
        # Unknown versions drop everything for the graph.
        memo.invalidate("g")
        assert len(memo) == 0

    def test_cut_edge_supports_cached_and_selectively_evicted(
            self, karate):
        explorer = CExplorer(workers=2)
        explorer.add_graph("k", karate, shards=2, partitioner="greedy")
        gateway = explorer.truss_maintainer()
        explorer.search("k-truss", 0, k=3, use_cache=False)
        stats = explorer.indexes.shard_stats("k")["cut_support_cache"]
        assert stats["entries"] > 0 and stats["misses"] > 0
        # A fringe update far from most cut edges: the next merge
        # should find most supports still warm.
        graph = explorer.indexes.graph("k")
        quiet = sorted(graph.vertices(),
                       key=lambda v: (graph.degree(v), v))
        u, v = next((a, b) for a in quiet for b in quiet
                    if a < b and not graph.has_edge(a, b))
        gateway.insert_edge(u, v)
        explorer.search("k-truss", 0, k=3, use_cache=False)
        after = explorer.indexes.shard_stats("k")["cut_support_cache"]
        assert after["hits"] > stats["hits"]
        # Exactness: results still match a plain explorer.
        plain = CExplorer()
        plain.add_graph("k", graph)
        assert explorer.search("k-truss", 0, k=3, use_cache=False) == \
            plain.search("k-truss", 0, k=3)
