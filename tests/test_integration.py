"""End-to-end scenarios: the paper's demonstration walkthroughs."""

from repro.core.acq import acq_search
from repro.core.cltree import build_cltree
from repro.explorer.cexplorer import CExplorer


class TestFigure1Walkthrough:
    """Section 4, 'Community exploration': type a name, pick k, search,
    read the theme, click a member, explore onward."""

    def test_full_exploration_loop(self, dblp_medium):
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_medium)

        # 1. The user types "jim gray"; the panel shows constraints.
        options = explorer.query_options("jim gray")
        assert options["name"] == "Jim Gray"
        assert 4 in options["degree_choices"]

        # 2. Search with degree >= 4 over the author's keywords.
        communities = explorer.search("acq", "jim gray", k=4)
        assert communities
        community = communities[0]
        jim = explorer.graph.id_of("Jim Gray")
        assert jim in community
        assert community.minimum_internal_degree() >= 4

        # 3. The right panel shows a theme of shared keywords.
        assert community.theme()
        # Jim Gray's community is about transactions in our generator.
        assert "transaction" in community.shared_keywords

        # 4. Click a member: the profile pops up (Figure 2)...
        member = next(v for v in community if v != jim)
        profile = explorer.profile(member)
        assert profile.name == explorer.graph.display_name(member)

        # 5. ... and the user explores the member's own community.
        onward = explorer.search("acq", member, k=3)
        assert onward
        assert member in onward[0]

    def test_exploration_is_instant(self, dblp_medium):
        """'the communities will be returned instantly': with a prebuilt
        index an ACQ query must be orders of magnitude below a second."""
        import time
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_medium)
        explorer.index()  # offline step
        start = time.perf_counter()
        explorer.search("acq", "jim gray", k=4)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0


class TestFigure6Walkthrough:
    """Section 4, 'Comparison analysis': compare four methods."""

    def test_comparison_screen(self, dblp_medium):
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_medium)
        report = explorer.compare(
            "jim gray", k=4, methods=("global", "local", "codicil",
                                      "acq"))
        rows = {r["method"]: r for r in report.table_rows()}
        assert set(rows) == {"global", "local", "codicil", "acq"}

        # Shape of the Figure 6(a) table: every method found something,
        # Global's community is the largest of the four.
        assert all(rows[m]["communities"] >= 1 for m in rows)
        sizes = {m: rows[m]["vertices"] for m in rows}
        assert sizes["global"] == max(sizes.values())

        # Quality bars: ACQ leads both CPJ and CMF (the claim of [4]).
        bars = report.quality_bars()
        for other in ("global", "codicil"):
            assert bars["acq"]["cpj"] >= bars[other]["cpj"]
            assert bars["acq"]["cmf"] >= bars[other]["cmf"]

        # The view links: render the ACQ and Local communities side by
        # side as in Figure 6(b).
        for method in ("acq", "local"):
            svg = explorer.display(report.results[method][0], fmt="svg")
            assert svg.startswith("<svg")


class TestIndexConsistencyAtScale:
    def test_index_and_peeling_agree_on_dblp(self, dblp_medium):
        """The CL-tree answers structural queries identically to direct
        peeling on the full 2,000-author graph."""
        from repro.core.kcore import connected_k_core
        tree = build_cltree(dblp_medium)
        jim = dblp_medium.id_of("Jim Gray")
        for k in (1, 2, 4, 6):
            assert tree.community_vertices(jim, k) == \
                connected_k_core(dblp_medium, jim, k)

    def test_acq_variants_agree_on_dblp(self, dblp_medium):
        jim = dblp_medium.id_of("Jim Gray")
        index = build_cltree(dblp_medium)
        keywords = sorted(dblp_medium.keywords(jim))[:8]
        expected = {(c.vertices, c.shared_keywords)
                    for c in acq_search(dblp_medium, jim, 4,
                                        keywords=keywords,
                                        algorithm="dec", index=index)}
        for algorithm in ("inc-s", "inc-t"):
            got = {(c.vertices, c.shared_keywords)
                   for c in acq_search(dblp_medium, jim, 4,
                                       keywords=keywords,
                                       algorithm=algorithm, index=index)}
            assert got == expected
