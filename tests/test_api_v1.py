"""The ``/v1`` API contract: envelope, error codes, shim, batching.

Covers what ``tests/test_server.py`` (the legacy surface) does not:

* every ``/v1`` response wears the uniform envelope with a stable
  machine-readable error code from the registered table;
* the hard-to-reach codes -- ``engine_saturated`` from a wedged
  engine (a fast 429, not a hung socket, on both front-ends) and
  ``deadline_exceeded`` from a tiny server deadline;
* the legacy ``/api/*`` shim serves the same data bare, with
  ``Deprecation``/``Link`` headers;
* request counters bucket by route template, never by raw path;
* the asyncio front-end end-to-end, including cross-query batching
  coalescing a concurrent burst.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.explorer.cexplorer import CExplorer
from repro.server.app import make_server
from repro.server.async_app import make_async_server
from repro.server.routes import ERROR_CODES, translate_error
from repro.util.errors import QueryCancelledError


def _graph():
    from repro.datasets import DblpConfig, generate_dblp_graph
    return generate_dblp_graph(
        DblpConfig(n_authors=400, n_communities=8, seed=13))


@pytest.fixture(scope="module")
def sync_server():
    explorer = CExplorer()
    explorer.add_graph("dblp", _graph())
    srv = make_server(explorer, port=0)
    threading.Thread(target=srv.serve_forever, daemon=True).start()
    yield srv
    srv.shutdown()


@pytest.fixture(scope="module")
def async_server():
    explorer = CExplorer()
    explorer.add_graph("dblp", _graph())
    srv = make_async_server(explorer, port=0)
    srv.start_background()
    yield srv
    srv.shutdown()


def _url(server, path):
    return "http://127.0.0.1:{}{}".format(server.server_address[1],
                                          path)


def _fetch(request):
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, dict(resp.headers), \
                json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def _get(server, path):
    return _fetch(urllib.request.Request(_url(server, path)))


def _post(server, path, doc=None, raw=None):
    body = raw if raw is not None else json.dumps(doc or {}).encode()
    return _fetch(urllib.request.Request(
        _url(server, path), data=body,
        headers={"Content-Type": "application/json"}))


def _assert_envelope(status, doc):
    assert set(doc) <= {"ok", "data", "error", "trace"}
    assert isinstance(doc["ok"], bool)
    if doc["ok"]:
        assert status == 200 and doc["error"] is None
    else:
        assert status != 200 and doc["data"] is None
        error = doc["error"]
        assert error["code"] in ERROR_CODES
        assert ERROR_CODES[error["code"]][0] == status
        assert error["message"]


@pytest.fixture(params=["sync_server", "async_server"])
def server(request):
    return request.getfixturevalue(request.param)


class TestEnvelope:
    def test_success_envelope_on_get_routes(self, server):
        for path in ("/v1/algorithms", "/v1/graphs",
                     "/v1/graphs/dblp", "/v1/metrics", "/v1/traces"):
            status, _, doc = _get(server, path)
            _assert_envelope(status, doc)
            assert doc["ok"], path

    def test_search_success_with_trace(self, server):
        status, _, doc = _post(server, "/v1/search",
                               {"vertex": "jim gray", "k": 3})
        _assert_envelope(status, doc)
        data = doc["data"]
        assert data["query"]["k"] == 3
        assert data["communities"]
        # Traced queries surface the id both in the envelope and the
        # query echo; the trace must be fetchable.
        assert doc.get("trace") == data["query"]["trace"]
        status, _, tdoc = _get(server,
                               "/v1/traces/{}".format(doc["trace"]))
        _assert_envelope(status, tdoc)
        assert tdoc["data"]["query_id"] == doc["trace"]

    def test_graph_detail(self, server):
        status, _, doc = _get(server, "/v1/graphs/dblp")
        assert doc["data"]["vertices"] == 400
        assert "index" in doc["data"]


class TestErrorCodes:
    """Every client-reachable code, each with its frozen status."""

    CASES = [
        ("not_found", "GET", "/v1/nowhere", None, None),
        ("graph_not_found", "GET", "/v1/graphs/missing", None, None),
        ("trace_not_found", "GET", "/v1/traces/zz-none", None, None),
        ("session_not_found", "POST", "/v1/history",
         {"session": "ghost"}, None),
        ("missing_field", "POST", "/v1/search", {"k": 3}, None),
        ("invalid_parameter", "POST", "/v1/search",
         {"vertex": "jim gray", "k": "many"}, None),
        ("unknown_algorithm", "POST", "/v1/search",
         {"vertex": "jim gray", "algorithm": "nope"}, None),
        ("invalid_query", "POST", "/v1/search",
         {"vertex": "nobody at all"}, None),
        ("invalid_json", "POST", "/v1/search", None, b"{nope"),
        ("bad_request", "POST", "/v1/upload",
         {"path": "/no/such/file.txt"}, None),
    ]

    @pytest.mark.parametrize(
        "code,method,path,body,raw",
        CASES, ids=[c[0] for c in CASES])
    def test_code(self, server, code, method, path, body, raw):
        if method == "GET":
            status, _, doc = _get(server, path)
        else:
            status, _, doc = _post(server, path, body, raw=raw)
        _assert_envelope(status, doc)
        assert doc["error"]["code"] == code
        assert status == ERROR_CODES[code][0]

    def test_remaining_codes_via_translation(self):
        # ``cancelled`` and ``internal`` need a racing shutdown or a
        # server bug; pin their wire mapping at the translation seam.
        status, code, _, _, retry = translate_error(
            QueryCancelledError("cancelled before running"))
        assert (status, code, retry) == (503, "cancelled", False)
        status, code, message, _, _ = translate_error(
            ZeroDivisionError("boom"))
        assert (status, code) == (500, "internal")
        assert "boom" in message

    def test_all_codes_covered(self):
        exercised = {c[0] for c in self.CASES} | {
            "cancelled", "internal",
            # driven by the dedicated saturation/deadline tests below
            "engine_saturated", "deadline_exceeded",
            # driven live in tests/test_resilience.py (readiness
            # flips only with a shut-down engine or a full queue)
            "not_ready",
        }
        assert exercised == set(ERROR_CODES)


class TestLegacyShim:
    def test_same_data_bare_body(self, server):
        _, headers, legacy = _get(server, "/api/graphs")
        _, _, v1 = _get(server, "/v1/graphs")
        assert "ok" not in legacy
        assert legacy == v1["data"]
        assert headers.get("Deprecation") == "true"
        assert "/v1/graphs" in headers.get("Link", "")
        assert "successor-version" in headers.get("Link", "")

    def test_v1_routes_not_deprecated(self, server):
        _, headers, _ = _get(server, "/v1/graphs")
        assert "Deprecation" not in headers

    def test_legacy_error_shape(self, server):
        status, headers, doc = _post(server, "/api/history",
                                     {"session": "ghost"})
        # The historical /api/history contract: 400, {"error": msg}.
        assert status == 400
        assert set(doc) == {"error"}
        assert headers.get("Deprecation") == "true"
        status, _, doc = _post(server, "/v1/history",
                               {"session": "ghost"})
        assert status == 404
        assert doc["error"]["code"] == "session_not_found"

    def test_search_equivalence(self, server):
        _, _, legacy = _post(server, "/api/search",
                             {"vertex": "jim gray", "k": 3})
        _, _, v1 = _post(server, "/v1/search",
                         {"vertex": "jim gray", "k": 3})
        legacy_c = [c["vertices"] for c in legacy["communities"]]
        v1_c = [c["vertices"] for c in v1["data"]["communities"]]
        assert legacy_c == v1_c


class TestRequestCounting:
    def test_trace_ids_bucket_by_template(self, server):
        _, _, doc = _post(server, "/v1/search",
                          {"vertex": "jim gray", "k": 4})
        for _ in range(2):
            _get(server, "/v1/traces/{}".format(doc["trace"]))
        _, _, metrics = _get(server, "/v1/metrics")
        requests = metrics["data"]["requests"]
        assert requests["/v1/traces/{query_id}"] >= 2
        assert not any(key.startswith("/v1/traces/q")
                       for key in requests)

    def test_unknown_paths_bucket_together(self, server):
        _get(server, "/v1/probe-a")
        _get(server, "/v1/probe-b")
        _, _, metrics = _get(server, "/v1/metrics")
        requests = metrics["data"]["requests"]
        assert requests["(unknown)"] >= 2
        assert "/v1/probe-a" not in requests


def _wedge(engine, seconds):
    """Occupy every worker with a slow job; returns their futures."""
    release = threading.Event()

    def slow():
        release.wait(seconds)

    futures = [engine.submit(slow, op="wedge")
               for _ in range(engine.workers)]
    # Let the workers pick the wedge jobs off the queue before the
    # caller fills it, so queue occupancy is deterministic.
    deadline = time.perf_counter() + 5.0
    while engine.snapshot()["in_flight"] < engine.workers \
            and time.perf_counter() < deadline:
        time.sleep(0.005)
    return release, futures


class TestSaturationAndDeadline:
    """The overload codes: fast rejections, never hung sockets."""

    @pytest.mark.parametrize("kind", ["sync", "async"])
    def test_engine_saturated(self, kind):
        explorer = CExplorer(workers=1, max_queue=1)
        explorer.add_graph("dblp", _graph())
        if kind == "async":
            srv = make_async_server(explorer, port=0)
            srv.start_background()
        else:
            srv = make_server(explorer, port=0)
            threading.Thread(target=srv.serve_forever,
                             daemon=True).start()
        try:
            release, _ = _wedge(explorer.engine, 30.0)
            # Fill the 1-slot queue behind the wedged worker.
            explorer.engine.submit(lambda: None, op="filler")
            started = time.perf_counter()
            status, _, doc = _post(srv, "/v1/search",
                                   {"vertex": "jim gray", "k": 3})
            elapsed = time.perf_counter() - started
            release.set()
            _assert_envelope(status, doc)
            assert status == 429
            assert doc["error"]["code"] == "engine_saturated"
            assert doc["error"]["retry"] is True
            # The point of admission control: rejection is immediate,
            # not a socket held open until some deadline.
            assert elapsed < 5.0
        finally:
            srv.shutdown()

    def test_deadline_exceeded(self):
        explorer = CExplorer(workers=1, max_queue=8)
        explorer.add_graph("dblp", _graph())
        srv = make_server(explorer, port=0, query_timeout=0.05)
        threading.Thread(target=srv.serve_forever,
                         daemon=True).start()
        try:
            release, _ = _wedge(explorer.engine, 30.0)
            status, _, doc = _post(srv, "/v1/search",
                                   {"vertex": "jim gray", "k": 3})
            release.set()
            _assert_envelope(status, doc)
            assert status == 504
            assert doc["error"]["code"] == "deadline_exceeded"
        finally:
            srv.shutdown()

    def test_batched_saturation_is_not_a_hung_socket(self):
        """With batching on, a full queue must still answer 429
        through the batcher's group-failure path."""
        explorer = CExplorer(workers=1, max_queue=1)
        explorer.add_graph("dblp", _graph())
        srv = make_async_server(explorer, port=0, batch_window=0.01)
        srv.start_background()
        try:
            release, _ = _wedge(explorer.engine, 30.0)
            explorer.engine.submit(lambda: None, op="filler")
            started = time.perf_counter()
            status, _, doc = _post(srv, "/v1/search",
                                   {"vertex": "jim gray", "k": 3})
            elapsed = time.perf_counter() - started
            release.set()
            assert status == 429
            assert doc["error"]["code"] == "engine_saturated"
            assert elapsed < 5.0
        finally:
            srv.shutdown()


class TestAsyncBatching:
    def test_concurrent_burst_coalesces(self):
        explorer = CExplorer(workers=2)
        explorer.add_graph("dblp", _graph())
        srv = make_async_server(explorer, port=0, batch_window=0.05)
        srv.start_background()
        try:
            vertices = ["jim gray"] * 4 + ["michael stonebraker",
                                           "gerhard weikum"]
            results = [None] * len(vertices)

            def query(i, vertex):
                results[i] = _post(srv, "/v1/search",
                                   {"vertex": vertex, "k": 3})

            threads = [threading.Thread(target=query, args=(i, v))
                       for i, v in enumerate(vertices)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for status, _, doc in results:
                _assert_envelope(status, doc)
                assert doc["ok"]
            # The four duplicates share one execution...
            identical = [json.dumps(doc["data"]["communities"])
                         for _, _, doc in results[:4]]
            assert len(set(identical)) == 1
            # ...and the stats plane shows the coalescing.
            _, _, metrics = _get(srv, "/v1/metrics")
            batching = metrics["data"]["batching"]
            assert batching["batched_queries"] >= 6
            assert batching["shared_answers"] >= 1
            assert batching["batches"] < len(vertices)
        finally:
            srv.shutdown()

    def test_burst_matches_serial_results(self):
        serial = CExplorer()
        serial.add_graph("dblp", _graph())
        expected = {
            vertex: json.dumps(
                [c.to_dict() for c in serial.search("acq", vertex,
                                                    k=3)])
            for vertex in ("jim gray", "michael stonebraker")
        }
        explorer = CExplorer(workers=2)
        explorer.add_graph("dblp", _graph())
        srv = make_async_server(explorer, port=0, batch_window=0.05)
        srv.start_background()
        try:
            got = {}

            def query(vertex):
                _, _, doc = _post(srv, "/v1/search",
                                  {"vertex": vertex, "k": 3,
                                   "algorithm": "acq"})
                got[vertex] = json.dumps(doc["data"]["communities"])

            threads = [threading.Thread(target=query, args=(v,))
                       for v in expected]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert got == expected
        finally:
            srv.shutdown()


class TestAsyncTransport:
    def test_keep_alive_and_html(self, async_server):
        status, headers, doc = _get(async_server, "/v1/algorithms")
        assert status == 200 and doc["ok"]
        with urllib.request.urlopen(_url(async_server, "/")) as resp:
            assert resp.headers["Content-Type"].startswith("text/html")
            assert b"C-Explorer" in resp.read()

    def test_prometheus_exposition(self, async_server):
        with urllib.request.urlopen(
                _url(async_server, "/metrics")) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert "repro_uptime_seconds" in resp.read().decode()
