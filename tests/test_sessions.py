"""Tests for the query cache and exploration sessions."""

import threading

import pytest

from repro.explorer.sessions import (
    ExplorationSession,
    QueryCache,
    SessionStore,
)


class TestQueryCache:
    def test_put_get(self):
        cache = QueryCache()
        key = cache.key("g", "acq", 3, 4)
        assert cache.get(key) is None
        cache.put(key, ["result"])
        assert cache.get(key) == ["result"]

    def test_key_normalises_vertex_collections(self):
        cache = QueryCache()
        assert cache.key("g", "acq", [3, 1], 4) == \
            cache.key("g", "acq", (1, 3), 4)
        assert cache.key("g", "acq", 1, 4, {"a", "b"}) == \
            cache.key("g", "acq", 1, 4, ["b", "a"])

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        k1, k2, k3 = (("g", "a", i, 0, None) for i in range(3))
        cache.put(k1, 1)
        cache.put(k2, 2)
        cache.get(k1)        # refresh k1: k2 becomes the LRU entry
        cache.put(k3, 3)
        assert cache.get(k1) == 1
        assert cache.get(k2) is None
        assert cache.get(k3) == 3

    def test_invalidate_single_graph(self):
        cache = QueryCache()
        cache.put(cache.key("g1", "acq", 1, 2), "a")
        cache.put(cache.key("g2", "acq", 1, 2), "b")
        cache.invalidate("g1")
        assert cache.get(cache.key("g1", "acq", 1, 2)) is None
        assert cache.get(cache.key("g2", "acq", 1, 2)) == "b"

    def test_invalidate_all(self):
        cache = QueryCache()
        cache.put(cache.key("g", "acq", 1, 2), "a")
        cache.invalidate()
        assert len(cache) == 0

    def test_stats(self):
        cache = QueryCache(capacity=8)
        key = cache.key("g", "acq", 1, 2)
        cache.get(key)
        cache.put(key, "x")
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)

    def test_thread_safety_smoke(self):
        cache = QueryCache(capacity=64)
        errors = []

        def worker(wid):
            try:
                for i in range(200):
                    key = cache.key("g", "acq", i % 40, wid % 3)
                    cache.put(key, i)
                    cache.get(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


class TestExplorationSession:
    def test_record_and_history(self):
        session = ExplorationSession("s1")
        session.record("acq", "jim gray", 4, 1)
        session.record("global", "jim gray", 4, 1, keywords={"data"})
        assert len(session) == 2
        history = session.history()
        assert history[0]["algorithm"] == "global"  # most recent first
        assert history[0]["keywords"] == ["data"]
        assert history[1]["algorithm"] == "acq"

    def test_history_limit(self):
        session = ExplorationSession("s1")
        for i in range(5):
            session.record("acq", "v{}".format(i), 4, 1)
        assert len(session.history(limit=2)) == 2

    def test_last(self):
        session = ExplorationSession("s1")
        assert session.last() is None
        session.record("acq", "x", 1, 0)
        assert session.last()["vertex"] == "x"

    def test_max_entries_trim(self):
        session = ExplorationSession("s1", max_entries=3)
        for i in range(10):
            session.record("acq", "v{}".format(i), 4, 1)
        assert len(session) == 3
        assert session.last()["vertex"] == "v9"


class TestSessionStore:
    def test_create_unique_ids(self):
        store = SessionStore()
        a, b = store.create(), store.create()
        assert a.session_id != b.session_id
        assert len(store) == 2

    def test_get_creates_when_allowed(self):
        store = SessionStore()
        session = store.get("browser-123")
        assert session.session_id == "browser-123"
        assert store.get("browser-123") is session

    def test_get_strict(self):
        store = SessionStore()
        assert store.get("ghost", create_missing=False) is None


class TestExplorerCacheIntegration:
    def test_repeated_search_hits_cache(self, dblp_small):
        from repro.explorer.cexplorer import CExplorer
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_small)
        first = explorer.search("acq", "jim gray", k=3)
        assert explorer.cache.stats()["misses"] >= 1
        second = explorer.search("acq", "jim gray", k=3)
        assert second is first  # the exact cached list
        assert explorer.cache.stats()["hits"] >= 1

    def test_cache_bypass(self, dblp_small):
        from repro.explorer.cexplorer import CExplorer
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_small)
        first = explorer.search("acq", "jim gray", k=3, use_cache=False)
        second = explorer.search("acq", "jim gray", k=3, use_cache=False)
        assert second is not first
        assert explorer.cache.stats()["hits"] == 0

    def test_replacing_graph_invalidates(self, dblp_small):
        from repro.explorer.cexplorer import CExplorer
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_small)
        explorer.search("acq", "jim gray", k=3)
        explorer.add_graph("dblp", dblp_small.copy())
        assert len(explorer.cache) == 0
