"""Tests for GraphML/CSV export."""

import csv

import networkx as nx

from repro.core.community import Community
from repro.graph.export import (
    community_subgraph,
    write_community_csv,
    write_graphml,
)

from conftest import build_graph


def _community():
    g = build_graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)],
                    {v: {"kw{}".format(v)} for v in range(4)})
    return Community(g, {0, 1, 2}, query_vertices=(0,))


class TestGraphml:
    def test_readable_by_networkx(self, fig5, tmp_path):
        path = str(tmp_path / "g.graphml")
        write_graphml(fig5, path)
        nxg = nx.read_graphml(path)
        assert nxg.number_of_nodes() == 10
        assert nxg.number_of_edges() == 11
        labels = {data["label"] for _, data in nxg.nodes(data=True)}
        assert labels == set("ABCDEFGHIJ")

    def test_keywords_joined(self, fig5, tmp_path):
        path = str(tmp_path / "g.graphml")
        write_graphml(fig5, path)
        nxg = nx.read_graphml(path)
        node = "n{}".format(fig5.id_of("A"))
        assert nxg.nodes[node]["keywords"] == "w|x|y"

    def test_community_flag(self, tmp_path):
        c = _community()
        path = str(tmp_path / "g.graphml")
        write_graphml(c.graph, path, community=c)
        nxg = nx.read_graphml(path)
        flags = {node: data["community"]
                 for node, data in nxg.nodes(data=True)}
        assert flags["n0"] is True
        assert flags["n3"] is False

    def test_escaping(self, tmp_path):
        g = build_graph(1, [], {0: {"a<b"}})
        g.relabel(0, 'Q&A "quoted"')
        path = str(tmp_path / "esc.graphml")
        write_graphml(g, path)
        nxg = nx.read_graphml(path)
        assert nxg.nodes["n0"]["label"] == 'Q&A "quoted"'


class TestCsv:
    def test_edge_file(self, tmp_path):
        c = _community()
        edge_path = str(tmp_path / "edges.csv")
        write_community_csv(c, edge_path)
        with open(edge_path) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["source", "target"]
        assert ["n0", "n1"] in rows
        assert len(rows) == 4  # header + 3 edges

    def test_vertex_file(self, tmp_path):
        c = _community()
        edge_path = str(tmp_path / "edges.csv")
        vertex_path = str(tmp_path / "vertices.csv")
        write_community_csv(c, edge_path, vertex_path)
        with open(vertex_path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 3
        by_name = {r["name"]: r for r in rows}
        assert by_name["n0"]["internal_degree"] == "2"
        assert by_name["n1"]["keywords"] == "kw1"

    def test_quoting(self, tmp_path):
        g = build_graph(2, [(0, 1)])
        g.relabel(0, 'Smith, "Jim"')
        c = Community(g, {0, 1})
        edge_path = str(tmp_path / "edges.csv")
        write_community_csv(c, edge_path)
        with open(edge_path) as f:
            rows = list(csv.reader(f))
        assert rows[1][0] == 'Smith, "Jim"'


class TestReadGraphml:
    def test_roundtrip(self, fig5, tmp_path):
        from repro.graph.export import read_graphml
        path = str(tmp_path / "g.graphml")
        write_graphml(fig5, path)
        loaded = read_graphml(path)
        assert loaded.vertex_count == 10
        assert loaded.edge_count == 11
        a = loaded.id_of("A")
        assert loaded.keywords(a) == {"w", "x", "y"}

    def test_label_falls_back_to_node_id(self, tmp_path):
        from repro.graph.export import read_graphml
        path = tmp_path / "min.graphml"
        path.write_text(
            '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
            '<graph id="G" edgedefault="undirected">'
            '<node id="x"/><node id="y"/>'
            '<edge id="e0" source="x" target="y"/>'
            '</graph></graphml>')
        g = read_graphml(str(path))
        assert g.has_label("x") and g.has_label("y")
        assert g.edge_count == 1

    def test_directed_rejected(self, tmp_path):
        from repro.graph.export import read_graphml
        from repro.util.errors import GraphFormatError
        import pytest
        path = tmp_path / "d.graphml"
        path.write_text(
            '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
            '<graph id="G" edgedefault="directed"></graph></graphml>')
        with pytest.raises(GraphFormatError):
            read_graphml(str(path))

    def test_invalid_xml_rejected(self, tmp_path):
        from repro.graph.export import read_graphml
        from repro.util.errors import GraphFormatError
        import pytest
        path = tmp_path / "bad.graphml"
        path.write_text("<graphml><unclosed>")
        with pytest.raises(GraphFormatError):
            read_graphml(str(path))

    def test_unknown_edge_endpoint_rejected(self, tmp_path):
        from repro.graph.export import read_graphml
        from repro.util.errors import GraphFormatError
        import pytest
        path = tmp_path / "e.graphml"
        path.write_text(
            '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
            '<graph id="G" edgedefault="undirected">'
            '<node id="x"/>'
            '<edge id="e0" source="x" target="ghost"/>'
            '</graph></graphml>')
        with pytest.raises(GraphFormatError):
            read_graphml(str(path))


class TestCommunitySubgraph:
    def test_materialises_induced(self):
        c = _community()
        sub = community_subgraph(c)
        assert sub.vertex_count == 3
        assert sub.edge_count == 3
        assert sub.has_label("n0")
