"""Tests for graph validation (the upload sanity checks)."""

import pytest

from repro.graph.attributed import AttributedGraph
from repro.graph.validation import validate_graph
from repro.util.errors import GraphFormatError


def test_valid_graph_report(fig5):
    report = validate_graph(fig5)
    assert report["isolated_vertices"] == 1  # J
    assert report["vertices_without_keywords"] == 0


def test_require_keywords(fig5):
    g = AttributedGraph()
    g.add_vertex("a")
    with pytest.raises(GraphFormatError, match="empty keyword"):
        validate_graph(g, require_keywords=True)
    validate_graph(fig5, require_keywords=True)


def test_detects_asymmetric_adjacency():
    g = AttributedGraph()
    g.add_vertex()
    g.add_vertex()
    g.add_edge(0, 1)
    g.neighbors(1).discard(0)  # corrupt the internal structure
    with pytest.raises(GraphFormatError, match="asymmetric"):
        validate_graph(g)


def test_detects_bad_edge_counter():
    g = AttributedGraph()
    g.add_vertex()
    g.add_vertex()
    g.add_edge(0, 1)
    g._m = 5  # corrupt the counter
    with pytest.raises(GraphFormatError, match="edge counter"):
        validate_graph(g)


def test_detects_self_loop():
    g = AttributedGraph()
    g.add_vertex()
    g.neighbors(0).add(0)  # bypass add_edge's guard
    with pytest.raises(GraphFormatError, match="self-loop"):
        validate_graph(g)


def test_detects_dangling_neighbor():
    g = AttributedGraph()
    g.add_vertex()
    g.neighbors(0).add(99)
    with pytest.raises(GraphFormatError, match="unknown vertex"):
        validate_graph(g)


def test_counts_isolated_and_keywordless():
    g = AttributedGraph()
    g.add_vertex("a", {"x"})
    g.add_vertex("b")
    report = validate_graph(g)
    assert report["isolated_vertices"] == 2
    assert report["vertices_without_keywords"] == 1
