"""Tests for Newman-Girvan detection and edge betweenness."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.algorithms.newman_girvan import (
    edge_betweenness,
    modularity,
    newman_girvan,
)
from repro.datasets.karate import karate_factions

from conftest import build_graph, random_graphs


class TestEdgeBetweenness:
    def test_path_graph_middle_edge_highest(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3)])
        b = edge_betweenness(g)
        assert b[(1, 2)] > b[(0, 1)]
        assert b[(0, 1)] == b[(2, 3)]

    def test_bridge_dominates(self):
        # Two triangles joined by a bridge: the bridge carries all
        # cross traffic.
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5), (2, 3)])
        b = edge_betweenness(g)
        assert max(b, key=b.get) == (2, 3)

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=14, max_m=40))
    def test_matches_networkx(self, g):
        """Property: agrees with NetworkX's edge_betweenness_centrality
        (un-normalised)."""
        nxg = nx.Graph()
        nxg.add_nodes_from(g.vertices())
        nxg.add_edges_from(g.edges())
        theirs = nx.edge_betweenness_centrality(nxg, normalized=False)
        ours = edge_betweenness(g)
        assert set(ours) == {tuple(sorted(e)) for e in theirs}
        for e, score in theirs.items():
            key = tuple(sorted(e))
            assert ours[key] == pytest.approx(score)

    def test_members_restriction(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3)])
        b = edge_betweenness(g, members={0, 1, 2})
        assert (2, 3) not in b


class TestModularity:
    def test_single_community_zero(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert modularity(g, [{0, 1, 2}]) == pytest.approx(0.0)

    def test_two_cliques_partition_positive(self):
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5), (2, 3)])
        good = modularity(g, [{0, 1, 2}, {3, 4, 5}])
        bad = modularity(g, [{0, 3}, {1, 4}, {2, 5}])
        assert good > 0.3
        assert good > bad

    def test_empty_graph(self):
        g = build_graph(2, [])
        assert modularity(g, [{0}, {1}]) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(max_n=12, max_m=30))
    def test_matches_networkx_modularity(self, g):
        if g.edge_count == 0:
            return
        nxg = nx.Graph()
        nxg.add_nodes_from(g.vertices())
        nxg.add_edges_from(g.edges())
        partition = [set(c) for c in g.connected_components()]
        theirs = nx.algorithms.community.modularity(nxg, partition)
        assert modularity(g, partition) == pytest.approx(theirs)


class TestNewmanGirvan:
    def test_two_cliques(self):
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5), (2, 3)])
        communities, q = newman_girvan(g)
        assert sorted(sorted(c.vertices) for c in communities) == \
            [[0, 1, 2], [3, 4, 5]]
        assert q > 0.3

    def test_karate_two_main_groups(self, karate):
        communities, q = newman_girvan(karate, max_removals=15)
        assert q > 0.2
        factions = karate_factions()
        big = sorted(communities, key=len, reverse=True)[:2]
        for c in big:
            overlaps = [len(c.vertices & members)
                        for members in factions.values()]
            assert max(overlaps) / len(c) >= 0.7

    def test_max_removals_bounds_work(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        communities, _ = newman_girvan(g, max_removals=1)
        covered = sorted(v for c in communities for v in c)
        assert covered == [0, 1, 2, 3]

    def test_target_clusters_stops_early(self):
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5), (2, 3)])
        communities, _ = newman_girvan(g, target_clusters=2)
        assert len(communities) >= 2

    def test_edgeless_graph(self):
        g = build_graph(3, [])
        communities, _ = newman_girvan(g)
        assert len(communities) == 3
