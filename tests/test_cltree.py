"""Tests for the CL-tree index (Figure 5(b))."""

from hypothesis import given

from repro.core.cltree import build_cltree, build_cltree_basic
from repro.core.kcore import connected_k_core, core_decomposition

from conftest import build_graph, random_graphs


def _tree_shape(tree):
    """Canonical structure: frozenset-based recursive description."""
    def node_shape(node):
        return (node.k, frozenset(node.vertices),
                frozenset(node_shape(c) for c in node.children))
    return frozenset(node_shape(r) for r in tree.roots)


class TestFigure5:
    """The index must match Figure 5(b) of the paper exactly."""

    def test_advanced_structure(self, fig5):
        tree = build_cltree(fig5)
        assert tree.describe() == (
            "[k=0] {J}\n"
            "  [k=1] {F, G}\n"
            "    [k=2] {E}\n"
            "      [k=3] {A, B, C, D}\n"
            "  [k=1] {H, I}"
        )

    def test_basic_structure_identical(self, fig5):
        assert (_tree_shape(build_cltree(fig5))
                == _tree_shape(build_cltree_basic(fig5)))

    def test_single_root_homes_isolated_vertex(self, fig5):
        tree = build_cltree(fig5)
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.k == 0
        assert [fig5.label(v) for v in root.vertices] == ["J"]

    def test_node_of_respects_core_numbers(self, fig5):
        tree = build_cltree(fig5)
        core = core_decomposition(fig5)
        for v in fig5.vertices():
            assert tree.node_of(v).k == core[v]

    def test_inverted_lists(self, fig5):
        tree = build_cltree(fig5)
        node3 = tree.node_of(fig5.id_of("A"))
        # Keyword x appears on A, B, C, D (all homed at the k=3 node).
        assert sorted(fig5.label(v) for v in node3.inverted["x"]) == \
            ["A", "B", "C", "D"]
        assert sorted(fig5.label(v) for v in node3.inverted["w"]) == ["A"]
        assert "z" in node3.inverted  # D carries z

    def test_subtree_size(self, fig5):
        tree = build_cltree(fig5)
        assert tree.roots[0].subtree_size() == 10
        node1 = tree.node_of(fig5.id_of("F"))
        assert node1.subtree_size() == 7  # A..G

    def test_node_count(self, fig5):
        assert build_cltree(fig5).node_count() == 5


class TestQueries:
    def test_component_root_walks_up(self, fig5):
        tree = build_cltree(fig5)
        a = fig5.id_of("A")
        assert tree.component_root(a, 3).k == 3
        assert tree.component_root(a, 2).k == 2
        assert tree.component_root(a, 1).k == 1

    def test_component_root_above_core_number(self, fig5):
        tree = build_cltree(fig5)
        assert tree.component_root(fig5.id_of("E"), 3) is None
        assert tree.component_root(fig5.id_of("J"), 1) is None

    def test_community_vertices_matches_peeling(self, fig5):
        tree = build_cltree(fig5)
        a = fig5.id_of("A")
        for k in range(0, 4):
            assert tree.community_vertices(a, k) == \
                connected_k_core(fig5, a, k)

    def test_community_vertices_k0_connected(self, fig5):
        """k=0 must return the connected component, not the whole
        (disconnected) 0-core the root represents."""
        tree = build_cltree(fig5)
        h = fig5.id_of("H")
        assert {fig5.label(v) for v in tree.community_vertices(h, 0)} == \
            {"H", "I"}
        j = fig5.id_of("J")
        assert tree.community_vertices(j, 0) == {j}

    def test_keyword_support(self, fig5):
        tree = build_cltree(fig5)
        root = tree.component_root(fig5.id_of("A"), 2)
        support = tree.keyword_support(root, ["x", "y", "w", "nope"])
        # In {A,B,C,D,E}: x on A,B,C,D; y on A,C,D,E; w on A.
        assert support == {"x": 4, "y": 4, "w": 1, "nope": 0}

    def test_vertices_with_keyword(self, fig5):
        tree = build_cltree(fig5)
        root = tree.component_root(fig5.id_of("A"), 1)
        got = {fig5.label(v) for v in tree.vertices_with_keyword(root, "y")}
        assert got == {"A", "C", "D", "E", "F", "G"}

    def test_vertices_with_keywords_intersection(self, fig5):
        tree = build_cltree(fig5)
        root = tree.component_root(fig5.id_of("A"), 1)
        got = {fig5.label(v)
               for v in tree.vertices_with_keywords(root, ["x", "y"])}
        assert got == {"A", "C", "D", "G"}

    def test_vertices_with_keywords_empty_keywords(self, fig5):
        tree = build_cltree(fig5)
        root = tree.component_root(fig5.id_of("H"), 1)
        got = tree.vertices_with_keywords(root, [])
        assert {fig5.label(v) for v in got} == {"H", "I"}

    def test_index_size_counts(self, fig5):
        sizes = build_cltree(fig5).index_size()
        assert sizes["vertex_entries"] == 10
        assert sizes["nodes"] == 5
        total_kw = sum(len(fig5.keywords(v)) for v in fig5.vertices())
        assert sizes["postings"] == total_kw


class TestEdgeCases:
    def test_empty_graph(self):
        tree = build_cltree(build_graph(0, []))
        assert tree.roots == []
        assert tree.node_count() == 0

    def test_all_isolated(self):
        g = build_graph(3, [])
        tree = build_cltree(g)
        assert len(tree.roots) == 1
        assert tree.roots[0].k == 0
        assert sorted(tree.roots[0].vertices) == [0, 1, 2]

    def test_connected_min_core_one_has_no_zero_node(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        tree = build_cltree(g)
        assert len(tree.roots) == 1
        assert tree.roots[0].k == 1

    def test_two_cliques_get_zero_root(self):
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5)])
        tree = build_cltree(g)
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.k == 0
        assert root.vertices == []
        assert sorted(child.k for child in root.children) == [2, 2]


class TestBuilderEquivalence:
    @given(random_graphs(max_n=26, max_m=90))
    def test_advanced_equals_basic(self, g):
        """Property: both builders produce the identical tree shape."""
        assert (_tree_shape(build_cltree(g))
                == _tree_shape(build_cltree_basic(g)))

    @given(random_graphs(max_n=22, max_m=70))
    def test_index_queries_match_peeling(self, g):
        """Property: community_vertices == connected_k_core everywhere."""
        tree = build_cltree(g)
        core = core_decomposition(g)
        for v in g.vertices():
            for k in (0, 1, 2, core[v], core[v] + 1):
                expected = connected_k_core(g, v, k)
                assert tree.community_vertices(v, k) == expected

    @given(random_graphs(max_n=24, max_m=80))
    def test_every_vertex_homed_once(self, g):
        """Property: nodes partition the vertex set; parents have
        strictly smaller k than children."""
        tree = build_cltree(g)
        seen = []
        for root in tree.roots:
            for node in root.subtree_nodes():
                seen.extend(node.vertices)
                for child in node.children:
                    assert child.k > node.k
                    assert child.parent is node
        assert sorted(seen) == list(g.vertices())
