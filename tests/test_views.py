"""Tests for SubgraphView."""

import pytest
from hypothesis import given, strategies as st

from repro.graph.views import SubgraphView

from conftest import build_graph, random_graphs


def _triangle_plus_tail():
    # 0-1-2 triangle, 2-3 tail, 4 isolated
    return build_graph(5, [(0, 1), (1, 2), (0, 2), (2, 3)])


class TestSubgraphView:
    def test_membership_and_len(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1, 2])
        assert len(view) == 3
        assert 0 in view and 3 not in view

    def test_degree_counts_only_inside(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1, 2])
        assert view.degree(2) == 2  # edge to 3 excluded
        assert view.degree(0) == 2

    def test_neighbors_filtered(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [1, 2, 3])
        assert set(view.neighbors(2)) == {1, 3}

    def test_degree_of_outsider_raises(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1])
        with pytest.raises(KeyError):
            view.degree(4)
        with pytest.raises(KeyError):
            list(view.neighbors(4))

    def test_view_copies_input_set(self):
        g = _triangle_plus_tail()
        members = {0, 1}
        view = SubgraphView(g, members)
        members.add(2)
        assert 2 not in view

    def test_discard_peels(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1, 2, 3])
        view.discard(3)
        assert 3 not in view
        assert view.edge_count == 3
        view.discard(3)  # no-op
        assert len(view) == 3

    def test_edge_count_and_edges(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1, 2, 3])
        assert view.edge_count == 4
        assert sorted(view.edges()) == [(0, 1), (0, 2), (1, 2), (2, 3)]

    def test_connected_component_within_view(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1, 3])  # 2 missing: 3 disconnected
        assert view.connected_component(0) == {0, 1}
        assert view.connected_component(3) == {3}

    def test_connected_components(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1, 3, 4])
        comps = sorted(sorted(c) for c in view.connected_components())
        assert comps == [[0, 1], [3], [4]]

    def test_vertex_set_is_copy(self):
        g = _triangle_plus_tail()
        view = SubgraphView(g, [0, 1])
        vs = view.vertex_set()
        vs.add(2)
        assert 2 not in view


@given(random_graphs(), st.data())
def test_view_matches_materialised_subgraph(g, data):
    """Property: a view agrees with the materialised induced subgraph."""
    n = g.vertex_count
    members = data.draw(st.sets(st.integers(0, n - 1)))
    view = SubgraphView(g, members)
    sub, mapping = g.induced_subgraph(members)
    assert view.vertex_count == sub.vertex_count
    assert view.edge_count == sub.edge_count
    for old, new in mapping.items():
        assert view.degree(old) == sub.degree(new)
