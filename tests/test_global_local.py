"""Tests for the Global and Local community-search baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.global_search import global_max_min_degree, global_search
from repro.algorithms.local_search import local_search
from repro.core.kcore import connected_k_core, core_decomposition
from repro.util.errors import QueryError

from conftest import random_graphs


class TestGlobal:
    def test_fig5_k2(self, fig5):
        result = global_search(fig5, fig5.id_of("A"), 2)
        assert len(result) == 1
        assert {fig5.label(v) for v in result[0]} == \
            {"A", "B", "C", "D", "E"}
        assert result[0].method == "Global"

    def test_no_community_above_core_number(self, fig5):
        assert global_search(fig5, fig5.id_of("E"), 3) == []

    def test_unknown_vertex(self, fig5):
        with pytest.raises(QueryError):
            global_search(fig5, 999, 2)

    def test_negative_k(self, fig5):
        with pytest.raises(QueryError):
            global_search(fig5, 0, -2)

    def test_k0_gives_connected_component(self, fig5):
        result = global_search(fig5, fig5.id_of("H"), 0)
        assert {fig5.label(v) for v in result[0]} == {"H", "I"}

    @settings(max_examples=50, deadline=None)
    @given(random_graphs(), st.integers(0, 4))
    def test_matches_connected_k_core(self, g, k):
        """Property: Global == the connected k-core of q, everywhere."""
        for q in range(g.vertex_count):
            expected = connected_k_core(g, q, k)
            result = global_search(g, q, k)
            if expected is None:
                assert result == []
            else:
                assert result[0].vertices == frozenset(expected)

    def test_max_min_degree_variant(self, fig5):
        community, k_star = global_max_min_degree(fig5, fig5.id_of("A"))
        assert k_star == 3
        assert {fig5.label(v) for v in community} == {"A", "B", "C", "D"}

    @given(random_graphs())
    def test_max_min_degree_is_core_number(self, g):
        core = core_decomposition(g)
        for q in range(min(g.vertex_count, 6)):
            community, k_star = global_max_min_degree(g, q)
            assert k_star == core[q]
            assert community.minimum_internal_degree() >= k_star


class TestLocal:
    def test_fig5_finds_k2_community(self, fig5):
        result = local_search(fig5, fig5.id_of("A"), 2)
        assert len(result) == 1
        community = result[0]
        assert fig5.id_of("A") in community
        assert community.minimum_internal_degree() >= 2
        assert community.method == "Local"

    def test_degree_too_small_early_exit(self, fig5):
        assert local_search(fig5, fig5.id_of("J"), 1) == []
        assert local_search(fig5, fig5.id_of("G"), 3) == []

    def test_unknown_vertex(self, fig5):
        with pytest.raises(QueryError):
            local_search(fig5, -3, 2)

    def test_negative_k(self, fig5):
        with pytest.raises(QueryError):
            local_search(fig5, 0, -1)

    def test_local_subset_of_global(self, dblp_small):
        """Local's community is contained in Global's k-core component."""
        q = dblp_small.id_of("Jim Gray")
        local = local_search(dblp_small, q, 3)
        global_ = global_search(dblp_small, q, 3)
        if local and global_:
            assert local[0].vertices <= global_[0].vertices
            assert len(local[0]) <= len(global_[0])

    def test_budget_limits_expansion(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        result = local_search(dblp_small, q, 3, budget=30)
        if result:
            assert len(result[0]) <= 30

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(), st.integers(0, 3))
    def test_result_satisfies_constraints(self, g, k):
        """Property: any Local community contains q, is connected, and
        has min internal degree >= k."""
        for q in range(min(g.vertex_count, 5)):
            result = local_search(g, q, k)
            if not result:
                continue
            community = result[0]
            assert q in community
            assert community.minimum_internal_degree() >= k
            members = community.vertices
            seen = {q}
            stack = [q]
            while stack:
                u = stack.pop()
                for w in g.neighbors(u):
                    if w in members and w not in seen:
                        seen.add(w)
                        stack.append(w)
            assert seen == set(members)
