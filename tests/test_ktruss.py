"""Tests for k-truss decomposition, with NetworkX as oracle."""

import networkx as nx
import pytest
from hypothesis import given

from repro.core.ktruss import (
    connected_k_truss,
    edge_support,
    k_truss,
    max_truss_number,
    truss_decomposition,
)

from conftest import build_graph, random_graphs


def _to_nx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(g.vertices())
    nxg.add_edges_from(g.edges())
    return nxg


def _triangle():
    return build_graph(3, [(0, 1), (1, 2), (0, 2)])


class TestEdgeSupport:
    def test_triangle_support(self):
        assert edge_support(_triangle()) == {(0, 1): 1, (0, 2): 1,
                                             (1, 2): 1}

    def test_path_has_zero_support(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        assert edge_support(g) == {(0, 1): 0, (1, 2): 0}

    def test_subset_restriction(self):
        g = _triangle()
        support = edge_support(g, subset={0, 1})
        assert support == {(0, 1): 0}

    def test_k4_support(self):
        g = build_graph(4, [(i, j) for i in range(4) for j in range(i)])
        assert all(s == 2 for s in edge_support(g).values())


class TestTrussDecomposition:
    def test_empty(self):
        assert truss_decomposition(build_graph(3, [])) == {}
        assert max_truss_number(build_graph(3, [])) == 0

    def test_single_edge_truss_two(self):
        g = build_graph(2, [(0, 1)])
        assert truss_decomposition(g) == {(0, 1): 2}

    def test_triangle_truss_three(self):
        assert set(truss_decomposition(_triangle()).values()) == {3}

    def test_k4_truss_four(self):
        g = build_graph(4, [(i, j) for i in range(4) for j in range(i)])
        assert set(truss_decomposition(g).values()) == {4}
        assert max_truss_number(g) == 4

    def test_triangle_with_tail(self):
        g = build_graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        truss = truss_decomposition(g)
        assert truss[(2, 3)] == 2
        assert truss[(0, 1)] == 3

    @given(random_graphs(max_n=18, max_m=60))
    def test_matches_networkx_k_truss(self, g):
        """Property: for every k, our k-truss edge set equals the edge
        set of NetworkX's k_truss subgraph."""
        truss = truss_decomposition(g)
        kmax = max(truss.values()) if truss else 2
        nxg = _to_nx(g)
        for k in range(2, kmax + 2):
            ours = k_truss(g, k)
            theirs = nx.k_truss(nxg, k)
            theirs_edges = {(min(u, v), max(u, v))
                            for u, v in theirs.edges()}
            assert ours == theirs_edges

    @given(random_graphs(max_n=16, max_m=50))
    def test_truss_definition(self, g):
        """Property: inside the k-truss every edge closes >= k-2
        triangles with other k-truss edges."""
        truss = truss_decomposition(g)
        kmax = max(truss.values()) if truss else 2
        for k in range(2, kmax + 1):
            edges = k_truss(g, k)
            adj = {}
            for u, v in edges:
                adj.setdefault(u, set()).add(v)
                adj.setdefault(v, set()).add(u)
            for u, v in edges:
                common = adj.get(u, set()) & adj.get(v, set())
                assert len(common) >= k - 2


class TestKTrussQueries:
    def test_k_truss_k_below_two(self):
        with pytest.raises(ValueError):
            k_truss(_triangle(), 1)

    def test_connected_k_truss(self):
        # Two triangles sharing no vertex.
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5)])
        assert connected_k_truss(g, 0, 3) == {0, 1, 2}
        assert connected_k_truss(g, 4, 3) == {3, 4, 5}

    def test_connected_k_truss_absent(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        assert connected_k_truss(g, 0, 3) is None
