"""Tests for the attributed truss community extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.attributed_truss import (
    attributed_truss_search,
    truss_reduce,
)
from repro.core.ktruss import k_truss
from repro.util.errors import QueryError

from conftest import build_graph, random_graphs


def _two_keyword_cliques():
    """K4 on {0..3} tagged 'db', K4 on {3..6} tagged 'ml', sharing 3."""
    edges = [(i, j) for i in range(4) for j in range(i)]
    edges += [(i, j) for i in range(3, 7) for j in range(3, i)]
    kws = {v: {"db", "x"} for v in range(4)}
    for v in range(4, 7):
        kws[v] = {"ml", "x"}
    kws[3] = {"db", "ml", "x"}
    return build_graph(7, edges, kws)


class TestTrussReduce:
    def test_k4_survives_truss4(self):
        g = build_graph(4, [(i, j) for i in range(4) for j in range(i)])
        assert truss_reduce(g, g.vertices(), 4) == {0, 1, 2, 3}

    def test_triangle_dies_at_truss4(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert truss_reduce(g, g.vertices(), 4) == set()

    def test_tail_removed(self):
        g = build_graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        assert truss_reduce(g, g.vertices(), 3) == {0, 1, 2}

    def test_k_below_two_rejected(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(QueryError):
            truss_reduce(g, g.vertices(), 1)

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(max_n=14, max_m=45), st.integers(3, 5))
    def test_matches_truss_decomposition_on_full_graph(self, g, k):
        """Property: reducing the whole graph equals the vertices
        touched by k-truss edges."""
        expected = {x for e in k_truss(g, k) for x in e}
        assert truss_reduce(g, g.vertices(), k) == expected

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=12, max_m=36), st.integers(3, 4))
    def test_monotone_in_candidates(self, g, k):
        """Property: a larger candidate set never yields a smaller
        truss reduction (the soundness basis of the pre-filter)."""
        n = g.vertex_count
        half = set(range(n // 2))
        small = truss_reduce(g, half, k)
        large = truss_reduce(g, g.vertices(), k)
        assert small <= large


class TestAttributedTrussSearch:
    def test_keyword_selects_the_right_clique(self):
        g = _two_keyword_cliques()
        result = attributed_truss_search(g, 3, 3, keywords={"db", "ml"})
        assert result
        top = result[0]
        # 3 carries both keywords; the maximal shared set is a single
        # keyword (db or ml), each selecting one K4.
        assert len(top.shared_keywords) == 1
        assert top.vertices in ({0, 1, 2, 3}, {3, 4, 5, 6})
        assert top.method == "ATC"

    def test_both_single_keyword_communities_returned(self):
        g = _two_keyword_cliques()
        result = attributed_truss_search(g, 3, 3, keywords={"db", "ml"})
        members = {frozenset(c.vertices) for c in result}
        assert members == {frozenset({0, 1, 2, 3}),
                           frozenset({3, 4, 5, 6})}

    def test_shared_keyword_unites(self):
        g = _two_keyword_cliques()
        result = attributed_truss_search(g, 3, 3, keywords={"x"})
        assert result
        assert result[0].shared_keywords == {"x"}
        # x is on everyone; the 3-truss containing q=3 covers both K4s
        # (they share vertex 3 and both are 3-trusses).
        assert result[0].vertices == set(range(7))

    def test_truss_property_holds(self):
        g = _two_keyword_cliques()
        for community in attributed_truss_search(g, 0, 3):
            members = community.vertices
            support = {}
            for u in members:
                for v in g.neighbors(u):
                    if u < v and v in members:
                        common = sum(1 for w in g.neighbors(u)
                                     if w in members
                                     and w in g.neighbors(v))
                        support[(u, v)] = common
            assert all(s >= 1 for s in support.values())

    def test_no_truss_returns_empty(self):
        g = build_graph(3, [(0, 1), (1, 2)])  # no triangle at all
        assert attributed_truss_search(g, 0, 3) == []

    def test_k_below_two_rejected(self):
        g = _two_keyword_cliques()
        with pytest.raises(QueryError):
            attributed_truss_search(g, 0, 1)

    def test_fallback_when_no_keyword_qualifies(self):
        g = build_graph(4, [(i, j) for i in range(4) for j in range(i)],
                        {0: {"a"}, 1: {"b"}, 2: {"c"}, 3: {"d"}})
        result = attributed_truss_search(g, 0, 3)
        assert len(result) == 1
        assert result[0].shared_keywords == frozenset()
        assert result[0].vertices == {0, 1, 2, 3}

    def test_stronger_than_degree_cohesiveness(self, dblp_small):
        """ATC communities are at least as tight as ACQ's for the same
        k: every ATC member has internal degree >= k - 1 by the truss
        property."""
        q = dblp_small.id_of("Jim Gray")
        result = attributed_truss_search(dblp_small, q, 3)
        if not result:
            pytest.skip("no 3-truss at q for this seed")
        community = result[0]
        assert community.minimum_internal_degree() >= 2
