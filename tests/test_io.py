"""Tests for graph (de)serialisation: the `upload` path."""

import json

import pytest
from hypothesis import given

from repro.graph.io import (
    load_graph,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)
from repro.util.errors import GraphFormatError

from conftest import random_graphs


def _graphs_equal(a, b):
    if a.vertex_count != b.vertex_count or a.edge_count != b.edge_count:
        return False
    for v in a.vertices():
        if a.display_name(v) != b.display_name(v):
            return False
        if a.keywords(v) != b.keywords(v):
            return False
    return sorted(a.edges()) == sorted(b.edges())


class TestEdgeList:
    def test_roundtrip_fig5(self, fig5, tmp_path):
        path = str(tmp_path / "g.txt")
        write_edge_list(fig5, path)
        loaded = read_edge_list(path)
        assert _graphs_equal(fig5, loaded)

    def test_plain_two_column_format(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("% comment\na b\nb c\n\na c\n")
        g = read_edge_list(str(path))
        assert g.vertex_count == 3
        assert g.edge_count == 3
        assert g.keywords(g.id_of("a")) == frozenset()

    def test_vertex_lines_with_keywords(self, tmp_path):
        path = tmp_path / "attr.txt"
        path.write_text("#v alice data web\n#v bob data\nalice bob\n")
        g = read_edge_list(str(path))
        assert g.keywords(g.id_of("alice")) == {"data", "web"}
        assert g.keywords(g.id_of("bob")) == {"data"}
        assert g.has_edge(0, 1)

    def test_labels_with_spaces_escape(self, tmp_path):
        from repro.graph.attributed import AttributedGraph
        g = AttributedGraph()
        g.add_vertex("Jim Gray", {"data"})
        g.add_vertex("Michael Stonebraker")
        g.add_edge(0, 1)
        path = str(tmp_path / "spaces.txt")
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.has_label("Jim Gray")
        assert loaded.has_label("Michael Stonebraker")
        assert loaded.edge_count == 1

    def test_vertex_line_updates_keywords_of_known_vertex(self, tmp_path):
        path = tmp_path / "late.txt"
        path.write_text("a b\n#v a data\n")
        g = read_edge_list(str(path))
        assert g.keywords(g.id_of("a")) == {"data"}

    def test_bad_edge_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b c d\n")
        with pytest.raises(GraphFormatError, match="line 1"):
            read_edge_list(str(path))

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "loop.txt"
        path.write_text("a a\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(str(path))

    def test_vertex_line_without_label(self, tmp_path):
        path = tmp_path / "nolabel.txt"
        path.write_text("#v\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(str(path))


class TestJson:
    def test_roundtrip_fig5(self, fig5, tmp_path):
        path = str(tmp_path / "g.json")
        write_graph_json(fig5, path)
        loaded = read_graph_json(path)
        assert _graphs_equal(fig5, loaded)

    def test_read_from_dict_and_string(self, fig5):
        doc = write_graph_json(fig5)
        assert _graphs_equal(fig5, read_graph_json(doc))
        assert _graphs_equal(fig5, read_graph_json(json.dumps(doc)))

    def test_wrong_format_marker(self):
        with pytest.raises(GraphFormatError):
            read_graph_json({"format": "something-else"})

    def test_bad_edge_entry(self):
        doc = {"format": "c-explorer-graph",
               "vertices": [{"id": 0}], "edges": [[0]]}
        with pytest.raises(GraphFormatError):
            read_graph_json(doc)

    def test_edge_to_unknown_vertex(self):
        doc = {"format": "c-explorer-graph",
               "vertices": [{"id": 0}], "edges": [[0, 7]]}
        with pytest.raises(GraphFormatError):
            read_graph_json(doc)

    def test_non_contiguous_source_ids_remapped(self):
        doc = {"format": "c-explorer-graph",
               "vertices": [{"id": 10, "label": "a"},
                            {"id": 20, "label": "b"}],
               "edges": [[10, 20]]}
        g = read_graph_json(doc)
        assert g.vertex_count == 2
        assert g.has_edge(0, 1)


class TestLoadGraph:
    def test_dispatch_on_extension(self, fig5, tmp_path):
        json_path = str(tmp_path / "g.json")
        txt_path = str(tmp_path / "g.txt")
        write_graph_json(fig5, json_path)
        write_edge_list(fig5, txt_path)
        assert _graphs_equal(load_graph(json_path), load_graph(txt_path))


@given(random_graphs(keywords=list("abcxyz")))
def test_json_roundtrip_property(g):
    """Property: JSON serialisation round-trips arbitrary graphs."""
    doc = write_graph_json(g)
    assert _graphs_equal(g, read_graph_json(doc))
