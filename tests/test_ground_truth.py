"""Tests for the ground-truth effectiveness metrics (F1, NMI, ARI)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ground_truth import (
    ari,
    evaluate_partition,
    f1_score,
    nmi,
    partition_f1,
)
from repro.core.community import Community

from conftest import build_graph


class TestF1:
    def test_perfect_match(self):
        result = f1_score({0, 1, 2}, [{0, 1, 2}, {3, 4}])
        assert result["f1"] == 1.0
        assert result["precision"] == 1.0
        assert result["recall"] == 1.0
        assert result["match"] == frozenset({0, 1, 2})

    def test_partial_match_hand_computed(self):
        # community {0,1,2,3} vs truth {0,1}: p=0.5, r=1.0, f1=2/3
        result = f1_score({0, 1, 2, 3}, [{0, 1}])
        assert result["precision"] == pytest.approx(0.5)
        assert result["recall"] == pytest.approx(1.0)
        assert result["f1"] == pytest.approx(2 / 3)

    def test_no_overlap(self):
        result = f1_score({0, 1}, [{5, 6}])
        assert result["f1"] == 0.0
        assert result["match"] is None

    def test_best_match_selected(self):
        result = f1_score({0, 1, 2}, [{0}, {0, 1, 2, 3}])
        assert result["match"] == frozenset({0, 1, 2, 3})

    def test_accepts_community_objects(self):
        g = build_graph(3, [(0, 1)])
        c = Community(g, {0, 1})
        assert f1_score(c, [{0, 1}])["f1"] == 1.0

    def test_empty_community_rejected(self):
        with pytest.raises(ValueError):
            f1_score(set(), [{0}])


class TestPartitionF1:
    def test_identical_partitions(self):
        p = [{0, 1}, {2, 3}]
        assert partition_f1(p, p) == 1.0

    def test_symmetric(self):
        a = [{0, 1, 2}, {3, 4, 5}]
        b = [{0, 1}, {2, 3}, {4, 5}]
        assert partition_f1(a, b) == pytest.approx(partition_f1(b, a))

    def test_empty_inputs(self):
        assert partition_f1([], [{0}]) == 0.0
        assert partition_f1([{0}], []) == 0.0


class TestNmi:
    def test_identical_partitions(self):
        p = [{0, 1, 2}, {3, 4}]
        assert nmi(p, p) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        a = [{0, 1}, {2, 3}]
        b = [{0, 2}, {1, 3}]
        assert nmi(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_trivial_partitions(self):
        assert nmi([{0, 1}], [{0, 1}]) == 1.0

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            nmi([{0, 1}], [{0, 1, 2}])

    def test_symmetry(self):
        a = [{0, 1, 2}, {3, 4, 5, 6}]
        b = [{0, 1}, {2, 3}, {4, 5, 6}]
        assert nmi(a, b) == pytest.approx(nmi(b, a))

    def test_matches_hand_computed(self):
        # a = {0,1},{2,3}; b = {0,1,2,3}: I = 0, H(b)=0 -> nmi 0.
        assert nmi([{0, 1}, {2, 3}], [{0, 1, 2, 3}]) == \
            pytest.approx(0.0, abs=1e-12)


class TestAri:
    def test_identical(self):
        p = [{0, 1, 2}, {3, 4}]
        assert ari(p, p) == pytest.approx(1.0)

    def test_single_cluster_vs_split(self):
        # ARI of all-in-one vs any split is 0 (expected index case).
        assert ari([{0, 1, 2, 3}], [{0, 1}, {2, 3}]) == \
            pytest.approx(0.0, abs=1e-12)

    def test_opposite_partitions_negative_or_zero(self):
        a = [{0, 1}, {2, 3}]
        b = [{0, 2}, {1, 3}]
        assert ari(a, b) <= 0.0 + 1e-9

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            ari([{0}], [{1}])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=24))
    def test_ari_agrees_with_permuted_self(self, labels):
        """Property: a partition compared with itself under relabelled
        cluster ids still scores ARI = NMI = 1 (unless it has a single
        cluster, where both are 1 by convention too)."""
        groups = {}
        for i, lbl in enumerate(labels):
            groups.setdefault(lbl, set()).add(i)
        partition = list(groups.values())
        relabelled = list(reversed(partition))
        assert ari(partition, relabelled) == pytest.approx(1.0)
        assert nmi(partition, relabelled) == pytest.approx(1.0)


class TestEvaluatePartition:
    def test_report_shape(self):
        found = [{0, 1}, {2, 3}]
        truth = [{0, 1}, {2, 3}]
        report = evaluate_partition(found, truth)
        assert report == {"f1": 1.0, "nmi": 1.0, "ari": 1.0,
                          "found_communities": 2, "true_communities": 2}

    def test_detection_quality_on_planted_graph(self):
        """Label propagation on a well-separated planted partition must
        recover most of the structure (F1 and NMI high)."""
        from repro.algorithms.label_propagation import label_propagation
        from repro.datasets.lfr import generate_planted_partition
        graph, truth = generate_planted_partition(
            n=180, communities=6, avg_degree=10, mu=0.05, seed=4)
        found = label_propagation(graph, seed=2)
        report = evaluate_partition(found, truth.values())
        assert report["f1"] > 0.6
        assert report["nmi"] > 0.5
