"""Tests for the author-name prefix index."""

from hypothesis import given, strategies as st

from repro.explorer.autocomplete import NameIndex


class TestNameIndex:
    def test_basic_suggest(self):
        index = NameIndex(["Jim Gray", "Jennifer Widom", "Joe Smith"])
        assert index.suggest("ji") == ["Jim Gray"]
        assert index.suggest("j") == ["Jennifer Widom", "Jim Gray",
                                      "Joe Smith"]

    def test_case_insensitive(self):
        index = NameIndex(["Jim Gray"])
        assert index.suggest("JIM") == ["Jim Gray"]
        assert index.suggest("jIm g") == ["Jim Gray"]
        assert "jim gray" in index
        assert "JIM GRAY" in index

    def test_limit(self):
        index = NameIndex("name{:02d}".format(i) for i in range(30))
        assert len(index.suggest("name", limit=5)) == 5
        assert index.suggest("name", limit=5) == \
            ["name00", "name01", "name02", "name03", "name04"]

    def test_no_match(self):
        index = NameIndex(["Jim Gray"])
        assert index.suggest("zz") == []
        assert "Nobody" not in index

    def test_empty_prefix_returns_first_names(self):
        index = NameIndex(["b", "a", "c"])
        assert index.suggest("", limit=2) == ["a", "b"]

    def test_duplicates_ignored(self):
        index = NameIndex(["Jim Gray", "Jim Gray"])
        assert len(index) == 1

    def test_prefix_name_ordering(self):
        index = NameIndex(["Jim", "Jim Gray"])
        assert index.suggest("jim") == ["Jim", "Jim Gray"]

    def test_from_graph(self, fig5):
        index = NameIndex.from_graph(fig5)
        assert len(index) == 10
        assert index.suggest("a") == ["A"]

    def test_dblp_lookup(self, dblp_small):
        index = NameIndex.from_graph(dblp_small)
        assert "Jim Gray" in index.suggest("jim")

    @given(st.lists(st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
        min_size=1, max_size=8), max_size=25), st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        max_size=3))
    def test_suggest_matches_linear_scan(self, names, prefix):
        """Property: trie suggestions equal a sorted linear filter.

        Names differing only by case collapse to one entry (first
        insertion wins), matching the index's case-insensitive key."""
        index = NameIndex(names)
        kept = {}
        for name in names:
            kept.setdefault(name.lower(), name)
        expected = sorted(
            (original for key, original in kept.items()
             if key.startswith(prefix)),
            key=str.lower)
        assert index.suggest(prefix, limit=100) == expected[:100]
