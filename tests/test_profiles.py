"""Tests for the author profile store (Figure 2)."""

from repro.explorer.profiles import AuthorProfile, ProfileStore


class TestProfileStore:
    def test_builtin_profiles_present(self):
        store = ProfileStore()
        assert "Jim Gray" in store
        assert "Michael Stonebraker" in store
        assert len(store) >= 7

    def test_stonebraker_card_matches_figure2(self):
        profile = ProfileStore().get("Michael Stonebraker")
        assert profile.areas == "Computer science"
        assert "Berkeley" in profile.institute
        assert "column-oriented" in profile.interests
        assert not profile.synthetic

    def test_unknown_name_synthesised(self):
        store = ProfileStore()
        profile = store.get("Totally Unknown Person")
        assert profile.synthetic
        assert profile.name == "Totally Unknown Person"
        assert profile.areas
        assert profile.institute
        assert profile.interests

    def test_synthesis_is_deterministic(self):
        store = ProfileStore()
        a = store.get("Wei Chen")
        b = store.get("Wei Chen")
        assert a.to_dict() == b.to_dict()

    def test_extra_profiles_constructor(self):
        store = ProfileStore(extra={
            "New Person": {"areas": "CS", "institute": "X",
                           "interests": "Y"}})
        profile = store.get("New Person")
        assert not profile.synthetic
        assert profile.institute == "X"

    def test_add_overrides(self):
        store = ProfileStore()
        store.add(AuthorProfile("Jim Gray", "Override", "Nowhere", "Z"))
        assert store.get("Jim Gray").areas == "Override"


class TestAuthorProfile:
    def test_render_text_shape(self):
        profile = ProfileStore().get("Jim Gray")
        text = profile.render_text()
        assert text.startswith("Author Profile")
        assert "Name: Jim Gray" in text
        assert "Research interests:" in text

    def test_to_dict_keys(self):
        doc = ProfileStore().get("Gerhard Weikum").to_dict()
        assert set(doc) == {"name", "areas", "institute",
                            "research_interests", "synthetic"}

    def test_repr(self):
        assert "Jim Gray" in repr(ProfileStore().get("Jim Gray"))
