"""Tests for CL-tree save/load."""

import pytest
from hypothesis import given

from repro.core.cltree import build_cltree
from repro.core.persistence import (
    cltree_from_dict,
    cltree_to_dict,
    load_cltree,
    save_cltree,
)
from repro.util.errors import GraphFormatError

from conftest import build_graph, random_graphs


def _trees_equal(a, b):
    def shape(tree):
        def node_shape(node):
            return (node.k, frozenset(node.vertices),
                    frozenset(node_shape(c) for c in node.children))
        return frozenset(node_shape(r) for r in tree.roots)
    return shape(a) == shape(b) and a.core == b.core


class TestRoundtrip:
    def test_fig5_roundtrip(self, fig5, tmp_path):
        tree = build_cltree(fig5)
        path = str(tmp_path / "index.json")
        save_cltree(tree, path)
        loaded = load_cltree(path, fig5)
        assert _trees_equal(tree, loaded)
        assert loaded.describe() == tree.describe()

    def test_loaded_index_answers_queries(self, fig5, tmp_path):
        tree = build_cltree(fig5)
        path = str(tmp_path / "index.json")
        save_cltree(tree, path)
        loaded = load_cltree(path, fig5)
        a = fig5.id_of("A")
        for k in range(4):
            assert loaded.community_vertices(a, k) == \
                tree.community_vertices(a, k)

    def test_inverted_lists_rebuilt(self, fig5, tmp_path):
        tree = build_cltree(fig5)
        path = str(tmp_path / "index.json")
        save_cltree(tree, path)
        loaded = load_cltree(path, fig5)
        node = loaded.node_of(fig5.id_of("A"))
        assert sorted(fig5.label(v) for v in node.inverted["x"]) == \
            ["A", "B", "C", "D"]

    @given(random_graphs(max_n=20, max_m=60, keywords=list("abc")))
    def test_roundtrip_property(self, g):
        tree = build_cltree(g)
        doc = cltree_to_dict(tree)
        import json
        doc = json.loads(json.dumps(doc))  # force JSON fidelity
        loaded = cltree_from_dict(doc, g)
        assert _trees_equal(tree, loaded)


class TestValidation:
    def test_wrong_format(self, fig5):
        with pytest.raises(GraphFormatError):
            cltree_from_dict({"format": "nope"}, fig5)

    def test_vertex_count_mismatch(self, fig5):
        tree = build_cltree(fig5)
        doc = cltree_to_dict(tree)
        other = build_graph(3, [(0, 1)])
        with pytest.raises(GraphFormatError, match="vertices"):
            cltree_from_dict(doc, other)

    def test_missing_child_reference(self, fig5):
        tree = build_cltree(fig5)
        doc = cltree_to_dict(tree)
        doc["nodes"][0]["children"] = [999]
        with pytest.raises(GraphFormatError, match="missing child"):
            cltree_from_dict(doc, fig5)

    def test_unknown_homed_vertex(self, fig5):
        tree = build_cltree(fig5)
        doc = cltree_to_dict(tree)
        doc["nodes"][0]["vertices"] = [42]
        with pytest.raises(GraphFormatError):
            cltree_from_dict(doc, fig5)

    def test_incomplete_coverage(self, fig5):
        tree = build_cltree(fig5)
        doc = cltree_to_dict(tree)
        for entry in doc["nodes"]:
            if entry["vertices"]:
                entry["vertices"] = entry["vertices"][:-1]
                break
        with pytest.raises(GraphFormatError, match="homes"):
            cltree_from_dict(doc, fig5)
