"""Unit and property tests for the union-find forests."""

import pytest
from hypothesis import given, strategies as st

from repro.util.unionfind import AnchoredUnionFind, UnionFind


class TestUnionFind:
    def test_singletons_are_their_own_roots(self):
        uf = UnionFind(range(5))
        for i in range(5):
            assert uf.find(i) == i
        assert uf.set_count == 5

    def test_union_merges_and_counts(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.set_count == 3
        uf.union(2, 3)
        uf.union(1, 3)
        assert uf.connected(0, 2)
        assert uf.set_count == 1

    def test_union_is_idempotent(self):
        uf = UnionFind(range(3))
        uf.union(0, 1)
        count = uf.set_count
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.set_count == count

    def test_items_added_lazily_by_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert len(uf) == 2

    def test_contains(self):
        uf = UnionFind(["x"])
        assert "x" in uf
        assert "y" not in uf

    def test_connected_unknown_items_is_false(self):
        uf = UnionFind(["x"])
        assert not uf.connected("x", "zzz")
        assert not uf.connected("zzz", "x")

    def test_sets_partition(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        groups = sorted(sorted(s) for s in uf.sets().values())
        assert groups == [[0, 1], [2, 3, 4], [5]]

    def test_add_existing_is_noop(self):
        uf = UnionFind([1])
        uf.union(1, 2)
        uf.add(1)
        assert uf.set_count == 1

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                    max_size=60))
    def test_matches_naive_partition(self, unions):
        """Property: connectivity agrees with a naive set-merging model."""
        uf = UnionFind(range(20))
        naive = [{i} for i in range(20)]

        def naive_find(x):
            for group in naive:
                if x in group:
                    return group
            raise AssertionError

        for a, b in unions:
            uf.union(a, b)
            ga, gb = naive_find(a), naive_find(b)
            if ga is not gb:
                ga |= gb
                naive.remove(gb)
        for a in range(20):
            for b in range(20):
                assert uf.connected(a, b) == (naive_find(a) is naive_find(b))
        assert uf.set_count == len(naive)


class TestAnchoredUnionFind:
    def test_anchor_defaults_to_none(self):
        uf = AnchoredUnionFind([1, 2])
        assert uf.anchor_of(1) is None

    def test_set_and_get_anchor(self):
        uf = AnchoredUnionFind([1, 2])
        uf.set_anchor(1, "node-a")
        assert uf.anchor_of(1) == "node-a"
        assert uf.anchor_of(2) is None

    def test_union_keeps_existing_anchor(self):
        uf = AnchoredUnionFind([1, 2])
        uf.set_anchor(1, "node-a")
        uf.union(1, 2)
        assert uf.anchor_of(2) == "node-a"

    def test_union_with_explicit_anchor_overrides(self):
        uf = AnchoredUnionFind([1, 2])
        uf.set_anchor(1, "old")
        uf.union(1, 2, anchor="new")
        assert uf.anchor_of(1) == "new"

    def test_union_same_set_can_update_anchor(self):
        uf = AnchoredUnionFind([1, 2])
        uf.union(1, 2, anchor="a")
        uf.union(1, 2, anchor="b")
        assert uf.anchor_of(1) == "b"

    def test_anchor_survives_chains_of_unions(self):
        uf = AnchoredUnionFind(range(6))
        uf.set_anchor(3, "x")
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.anchor_of(0) == "x"
        assert uf.anchor_of(5) is None


@pytest.mark.parametrize("n", [1, 2, 100])
def test_chain_union_compresses(n):
    uf = UnionFind(range(n))
    for i in range(n - 1):
        uf.union(i, i + 1)
    assert uf.set_count == 1
    root = uf.find(0)
    assert all(uf.find(i) == root for i in range(n))
