"""Tests for label propagation."""

from repro.algorithms.label_propagation import label_propagation
from repro.datasets.karate import karate_factions

from conftest import build_graph


class TestLabelPropagation:
    def test_two_cliques_split(self):
        g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                            (3, 4), (4, 5), (3, 5)])
        communities = label_propagation(g, seed=0)
        assert sorted(sorted(c.vertices) for c in communities) == \
            [[0, 1, 2], [3, 4, 5]]

    def test_partition_covers_graph(self, karate):
        communities = label_propagation(karate, seed=1)
        covered = sorted(v for c in communities for v in c)
        assert covered == list(karate.vertices())

    def test_deterministic_under_seed(self, karate):
        a = label_propagation(karate, seed=7)
        b = label_propagation(karate, seed=7)
        assert {c.vertices for c in a} == {c.vertices for c in b}

    def test_raw_labels_mode(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        labels = label_propagation(g, as_communities=False, seed=0)
        assert set(labels) == {0, 1, 2}
        assert len(set(labels.values())) == 1

    def test_isolated_vertices_stay_singleton(self):
        g = build_graph(3, [(0, 1)])
        labels = label_propagation(g, as_communities=False, seed=0)
        assert labels[2] == 2

    def test_weights_steer_assignment(self):
        # Path 0-1-2; a heavy (0,1) edge and feather-light (1,2) edge
        # should pull 1 into 0's community.
        g = build_graph(3, [(0, 1), (1, 2)])
        weights = {(0, 1): 10.0, (1, 2): 0.1}
        labels = label_propagation(g, weights=weights, seed=0,
                                   as_communities=False)
        assert labels[1] == labels[0]

    def test_roughly_recovers_karate_factions(self, karate):
        """LP on karate should give communities that mostly align with
        the two factions (allowing imperfect boundaries)."""
        communities = label_propagation(karate, seed=3)
        factions = karate_factions()
        big = [c for c in communities if len(c) >= 5]
        assert big
        for c in big:
            overlaps = [len(c.vertices & members)
                        for members in factions.values()]
            # Dominant faction covers >= 70% of the community.
            assert max(overlaps) / len(c) >= 0.7

    def test_method_name_override(self):
        g = build_graph(2, [(0, 1)])
        communities = label_propagation(g, method_name="Custom", seed=0)
        assert all(c.method == "Custom" for c in communities)
