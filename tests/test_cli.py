"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import figure5_graph
from repro.graph.io import write_graph_json


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fig5.json"
    write_graph_json(figure5_graph(), str(path))
    return str(path)


@pytest.fixture(scope="module")
def dblp_file(tmp_path_factory):
    from repro.datasets import DblpConfig, generate_dblp_graph
    path = tmp_path_factory.mktemp("cli") / "dblp.json"
    write_graph_json(generate_dblp_graph(
        DblpConfig(n_authors=300, n_communities=6, seed=2)), str(path))
    return str(path)


class TestGenerate:
    def test_generate_writes_graph(self, tmp_path, capsys):
        out = str(tmp_path / "g.json")
        assert main(["generate", "--authors", "120", "--communities",
                     "4", "--out", out]) == 0
        assert "120 vertices" in capsys.readouterr().out
        with open(out) as f:
            doc = json.load(f)
        assert doc["format"] == "c-explorer-graph"


class TestSearch:
    def test_search_text_output(self, graph_file, capsys):
        assert main(["search", "--graph", graph_file, "--vertex", "A",
                     "-k", "2", "--keywords", "w", "x", "y"]) == 0
        out = capsys.readouterr().out
        assert "Community 1" in out
        assert "theme: x, y" in out

    def test_search_json_output(self, graph_file, capsys):
        assert main(["search", "--graph", graph_file, "--vertex", "A",
                     "-k", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc[0]["method"] == "ACQ"

    def test_search_draw(self, graph_file, capsys):
        assert main(["search", "--graph", graph_file, "--vertex", "A",
                     "-k", "2", "--draw"]) == 0
        assert "@" in capsys.readouterr().out

    def test_search_no_result_exit_code(self, graph_file, capsys):
        assert main(["search", "--graph", graph_file, "--vertex", "A",
                     "-k", "9"]) == 1

    def test_search_unknown_vertex_error(self, graph_file, capsys):
        assert main(["search", "--graph", graph_file, "--vertex",
                     "ZZZ"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_search_with_prebuilt_index(self, graph_file, tmp_path,
                                        capsys):
        index_path = str(tmp_path / "idx.json")
        assert main(["index", "--graph", graph_file, "--out",
                     index_path]) == 0
        capsys.readouterr()
        assert main(["search", "--graph", graph_file, "--index",
                     index_path, "--vertex", "A", "-k", "2"]) == 0
        assert "Community 1" in capsys.readouterr().out


class TestCompareDetect:
    def test_compare_renders_table(self, dblp_file, capsys):
        assert main(["compare", "--graph", dblp_file, "--vertex",
                     "jim gray", "-k", "3", "--methods", "global",
                     "acq"]) == 0
        out = capsys.readouterr().out
        assert "Method" in out
        assert "acq" in out

    def test_compare_json(self, dblp_file, capsys):
        assert main(["compare", "--graph", dblp_file, "--vertex",
                     "jim gray", "-k", "3", "--methods", "acq",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["k"] == 3

    def test_detect(self, dblp_file, capsys):
        assert main(["detect", "--graph", dblp_file, "--algorithm",
                     "label-propagation", "--limit", "5"]) == 0
        assert "communities" in capsys.readouterr().out


class TestIndexProfile:
    def test_index_roundtrip(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "index.json")
        assert main(["index", "--graph", graph_file, "--out", out]) == 0
        assert "nodes" in capsys.readouterr().out
        with open(out) as f:
            doc = json.load(f)
        assert doc["format"] == "c-explorer-cltree"

    def test_profile_text(self, capsys):
        assert main(["profile", "--name", "Jim Gray"]) == 0
        assert "Jim Gray" in capsys.readouterr().out

    def test_profile_json(self, capsys):
        assert main(["profile", "--name", "Jim Gray", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "Jim Gray"


class TestBackendFlag:
    def test_process_backend_matches_thread(self, dblp_file, capsys):
        args = ["search", "--graph", dblp_file, "--vertex", "Jim Gray",
                "-k", "3", "--json", "--shards", "2"]
        assert main(args + ["--backend", "thread"]) == 0
        thread_out = json.loads(capsys.readouterr().out)
        assert main(args + ["--backend", "process", "--workers",
                            "2"]) == 0
        process_out = json.loads(capsys.readouterr().out)
        assert process_out == thread_out

    def test_unknown_backend_rejected(self, dblp_file, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--graph", dblp_file, "--vertex",
                  "Jim Gray", "--backend", "fibers"])
