"""Tests for the query execution engine (repro.engine)."""

import threading
import time

import pytest

from repro.engine.cache import ResultCache, SubproblemMemo, query_key
from repro.engine.executor import EngineFuture, QueryEngine
from repro.engine.index_manager import IndexManager
from repro.engine.plans import plan_search
from repro.engine.stats import EngineStats, LatencyHistogram
from repro.explorer.cexplorer import CExplorer
from repro.util.errors import (
    CExplorerError,
    EngineBusyError,
    QueryCancelledError,
    QueryTimeoutError,
)

from conftest import build_graph


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestQueryKey:
    def test_multi_vertex_order_insensitive(self):
        assert query_key("g", "acq", [3, 1], 4) == \
            query_key("g", "acq", [1, 3], 4)

    def test_keyword_order_insensitive(self):
        assert query_key("g", "acq", 1, 4, keywords=["db", "ml"]) == \
            query_key("g", "acq", 1, 4, keywords={"ml", "db"})

    def test_params_normalised(self):
        a = query_key("g", "acq", 1, 4, params={"b": 2, "a": [1, 2]})
        b = query_key("g", "acq", 1, 4, params={"a": [1, 2], "b": 2})
        assert a == b

    def test_distinct_queries_distinct_keys(self):
        assert query_key("g", "acq", 1, 4) != query_key("g", "acq", 1, 5)
        assert query_key("g", "acq", 1, 4) != query_key("h", "acq", 1, 4)


class TestResultCache:
    def test_lru_eviction_and_counters(self):
        cache = ResultCache(capacity=2)
        k1, k2, k3 = (query_key("g", "acq", v, 4) for v in (1, 2, 3))
        cache.put(k1, "one")
        cache.put(k2, "two")
        assert cache.get(k1) == "one"       # refreshes k1's recency
        cache.put(k3, "three")              # evicts k2, the LRU entry
        assert cache.get(k2) is None
        assert cache.get(k1) == "one"
        assert cache.get(k3) == "three"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        assert stats["entries"] == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_invalidate_whole_graph(self):
        cache = ResultCache()
        cache.put(query_key("g", "acq", 1, 4), "x")
        cache.put(query_key("h", "acq", 1, 4), "y")
        assert cache.invalidate("g") == 1
        assert len(cache) == 1
        assert cache.get(query_key("h", "acq", 1, 4)) == "y"

    def test_selective_invalidation_spares_disjoint_footprints(self):
        cache = ResultCache()
        touched = query_key("g", "acq", 1, 4)
        spared = query_key("g", "acq", 9, 4)
        cache.put(touched, "a", vertices={1, 2, 3})
        cache.put(spared, "b", vertices={8, 9})
        assert cache.invalidate("g", affected={2, 5}) == 1
        assert cache.get(touched) is None
        assert cache.get(spared) == "b"

    def test_selective_invalidation_drops_unsafe_algorithms(self):
        cache = ResultCache()
        # k-truss support cascades are not tracked by the core
        # maintainer, so its entries never survive an update ...
        truss = query_key("g", "k-truss", 9, 4)
        cache.put(truss, "t", vertices={8, 9})
        # ... and neither does any entry without a footprint.
        blind = query_key("g", "acq", 7, 4)
        cache.put(blind, "u")
        assert cache.invalidate("g", affected={2, 5}) == 2
        assert len(cache) == 0

    def test_selective_invalidation_drops_empty_footprints(self):
        """A cached 'no community' answer has an empty footprint; it
        must not survive updates (the update may create the answer)."""
        cache = ResultCache()
        negative = query_key("g", "acq", 5, 4)
        cache.put(negative, [], vertices=set())
        assert cache.invalidate("g", affected={99}) == 1
        assert cache.get(negative) is None

    def test_peek_does_not_count_misses(self):
        cache = ResultCache()
        assert cache.get(query_key("g", "acq", 1, 4),
                         record_miss=False) is None
        assert cache.stats()["misses"] == 0


class TestSubproblemMemo:
    def test_memoizes_per_version(self):
        memo = SubproblemMemo()
        calls = []

        def compute():
            calls.append(1)
            return "core"

        assert memo.get_or_compute("g", 1, "core", None, compute) == "core"
        assert memo.get_or_compute("g", 1, "core", None, compute) == "core"
        assert len(calls) == 1
        # A version bump is a different key: recompute.
        memo.get_or_compute("g", 2, "core", None, compute)
        assert len(calls) == 2
        assert memo.stats()["hits"] == 1

    def test_invalidate_by_graph(self):
        memo = SubproblemMemo()
        memo.get_or_compute("g", 1, "core", None, lambda: 1)
        memo.get_or_compute("h", 1, "core", None, lambda: 2)
        memo.invalidate("g")
        assert len(memo) == 1


# ----------------------------------------------------------------------
# index lifecycle
# ----------------------------------------------------------------------
@pytest.fixture
def triangle_plus_tail():
    """Triangle 0-1-2 (the 2-core) with vertex 3 hanging off 0."""
    return build_graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])


class TestIndexManager:
    def test_register_and_version(self, fig5):
        manager = IndexManager()
        assert manager.register("g", fig5) == 1
        assert manager.version("g") == 1
        # Replacing bumps the version.
        assert manager.register("g", fig5) == 2

    def test_snapshot_cached_until_invalidated(self, fig5):
        manager = IndexManager()
        manager.register("g", fig5)
        snap = manager.snapshot("g")
        assert manager.snapshot("g") is snap
        assert manager.built("g")
        manager.invalidate("g")
        assert not manager.built("g")
        fresh = manager.snapshot("g")
        assert fresh is not snap
        assert fresh.version == snap.version + 1

    def test_background_build(self, fig5):
        manager = IndexManager()
        manager.register("g", fig5, build="background")
        manager.wait("g", timeout=10)
        assert manager.built("g")

    def test_eager_build(self, fig5):
        manager = IndexManager()
        manager.register("g", fig5, build="eager")
        assert manager.built("g")

    def test_unknown_build_mode(self, fig5):
        manager = IndexManager()
        with pytest.raises(CExplorerError):
            manager.register("g", fig5, build="psychic")

    def test_unknown_graph(self):
        manager = IndexManager()
        with pytest.raises(CExplorerError):
            manager.snapshot("ghost")

    def test_subscribers_see_bumps(self, fig5):
        manager = IndexManager()
        events = []
        manager.subscribe(lambda *args: events.append(args))
        manager.register("g", fig5)
        manager.invalidate("g", affected={1, 2})
        # Subscribers see (name, version, affected, truss_affected);
        # without a truss maintainer the truss region is unknown.
        assert events[0] == ("g", 1, None, None)
        assert events[1] == ("g", 2, {1, 2}, None)

    def test_maintainer_bumps_version_and_reports_region(
            self, triangle_plus_tail):
        manager = IndexManager()
        manager.register("g", triangle_plus_tail)
        events = []
        manager.subscribe(lambda *args: events.append(args))
        maintainer = manager.attach_maintainer("g")
        before = manager.version("g")
        maintainer.insert_edge(3, 1)
        assert manager.version("g") == before + 1
        name, _, affected, _ = events[-1]
        assert name == "g"
        # Vertex 3 was promoted into the 2-core; the affected region
        # covers the edge, the promotion, and its neighbourhood.
        assert {1, 3} <= affected
        # The next core read reuses the maintainer's patched numbers.
        assert manager.core("g") == maintainer.core_numbers()
        assert manager.core("g")[3] == 2


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
class TestQueryEnginePool:
    def test_execute_runs_on_worker(self):
        engine = QueryEngine(workers=1)
        try:
            assert engine.execute(lambda a, b: a + b, 20, 22) == 42
            assert engine.stats.get("completed") == 1
        finally:
            engine.shutdown()

    def test_queue_rejection_under_load(self):
        engine = QueryEngine(workers=1, max_queue=1)
        release = threading.Event()
        started = threading.Event()

        def blocker():
            started.set()
            release.wait(10)
            return "done"

        try:
            running = engine.submit(blocker)
            assert started.wait(10)          # worker busy
            queued = engine.submit(lambda: "queued")  # fills the queue
            with pytest.raises(EngineBusyError):
                engine.submit(lambda: "rejected")
            assert engine.stats.get("rejected") == 1
            release.set()
            assert running.result(10) == "done"
            assert queued.result(10) == "queued"
        finally:
            release.set()
            engine.shutdown()

    def test_timeout_while_waiting(self):
        engine = QueryEngine(workers=1)
        release = threading.Event()
        try:
            engine.submit(lambda: release.wait(10))
            with pytest.raises(QueryTimeoutError):
                engine.execute(lambda: "starved", timeout=0.05)
            assert engine.stats.get("timeouts") >= 1
        finally:
            release.set()
            engine.shutdown()

    def test_expired_deadline_skips_execution(self):
        engine = QueryEngine(workers=1)
        release = threading.Event()
        ran = []
        try:
            engine.submit(lambda: release.wait(10))
            stale = engine.submit(lambda: ran.append(1), timeout=0.01)
            time.sleep(0.05)
            release.set()
            with pytest.raises(QueryTimeoutError):
                stale.result(10)
            assert not ran
        finally:
            release.set()
            engine.shutdown()

    def test_cancellation_before_start(self):
        engine = QueryEngine(workers=1)
        release = threading.Event()
        ran = []
        try:
            engine.submit(lambda: release.wait(10))
            queued = engine.submit(lambda: ran.append(1))
            assert queued.cancel()
            release.set()
            with pytest.raises(QueryCancelledError):
                queued.result(10)
            assert not ran
        finally:
            release.set()
            engine.shutdown()

    def test_worker_exception_propagates(self):
        engine = QueryEngine(workers=1)

        def boom():
            raise ValueError("kaboom")

        try:
            with pytest.raises(ValueError, match="kaboom"):
                engine.execute(boom)
            assert engine.stats.get("errors") == 1
        finally:
            engine.shutdown()

    def test_run_batch_preserves_order(self):
        engine = QueryEngine(workers=4)
        try:
            calls = [(lambda i=i: i * i, (), {}) for i in range(20)]
            assert engine.run_batch(calls) == [i * i for i in range(20)]
        finally:
            engine.shutdown()

    def test_resolved_future(self):
        future = EngineFuture.resolved(7)
        assert future.done()
        assert future.result(0) == 7

    def test_configure_after_start_refused(self):
        engine = QueryEngine(workers=1)
        try:
            engine.execute(lambda: None)
            with pytest.raises(RuntimeError):
                engine.configure(workers=8)
        finally:
            engine.shutdown()

    def test_snapshot_shape(self):
        engine = QueryEngine(workers=2)
        try:
            engine.execute(lambda: None, op="search")
            doc = engine.snapshot()
            assert doc["workers"] == 2
            assert doc["queue_depth"] == 0
            assert doc["counters"]["completed"] == 1
            assert doc["latency"]["search"]["count"] == 1
            assert "cache" in doc and "memo" in doc
        finally:
            engine.shutdown()


# ----------------------------------------------------------------------
# end-to-end: explorer + engine + maintenance
# ----------------------------------------------------------------------
class TestExplorerEngineIntegration:
    def test_cache_hit_resolves_without_queueing(self, dblp_small):
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_small)
        first = explorer.search("acq", "jim gray", k=3)
        future = explorer.engine.search("acq", "jim gray", k=3)
        assert future.done()                 # fast path, no queue trip
        assert future.result(0) is first

    def test_auto_plan_small_graph_runs_acq(self, dblp_small):
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_small)
        communities = explorer.search("auto", "jim gray", k=3)
        assert communities
        assert explorer.graph.id_of("Jim Gray") in communities[0]

    def test_maintenance_invalidates_stale_read(
            self, triangle_plus_tail):
        explorer = CExplorer()
        explorer.add_graph("g", triangle_plus_tail)
        stale = explorer.search("global", 0, k=2)
        assert set(stale[0].vertices) == {0, 1, 2}
        assert explorer.search("global", 0, k=2) is stale  # cached
        # Edge {3, 1} promotes vertex 3 into the 2-core; the cached
        # answer is now wrong and must not be served.
        explorer.maintainer().insert_edge(3, 1)
        fresh = explorer.search("global", 0, k=2)
        assert fresh is not stale
        assert set(fresh[0].vertices) == {0, 1, 2, 3}

    def test_stale_negative_result_invalidated(self, triangle_plus_tail):
        """A cached empty answer is re-evaluated after the update that
        makes the query answerable."""
        explorer = CExplorer()
        explorer.add_graph("g", triangle_plus_tail)
        assert explorer.search("global", 3, k=2) == []   # core(3) == 1
        explorer.maintainer().insert_edge(3, 1)          # 3 joins 2-core
        fresh = explorer.search("global", 3, k=2)
        assert fresh and set(fresh[0].vertices) == {0, 1, 2, 3}

    def test_algorithm_name_case_insensitive(self, dblp_small):
        """'ACQ' and 'acq' are the same algorithm (the registry lowers
        names): one cache entry, one plan, fast path included."""
        explorer = CExplorer()
        explorer.add_graph("dblp", dblp_small)
        plan = plan_search("ACQ", dblp_small, index_ready=True)
        assert plan.algorithm == "acq"
        assert plan.use_index
        first = explorer.search("ACQ", "jim gray", k=3)
        assert explorer.search("acq", "jim gray", k=3) is first
        future = explorer.engine.search("Acq", "jim gray", k=3)
        assert future.done()
        assert future.result(0) is first

    def test_maintenance_spares_disjoint_cached_results(self, karate):
        explorer = CExplorer()
        explorer.add_graph("karate", karate)
        maintainer = explorer.maintainer()
        explorer.search("global", 0, k=2)
        entries_before = len(explorer.cache)
        assert entries_before >= 1
        # An isolated two-vertex appendix far from the cached result.
        a = maintainer.add_vertex("appendix-a")
        b = maintainer.add_vertex("appendix-b")
        maintainer.insert_edge(a, b)
        assert len(explorer.cache) == entries_before  # spared
        hits_before = explorer.cache.stats()["hits"]
        explorer.search("global", 0, k=2)
        assert explorer.cache.stats()["hits"] == hits_before + 1

    def test_keyword_candidates_memoized(self, fig5):
        explorer = CExplorer()
        explorer.add_graph("fig5", fig5)
        keyword = sorted(fig5.keywords(0))[0]
        first = explorer.keyword_candidates(0, 1, keyword)
        assert explorer.keyword_candidates(0, 1, keyword) is first
        assert explorer.engine.memo.stats()["hits"] >= 1

    def test_concurrent_hammer_no_lost_or_duplicated_results(
            self, dblp_small):
        explorer = CExplorer(workers=4, max_queue=256)
        explorer.add_graph("dblp", dblp_small)
        expected = explorer.search("acq", "jim gray", k=3)
        results = []
        errors = []
        lock = threading.Lock()

        def hammer():
            for _ in range(25):
                try:
                    value = explorer.engine.search_sync(
                        "acq", "jim gray", k=3, timeout=30)
                except Exception as exc:  # pragma: no cover
                    with lock:
                        errors.append(exc)
                else:
                    with lock:
                        results.append(value)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8 * 25        # nothing lost
        assert all(r == expected for r in results)  # nothing mangled
        snapshot = explorer.engine.snapshot()
        assert snapshot["cache"]["hits"] >= 1


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
class TestPlans:
    def test_auto_prefers_acq_with_keywords(self, dblp_small):
        plan = plan_search("auto", dblp_small, index_ready=False,
                           keywords={"db"})
        assert plan.algorithm == "acq"
        assert plan.use_index

    def test_auto_uses_index_when_ready(self, dblp_small):
        plan = plan_search("auto", dblp_small, index_ready=True)
        assert plan.algorithm == "acq"
        assert plan.use_index

    def test_auto_falls_back_to_local_on_large_unindexed(
            self, dblp_medium):
        plan = plan_search("auto", dblp_medium, index_ready=False)
        assert plan.algorithm == "local"
        assert not plan.use_index

    def test_explicit_acq_keeps_name(self, dblp_small):
        plan = plan_search("acq-inc-t", dblp_small, index_ready=True)
        assert plan.algorithm == "acq-inc-t"
        assert plan.use_index

    def test_non_acq_passthrough(self, dblp_small):
        plan = plan_search("k-truss", dblp_small, index_ready=True)
        assert plan.algorithm == "k-truss"
        assert not plan.use_index

    def test_explain_is_json_friendly(self, dblp_small):
        doc = plan_search("auto", dblp_small).explain()
        assert set(doc) == {"algorithm", "use_index", "reason",
                            "fanout", "worker_full_query"}
        assert doc["fanout"] is False
        assert doc["worker_full_query"] is False

    def test_sharded_graph_plans_fanout(self, dblp_small):
        plan = plan_search("global", dblp_small, shards=4)
        assert plan.fanout
        assert "4 shards" in plan.reason
        # The triangle family fans out too (sharded truss search)...
        assert plan_search("k-truss", dblp_small, shards=4).fanout
        assert plan_search("atc", dblp_small, shards=4).fanout
        # ...non-shardable algorithms never do...
        assert not plan_search("local", dblp_small, shards=4).fanout
        # ...and shards=1 keeps the exact unsharded plan.
        assert not plan_search("global", dblp_small, shards=1).fanout


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
class TestStats:
    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):
            hist.record(ms / 1000.0)
        assert hist.count == 100
        assert 0.045 <= hist.percentile(50) <= 0.055
        assert 0.090 <= hist.percentile(95) <= 0.100
        doc = hist.snapshot()
        assert doc["count"] == 100
        assert doc["max_ms"] == 100.0

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(50) == 0.0
        assert hist.snapshot()["count"] == 0

    def test_engine_stats_snapshot(self):
        stats = EngineStats()
        stats.count("submitted", 3)
        stats.observe("search", 0.01)
        doc = stats.snapshot()
        assert doc["counters"]["submitted"] == 3
        assert doc["latency"]["search"]["count"] == 1
        assert doc["throughput_per_second"] > 0
