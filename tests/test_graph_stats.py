"""Tests for whole-graph statistics (the dataset panel)."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.analysis.graph_stats import (
    average_clustering,
    core_histogram,
    degree_histogram,
    graph_summary,
    local_clustering,
)

from conftest import build_graph, random_graphs


class TestDegreeHistogram:
    def test_star(self):
        g = build_graph(5, [(0, i) for i in range(1, 5)])
        assert degree_histogram(g) == {4: 1, 1: 4}

    def test_empty(self):
        assert degree_histogram(build_graph(0, [])) == {}


class TestClustering:
    def test_triangle_is_one(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert local_clustering(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_path_is_zero(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        assert local_clustering(g, 1) == 0.0
        assert local_clustering(g, 0) == 0.0

    def test_half_closed(self):
        # 0 connected to 1,2,3; only 1-2 closed: C(0) = 1/3.
        g = build_graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert local_clustering(g, 0) == pytest.approx(1 / 3)

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=16, max_m=50))
    def test_matches_networkx(self, g):
        nxg = nx.Graph()
        nxg.add_nodes_from(g.vertices())
        nxg.add_edges_from(g.edges())
        theirs = nx.average_clustering(nxg) if len(nxg) else 0.0
        assert average_clustering(g) == pytest.approx(theirs)

    def test_sampled_close_to_exact(self, dblp_small):
        exact = average_clustering(dblp_small)
        sampled = average_clustering(dblp_small, sample=200, seed=1)
        assert abs(exact - sampled) < 0.15


class TestCoreHistogram:
    def test_fig5(self, fig5):
        assert core_histogram(fig5) == {0: 1, 1: 4, 2: 1, 3: 4}


class TestGraphSummary:
    def test_fig5_summary(self, fig5):
        summary = graph_summary(fig5)
        assert summary["vertices"] == 10
        assert summary["edges"] == 11
        assert summary["isolated_vertices"] == 1
        assert summary["connected_components"] == 3
        assert summary["largest_component"] == 7
        assert summary["max_core"] == 3
        assert summary["core_histogram"] == {"0": 1, "1": 4, "2": 1,
                                             "3": 4}
        assert summary["keywords"] == 4

    def test_summary_is_json_ready(self, dblp_small):
        import json
        json.dumps(graph_summary(dblp_small))

    def test_empty_graph(self):
        summary = graph_summary(build_graph(0, []))
        assert summary["vertices"] == 0
        assert summary["average_degree"] == 0.0
