"""Tests for spatial-aware community search (SAC)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.spatial import (
    disk_community,
    register_spatial_algorithm,
    spatial_community_search,
)
from repro.datasets.spatial import euclidean, generate_spatial_graph
from repro.util.errors import QueryError

from conftest import build_graph


def _grid_case():
    """A tight triangle near q plus a far-away triangle."""
    g = build_graph(6, [(0, 1), (1, 2), (0, 2),
                        (3, 4), (4, 5), (3, 5), (2, 3)])
    coords = {0: (0.1, 0.1), 1: (0.12, 0.1), 2: (0.1, 0.12),
              3: (0.9, 0.9), 4: (0.92, 0.9), 5: (0.9, 0.92)}
    return g, coords


class TestDiskCommunity:
    def test_small_radius_keeps_near_triangle(self):
        g, coords = _grid_case()
        members = disk_community(g, coords, 0, 2, 0.1)
        assert members == {0, 1, 2}

    def test_huge_radius_reaches_far_triangle(self):
        g, coords = _grid_case()
        members = disk_community(g, coords, 0, 2, 2.0)
        assert members == set(range(6))

    def test_infeasible_returns_none(self):
        g, coords = _grid_case()
        assert disk_community(g, coords, 0, 3, 2.0) is None


class TestSpatialSearch:
    def test_minimal_radius_excludes_far_cluster(self):
        g, coords = _grid_case()
        communities, radius = spatial_community_search(g, coords, 0, 2)
        assert communities[0].vertices == {0, 1, 2}
        assert radius < 0.1
        assert communities[0].method == "SAC"

    def test_radius_is_tight(self):
        g, coords = _grid_case()
        communities, radius = spatial_community_search(g, coords, 0, 2)
        far = max(euclidean(coords[v], coords[0])
                  for v in communities[0])
        assert radius == pytest.approx(far)

    def test_infeasible_query(self):
        g, coords = _grid_case()
        assert spatial_community_search(g, coords, 0, 5) == ([], None)

    def test_unknown_vertex(self):
        g, coords = _grid_case()
        with pytest.raises(QueryError):
            spatial_community_search(g, coords, 77, 2)

    def test_negative_k(self):
        g, coords = _grid_case()
        with pytest.raises(QueryError):
            spatial_community_search(g, coords, 0, -1)

    def test_minimality_against_linear_scan(self):
        """Binary search returns the same minimal feasible radius as a
        linear scan over all candidate radii."""
        graph, coords, _ = generate_spatial_graph(n=120, communities=4,
                                                  seed=3)
        q = 0
        k = 2
        communities, radius = spatial_community_search(graph, coords,
                                                       q, k)
        if not communities:
            pytest.skip("generator produced an infeasible q")
        distances = sorted({euclidean(coords[v], coords[q])
                            for v in graph.vertices()})
        feasible = [r for r in distances
                    if disk_community(graph, coords, q, k, r)
                    is not None]
        assert radius == pytest.approx(min(feasible))

    def test_community_is_geographically_local(self):
        """SAC communities stay inside their planted spatial cluster."""
        graph, coords, truth = generate_spatial_graph(
            n=240, communities=6, seed=5)
        q = 0
        communities, radius = spatial_community_search(graph, coords,
                                                       q, 2)
        if not communities:
            pytest.skip("infeasible q for this seed")
        home = next(members for members in truth.values()
                    if q in members)
        overlap = len(communities[0].vertices & home)
        assert overlap / len(communities[0]) > 0.7

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 50), st.integers(1, 3))
    def test_result_invariants(self, q_pick, k):
        graph, coords, _ = generate_spatial_graph(n=80, communities=4,
                                                  seed=9)
        q = q_pick % graph.vertex_count
        communities, radius = spatial_community_search(graph, coords,
                                                       q, k)
        if not communities:
            return
        community = communities[0]
        assert q in community
        assert community.minimum_internal_degree() >= k
        for v in community:
            assert euclidean(coords[v], coords[q]) <= radius + 1e-9


class TestRegistryIntegration:
    def test_register_and_search(self):
        g, coords = _grid_case()
        register_spatial_algorithm(coords, name="sac-test")
        from repro.algorithms.registry import get_cs_algorithm
        try:
            result = get_cs_algorithm("sac-test")(g, 0, 2)
            assert result[0].vertices == {0, 1, 2}
        finally:
            from repro.algorithms import registry
            registry._CS.pop("sac-test", None)


class TestSpatialGenerator:
    def test_shapes(self):
        graph, coords, truth = generate_spatial_graph(n=100,
                                                      communities=5,
                                                      seed=1)
        assert graph.vertex_count == 100
        assert len(coords) == 100
        assert all(0 <= x <= 1 and 0 <= y <= 1
                   for x, y in coords.values())
        covered = sorted(v for m in truth.values() for v in m)
        assert covered == list(graph.vertices())

    def test_deterministic(self):
        a = generate_spatial_graph(n=60, seed=4)[0]
        b = generate_spatial_graph(n=60, seed=4)[0]
        assert sorted(a.edges()) == sorted(b.edges())

    def test_edges_are_mostly_local(self):
        graph, coords, _ = generate_spatial_graph(n=200, communities=5,
                                                  seed=2)
        distances = [euclidean(coords[u], coords[v])
                     for u, v in graph.edges()]
        assert sum(d < 0.3 for d in distances) / len(distances) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_spatial_graph(n=2, communities=5)
