"""Tests for theme inference."""

import pytest

from repro.analysis.themes import infer_theme, keyword_frequencies, theme_of
from repro.core.community import Community

from conftest import build_graph


def _graph_with_topic_community():
    """Vertices 0-3: topic words + ubiquitous filler; 4-9: filler only."""
    kws = {}
    for v in range(4):
        kws[v] = {"graphs", "cores", "data"}
    for v in range(4, 10):
        kws[v] = {"data", "misc{}".format(v)}
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    return build_graph(10, edges, kws)


class TestKeywordFrequencies:
    def test_fractions(self):
        g = _graph_with_topic_community()
        c = Community(g, {0, 1, 2, 3})
        freq = keyword_frequencies(c)
        assert freq["graphs"] == 1.0
        assert freq["data"] == 1.0

    def test_partial_support(self):
        g = build_graph(2, [(0, 1)], {0: {"a"}, 1: {"b"}})
        freq = keyword_frequencies(Community(g, {0, 1}))
        assert freq == {"a": 0.5, "b": 0.5}


class TestInferTheme:
    def test_distinctive_beats_ubiquitous(self):
        g = _graph_with_topic_community()
        c = Community(g, {0, 1, 2, 3})
        theme = infer_theme(c, top=2)
        # "data" is on every vertex of the graph; the topic words are
        # community-specific and must outrank it.
        assert set(theme) == {"graphs", "cores"}

    def test_naive_mode_keeps_frequency_order(self):
        g = _graph_with_topic_community()
        c = Community(g, {0, 1, 2, 3})
        theme = infer_theme(c, top=3, distinctive=False)
        assert set(theme) == {"cores", "data", "graphs"}

    def test_min_support_filters(self):
        g = build_graph(4, [], {0: {"rare"}, 1: {"x"}, 2: {"x"},
                               3: {"x"}})
        c = Community(g, {0, 1, 2, 3})
        assert "rare" not in infer_theme(c, min_support=0.5)

    def test_degenerate_community_falls_back(self):
        g = build_graph(3, [], {0: {"a"}, 1: {"b"}, 2: {"c"}})
        c = Community(g, {0, 1, 2})
        assert infer_theme(c, min_support=0.9)  # still returns something

    def test_top_limit(self):
        g = _graph_with_topic_community()
        c = Community(g, {0, 1, 2, 3})
        assert len(infer_theme(c, top=1)) == 1


class TestThemeOf:
    def test_attributed_community_uses_shared(self):
        g = _graph_with_topic_community()
        c = Community(g, {0, 1}, shared_keywords={"zz"})
        assert theme_of(c) == ["zz"]

    def test_structural_community_gets_inferred_theme(self, dblp_small):
        from repro.algorithms.global_search import global_search
        q = dblp_small.id_of("Jim Gray")
        community = global_search(dblp_small, q, 3)[0]
        assert not community.shared_keywords
        theme = theme_of(community, top=5)
        assert 1 <= len(theme) <= 5

    def test_local_community_theme_matches_topic(self, dblp_small):
        """Local around Jim Gray should infer the transaction topic."""
        from repro.algorithms.local_search import local_search
        q = dblp_small.id_of("Jim Gray")
        community = local_search(dblp_small, q, 3)[0]
        theme = set(theme_of(community, top=8))
        topic = {"transaction", "recovery", "concurrency", "locking",
                 "logging", "isolation", "acid", "commit"}
        assert len(theme & topic) >= 4
