"""Tests for the execution-backend abstraction (repro.engine.backends).

The load-bearing invariants:

* **equivalence** -- the process backend returns results identical to
  the thread backend (and therefore to unsharded execution: the
  sharding suite proves that leg) for every shardable algorithm,
  shards in {2, 4}, keywords or not, property-tested over random
  graphs;
* **payload lifecycle** -- shard snapshots are serialised once per
  (graph, version, shard) and invalidated exactly when maintenance
  bumps the shard version, so process results track mutations;
* **index builds** -- eager/background CL-tree builds route through
  the process pool and install snapshots equivalent to local builds;
* **fallback** -- a thread-backend engine runs process-style jobs
  inline, and pool failures degrade to in-process execution instead
  of failing the query.
"""

import pytest
from hypothesis import given, settings

from repro.engine.backends import (
    BACKENDS,
    ProcessBackend,
    build_index_job,
    shard_candidates_job,
    validate_backend,
)
from repro.core.kcore import core_decomposition
from repro.explorer.cexplorer import CExplorer
from repro.graph.frozen import freeze
from repro.util.errors import EngineError

from conftest import random_graphs


def _equivalent(plain, other, queries, algorithms=("global", "acq")):
    for q, k in queries:
        for algorithm in algorithms:
            expected = plain.search(algorithm, q, k=k, use_cache=False)
            got = other.search(algorithm, q, k=k, use_cache=False)
            assert got == expected, (algorithm, q, k)


# ----------------------------------------------------------------------
# configuration surface
# ----------------------------------------------------------------------
class TestBackendConfig:
    def test_backend_names(self):
        assert validate_backend("thread") == "thread"
        assert validate_backend("process") == "process"
        with pytest.raises(EngineError):
            validate_backend("greenlet")
        assert set(BACKENDS) == {"thread", "process"}

    def test_engine_rejects_unknown_backend(self):
        with pytest.raises(EngineError):
            CExplorer(backend="fibers")

    def test_snapshot_reports_backend(self, dblp_small):
        explorer = CExplorer()
        assert explorer.engine.snapshot()["backend"] == "thread"
        proc = CExplorer(backend="process")
        assert proc.engine.snapshot()["backend"] == "process"
        proc.engine.shutdown()

    def test_configure_switches_backend(self):
        explorer = CExplorer()
        explorer.engine.configure(backend="process")
        assert explorer.engine.backend == "process"
        assert explorer.indexes.build_executor is not None
        explorer.engine.configure(backend="thread")
        assert explorer.engine.backend == "thread"
        assert explorer.indexes.build_executor is None


# ----------------------------------------------------------------------
# job functions (in-process: they are plain picklable functions)
# ----------------------------------------------------------------------
class TestJobFunctions:
    def test_shard_candidates_job_matches_manager(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2, partitioner="greedy")
        indexes = explorer.indexes
        for k in (1, 2, 3):
            for shard in range(2):
                report = indexes.shard_candidates("k", shard, k)
                payload, _ = indexes.shard_payload("k", shard)
                certified, uncertain, dropped = shard_candidates_job(
                    payload.key, payload.blob, k)
                assert set(certified) == report.certified
                assert dict(uncertain) == report.uncertain
                assert sorted(dropped) == sorted(report.dropped)

    def test_build_index_job_matches_local_build(self, karate):
        from repro.core.cltree import build_cltree
        frozen = freeze(karate)
        core, tree = build_index_job(frozen)
        assert core == core_decomposition(karate)
        oracle = build_cltree(karate)
        for v in karate.vertices():
            for k in range(max(core) + 2):
                assert tree.community_vertices(v, k) == \
                    oracle.community_vertices(v, k)


# ----------------------------------------------------------------------
# payload lifecycle
# ----------------------------------------------------------------------
class TestShardPayloads:
    def test_payload_cached_per_version(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        indexes = explorer.indexes
        payload, fresh = indexes.shard_payload("k", 0)
        assert fresh
        again, fresh = indexes.shard_payload("k", 0)
        assert not fresh
        assert again is payload

    def test_maintenance_invalidates_owner_payload_only(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        indexes = explorer.indexes
        maintainer = explorer.maintainer()
        part = indexes.partition("k")
        for shard in range(2):
            indexes.shard_payload("k", shard)
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v)
            and part.owner(u) == part.owner(v))
        owner = part.owner(u)
        maintainer.insert_edge(u, v)
        _, fresh_owner = indexes.shard_payload("k", owner)
        _, fresh_other = indexes.shard_payload("k", 1 - owner)
        assert fresh_owner            # version bumped: rebuilt
        assert not fresh_other        # untouched shard: cache hit

    def test_unregister_drops_payloads(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        explorer.indexes.shard_payload("k", 0)
        explorer.indexes.unregister("k")
        assert explorer.indexes._payloads == {}


# ----------------------------------------------------------------------
# end-to-end equivalence
# ----------------------------------------------------------------------
class TestProcessBackendEquivalence:
    def test_sharded_process_equals_thread(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        jim = dblp_small.id_of("Jim Gray")
        queries = [(jim, 2), (jim, 3), (17, 2), (0, 99)]
        for shards in (2, 4):
            proc = CExplorer(workers=2, backend="process")
            proc.add_graph("g", dblp_small, shards=shards,
                           partitioner="greedy")
            _equivalent(plain, proc, queries)
            # The fan-out really ran in the pool: no fallbacks, and
            # per-shard stats were recorded.
            assert proc.engine.stats.get("process_fallbacks") == 0
            assert proc.engine.stats.get("shard_fallbacks") == 0
            assert "g" in proc.engine.stats.snapshot()["sharding"]
            proc.engine.shutdown()

    def test_keywords_and_variants(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", dblp_small, shards=4, partitioner="greedy")
        jim = dblp_small.id_of("Jim Gray")
        keywords = set(sorted(dblp_small.keywords(jim))[:2])
        for algorithm in ("acq", "acq-inc-s", "acq-inc-t"):
            for kw in (None, keywords):
                assert proc.search(algorithm, jim, k=3, keywords=kw) \
                    == plain.search(algorithm, jim, k=3, keywords=kw)
        proc.engine.shutdown()

    @settings(max_examples=8, deadline=None)
    @given(random_graphs(max_n=14, max_m=40, keywords=list("ab")))
    def test_process_equals_unsharded_property(self, graph):
        plain = CExplorer()
        plain.add_graph("g", graph)
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", graph, shards=2)
        try:
            core = core_decomposition(graph)
            queries = [(v, min(core[v], 2)) for v in
                       list(graph.vertices())[:3]]
            _equivalent(plain, proc, queries)
            assert proc.engine.stats.get("shard_fallbacks") == 0
        finally:
            proc.engine.shutdown()

    def test_results_track_maintenance(self, karate):
        plain = CExplorer()
        plain.add_graph("k", karate.copy())
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("k", karate.copy(), shards=2)
        mp_, mt = plain.maintainer(), proc.maintainer()
        for u, v in ((0, 9), (4, 12), (33, 9)):
            if proc.indexes.graph("k").has_edge(u, v):
                mt.remove_edge(u, v)
                mp_.remove_edge(u, v)
            else:
                mt.insert_edge(u, v)
                mp_.insert_edge(u, v)
            _equivalent(plain, proc, [(0, 2), (33, 3)])
        proc.engine.shutdown()

    def test_process_index_builds(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small, build="eager")
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", dblp_small, build="eager", shards=2)
        assert proc.indexes.built("g")
        jim = dblp_small.id_of("Jim Gray")
        assert proc.search("acq", jim, k=3) == \
            plain.search("acq", jim, k=3)
        ops = proc.engine.snapshot()["latency"]
        assert "index_build_ipc" in ops
        proc.engine.shutdown()


# ----------------------------------------------------------------------
# fallback paths
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_thread_engine_runs_jobs_inline(self, karate):
        explorer = CExplorer()           # thread backend
        explorer.add_graph("k", karate, shards=2)
        indexes = explorer.indexes
        payload, _ = indexes.shard_payload("k", 0)
        results = explorer.engine.map_shard_jobs(
            [(shard_candidates_job, (payload.key, payload.blob, 2))])
        certified, uncertain, dropped = results[0]
        report = indexes.shard_candidates("k", 0, 2)
        assert set(certified) == report.certified

    def test_broken_pool_falls_back_inline(self, karate):
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("k", karate, shards=2)
        # Sabotage the pool: close it so the next fan-out breaks and
        # the engine degrades to inline execution.
        proc.engine._process.close()
        proc.engine._process._pool = None

        class _Exploding:
            def submit(self, *a, **kw):
                raise RuntimeError("boom")

            def shutdown(self, *a, **kw):
                pass

        proc.engine._process._pool = _Exploding()
        result = proc.search("global", 0, k=2, use_cache=False)
        plain = CExplorer()
        plain.add_graph("k", karate)
        assert result == plain.search("global", 0, k=2)
        assert proc.engine.stats.get("process_fallbacks") >= 1
        proc.engine.shutdown()

    def test_broken_build_executor_counts_and_builds_locally(
            self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)

        def exploding_build(graph, core=None):
            raise RuntimeError("boom")

        explorer.indexes.build_executor = exploding_build
        snap = explorer.indexes.snapshot("k")     # local fallback
        assert snap.cltree is not None
        assert explorer.indexes.build_fallbacks == 1
        assert explorer.engine.snapshot()["index_build_fallbacks"] == 1

    def test_shutdown_detaches_process_pool(self, karate):
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("k", karate)
        proc.engine.shutdown()
        assert proc.engine._process is None
        assert proc.indexes.build_executor is None
        # A post-shutdown build runs locally instead of resurrecting
        # a pool nothing would ever close.
        assert proc.indexes.snapshot("k").cltree is not None
        assert proc.indexes.build_fallbacks == 0

    def test_pool_recovers_after_break(self, karate):
        backend = ProcessBackend(workers=1)
        results, child, ipc = backend.run_jobs(
            [(core_decomposition, (freeze(karate),))])
        assert results[0] == core_decomposition(karate)
        assert len(child) == len(ipc) == 1
        backend._break()
        results, _, _ = backend.run_jobs(
            [(core_decomposition, (freeze(karate),))])
        assert results[0] == core_decomposition(karate)
        backend.close()
