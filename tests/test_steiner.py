"""Tests for Steiner maximum-core community search (ref [6])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.steiner import (
    steiner_community_search,
    steiner_max_core,
)
from repro.core.kcore import core_decomposition
from repro.util.errors import QueryError

from conftest import build_graph, random_graphs


def _two_cliques_with_bridge():
    """Two K4s joined by a 2-path; useful for minimality checks."""
    edges = [(i, j) for i in range(4) for j in range(i)]
    edges += [(i + 4, j + 4) for i in range(4) for j in range(i)]
    edges += [(3, 8), (8, 4)]
    return build_graph(9, edges)


class TestSteinerMaxCore:
    def test_single_vertex_max_core(self, fig5):
        k, comp = steiner_max_core(fig5, [fig5.id_of("A")])
        assert k == 3
        assert {fig5.label(v) for v in comp} == {"A", "B", "C", "D"}

    def test_pair_limited_by_weaker_vertex(self, fig5):
        k, comp = steiner_max_core(fig5, [fig5.id_of("A"),
                                          fig5.id_of("E")])
        assert k == 2
        assert fig5.id_of("E") in comp

    def test_pair_limited_by_connectivity(self):
        g = _two_cliques_with_bridge()
        # 0 and 5 each sit in a 3-core, but the bridge vertex has core
        # 2, so they are only connected at k <= 2.
        k, comp = steiner_max_core(g, [0, 5])
        assert k == 2
        assert {0, 5} <= comp
        assert 8 in comp  # the bridge is part of the connecting core

    def test_disconnected_queries_raise(self, fig5):
        with pytest.raises(QueryError, match="not connected"):
            steiner_max_core(fig5, [fig5.id_of("A"), fig5.id_of("H")])

    def test_empty_query_rejected(self, fig5):
        with pytest.raises(QueryError):
            steiner_max_core(fig5, [])

    def test_unknown_vertex_rejected(self, fig5):
        with pytest.raises(QueryError):
            steiner_max_core(fig5, [999])

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(max_n=16, max_m=50), st.data())
    def test_kstar_is_maximal(self, g, data):
        """Property: Q connected in the k*-core but not the (k*+1)-core."""
        from repro.core.kcore import connected_k_core
        n = g.vertex_count
        qs = data.draw(st.lists(st.integers(0, n - 1), min_size=1,
                                max_size=3, unique=True))
        try:
            k_star, comp = steiner_max_core(g, qs)
        except QueryError:
            return  # disconnected query set: nothing to check
        assert all(q in comp for q in qs)
        higher = connected_k_core(g, qs[0], k_star + 1)
        assert higher is None or not all(q in higher for q in qs)


class TestSteinerCommunitySearch:
    def test_minimal_community_on_bridge_graph(self):
        g = _two_cliques_with_bridge()
        result = steiner_community_search(g, [0, 5])
        assert len(result) == 1
        community = result[0]
        assert {0, 5} <= community.vertices
        assert community.method == "Steiner"
        assert community.minimum_internal_degree() >= community.k

    def test_single_query_is_contained_in_its_core(self, fig5):
        a = fig5.id_of("A")
        result = steiner_community_search(fig5, [a])
        community = result[0]
        assert a in community
        assert community.k == 3
        assert community.vertices <= {fig5.id_of(x) for x in "ABCD"}

    def test_explicit_k(self, fig5):
        a = fig5.id_of("A")
        result = steiner_community_search(fig5, [a], k=2)
        assert result[0].k == 2
        assert result[0].minimum_internal_degree() >= 2

    def test_explicit_k_too_large(self, fig5):
        assert steiner_community_search(fig5, [fig5.id_of("A")], k=9) == []

    def test_smaller_than_global(self, dblp_small):
        """The point of SMCS: a certificate much smaller than the whole
        k-core component."""
        from repro.algorithms.global_search import global_search
        jim = dblp_small.id_of("Jim Gray")
        partner = max(dblp_small.neighbors(jim),
                      key=lambda v: dblp_small.degree(v))
        steiner = steiner_community_search(dblp_small, [jim, partner])[0]
        glob = global_search(dblp_small, jim, steiner.k)
        assert glob
        assert len(steiner) <= len(glob[0])

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=14, max_m=40), st.data())
    def test_result_invariants(self, g, data):
        """Property: the community contains Q, is connected, and meets
        the returned degree bound."""
        n = g.vertex_count
        qs = data.draw(st.lists(st.integers(0, n - 1), min_size=1,
                                max_size=2, unique=True))
        try:
            result = steiner_community_search(g, qs)
        except QueryError:
            return
        community = result[0]
        for q in qs:
            assert q in community
        assert community.minimum_internal_degree() >= community.k
        members = community.vertices
        seen = {qs[0]}
        stack = [qs[0]]
        while stack:
            u = stack.pop()
            for w in g.neighbors(u):
                if w in members and w not in seen:
                    seen.add(w)
                    stack.append(w)
        assert seen == set(members)

    def test_registry_integration(self, dblp_small):
        from repro.algorithms.registry import get_cs_algorithm
        jim = dblp_small.id_of("Jim Gray")
        result = get_cs_algorithm("steiner")(dblp_small, jim, 3)
        assert result
        assert result[0].k == 3
