"""Tests for the SVG bar charts (Figure 6(a) quality graphs)."""

import pytest

from repro.viz.charts import render_bar_chart, render_quality_charts


class TestRenderBarChart:
    def test_basic_structure(self):
        svg = render_bar_chart({"acq": 0.4, "global": 0.1},
                               title="CPJ")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") == 3  # background + 2 bars
        assert "CPJ" in svg
        assert "acq" in svg and "global" in svg
        assert "0.400" in svg and "0.100" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart({})

    def test_tallest_bar_uses_full_height(self):
        svg = render_bar_chart({"a": 1.0, "b": 0.5}, height=220)
        # Bar heights: plot height = 220 - 34 - 30 = 156.
        assert 'height="156.0"' in svg
        assert 'height="78.0"' in svg

    def test_zero_values_render(self):
        svg = render_bar_chart({"a": 0.0, "b": 0.0})
        assert svg.count('height="0.0"') == 2

    def test_shared_scale(self):
        a = render_bar_chart({"x": 0.5}, max_value=1.0, height=220)
        assert 'height="78.0"' in a  # half of 156

    def test_label_escaping(self):
        svg = render_bar_chart({"a<b": 1.0})
        assert "a&lt;b" in svg

    def test_custom_value_format(self):
        svg = render_bar_chart({"a": 0.123456},
                               value_format="{:.1f}")
        assert ">0.1<" in svg


class TestRenderQualityCharts:
    def test_pair_from_report(self, dblp_small):
        from repro.analysis.comparison import compare_methods
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "acq"))
        charts = render_quality_charts(report)
        assert set(charts) == {"cpj", "cmf"}
        for svg in charts.values():
            assert svg.startswith("<svg")
            assert "acq" in svg
