"""Tests for CPJ, CMF and the structural quality metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    cmf,
    community_conductance,
    community_density,
    cpj,
    keyword_jaccard,
    similarity_matrix,
)
from repro.core.acq import acq_search
from repro.core.community import Community

from conftest import build_graph, random_graphs


def _community(kws, edges=None, query=(0,)):
    n = len(kws)
    g = build_graph(n, edges or [], dict(enumerate(kws)))
    return Community(g, set(range(n)), query_vertices=query)


class TestKeywordJaccard:
    def test_identical_sets(self):
        g = build_graph(2, [], {0: {"a", "b"}, 1: {"a", "b"}})
        assert keyword_jaccard(g, 0, 1) == 1.0

    def test_disjoint_sets(self):
        g = build_graph(2, [], {0: {"a"}, 1: {"b"}})
        assert keyword_jaccard(g, 0, 1) == 0.0

    def test_partial_overlap(self):
        g = build_graph(2, [], {0: {"a", "b"}, 1: {"b", "c"}})
        assert keyword_jaccard(g, 0, 1) == pytest.approx(1 / 3)

    def test_both_empty(self):
        g = build_graph(2, [])
        assert keyword_jaccard(g, 0, 1) == 0.0


class TestCpj:
    def test_hand_computed(self):
        c = _community([{"a", "b"}, {"a", "b"}, {"c"}])
        # pairs: (0,1)=1.0, (0,2)=0.0, (1,2)=0.0 -> 1/3
        assert cpj(c) == pytest.approx(1 / 3)

    def test_single_vertex_is_one(self):
        assert cpj(_community([{"a"}])) == 1.0

    def test_identical_community_scores_one(self):
        c = _community([{"a"}] * 5)
        assert cpj(c) == pytest.approx(1.0)

    def test_sampling_path_close_to_exact(self):
        kws = [{"a", "b"} if i % 2 == 0 else {"b", "c"} for i in range(40)]
        c = _community(kws)
        exact = cpj(c)
        sampled = cpj(c, max_pairs=300, seed=1)
        assert abs(exact - sampled) < 0.1

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=10, max_m=20, keywords=list("abc")))
    def test_bounds(self, g):
        c = Community(g, set(g.vertices()))
        assert 0.0 <= cpj(c) <= 1.0


class TestCmf:
    def test_hand_computed(self):
        # W(q) = {a, b}; members carry a+b, a, nothing -> (1+0.5+0)/3
        c = _community([{"a", "b"}, {"a"}, {"c"}])
        assert cmf(c) == pytest.approx((1.0 + 0.5 + 0.0) / 3)

    def test_requires_query_vertex(self):
        g = build_graph(2, [], {0: {"a"}, 1: {"a"}})
        c = Community(g, {0, 1})
        with pytest.raises(ValueError):
            cmf(c)
        assert cmf(c, query_vertex=0) == 1.0

    def test_empty_query_keywords(self):
        c = _community([set(), {"a"}])
        assert cmf(c) == 0.0

    def test_acq_scores_higher_than_structure_only(self, dblp_small):
        """The ACQ paper's claim behind the Figure 6 bars: keyword-aware
        communities beat structure-only ones on CPJ and CMF."""
        from repro.algorithms.global_search import global_search
        q = dblp_small.id_of("Jim Gray")
        acq = acq_search(dblp_small, q, 3)
        glo = global_search(dblp_small, q, 3)
        assert acq and glo
        assert cpj(acq[0]) > cpj(glo[0])
        assert cmf(acq[0]) > cmf(glo[0])

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=10, max_m=20, keywords=list("abc")))
    def test_bounds(self, g):
        c = Community(g, set(g.vertices()), query_vertices=(0,))
        assert 0.0 <= cmf(c) <= 1.0


class TestStructuralMetrics:
    def test_density_of_clique(self):
        g = build_graph(4, [(i, j) for i in range(4) for j in range(i)])
        assert community_density(Community(g, {0, 1, 2, 3})) == 1.0

    def test_density_single_vertex(self):
        g = build_graph(1, [])
        assert community_density(Community(g, {0})) == 1.0

    def test_conductance_isolated_community(self):
        g = build_graph(4, [(0, 1), (2, 3)])
        assert community_conductance(Community(g, {0, 1})) == 0.0

    def test_conductance_cut_community(self):
        # 0-1 inside, 1-2 leaving: boundary 1, vol(C) = 3.
        g = build_graph(3, [(0, 1), (1, 2)])
        assert community_conductance(Community(g, {0, 1})) == \
            pytest.approx(1 / 1)  # min(vol) side is {2} with volume 1

    def test_conductance_whole_graph_zero(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        assert community_conductance(Community(g, {0, 1, 2})) == 0.0


class TestSimilarityMatrix:
    def test_shape_and_symmetry(self):
        c = _community([{"a"}, {"a", "b"}, {"b"}])
        members, rows = similarity_matrix(c)
        assert members == [0, 1, 2]
        assert len(rows) == 3 and all(len(r) == 3 for r in rows)
        for i in range(3):
            assert rows[i][i] == 1.0
            for j in range(3):
                assert rows[i][j] == rows[j][i]

    def test_limit(self):
        c = _community([{"a"}] * 10)
        members, rows = similarity_matrix(c, limit=4)
        assert len(members) == 4
        assert len(rows) == 4
