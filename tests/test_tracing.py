"""Tests for end-to-end query tracing (repro.engine.tracing)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine import tracing
from repro.engine.tracing import (
    QueryTrace,
    TraceRecorder,
    format_waterfall,
    render_prometheus,
)
from repro.explorer.cexplorer import CExplorer
from repro.server.app import make_server


# ----------------------------------------------------------------------
# span context propagation
# ----------------------------------------------------------------------
class TestContextPropagation:
    def test_no_trace_is_a_noop(self):
        assert tracing.current_trace() is None
        with tracing.span("plan", graph="g") as record:
            assert record is None
        assert tracing.add_span("merge", 0.01) is None

    def test_activate_binds_and_restores(self):
        trace = QueryTrace("q1", "search")
        with tracing.activate(trace):
            assert tracing.current_trace() is trace
            with tracing.span("plan", graph="g") as record:
                assert record.name == "plan"
        assert tracing.current_trace() is None
        assert [s.name for s in trace.spans] == ["plan"]
        assert trace.spans[0].tags == {"graph": "g"}

    def test_activate_none_is_a_noop(self):
        with tracing.activate(None) as trace:
            assert trace is None
            assert tracing.current_trace() is None

    def test_spans_nest_via_parent_indices(self):
        trace = QueryTrace("q1", "search")
        with tracing.activate(trace):
            with tracing.span("execute"):
                with tracing.span("merge"):
                    tracing.add_span("cache_store", 0.001)
        names = {s.name: s for s in trace.spans}
        assert names["execute"].parent is None
        assert trace.spans[names["merge"].parent].name == "execute"
        assert trace.spans[names["cache_store"].parent].name == "merge"

    def test_worker_log_collects_and_wires(self):
        with tracing.collect_worker_spans() as log:
            with tracing.span("index_thaw", shard=1):
                with tracing.span("core_build"):
                    pass
            tracing.add_span("algorithm", 0.25, algorithm="acq")
        wire = log.wire()
        assert [w[0] for w in wire] == \
            ["index_thaw", "core_build", "algorithm"]
        # Intra-list parents: core_build nests under index_thaw.
        assert wire[0][3] is None
        assert wire[1][3] == 0
        assert wire[2][3] is None
        assert wire[2][2] == 0.25
        # The wire format must survive the pickle hop to the parent.
        import pickle
        assert pickle.loads(pickle.dumps(wire)) == wire

    def test_graft_reparents_wire_spans(self):
        with tracing.collect_worker_spans() as log:
            with tracing.span("index_thaw"):
                with tracing.span("core_build"):
                    pass
        trace = QueryTrace("q1", "search")
        index = trace.add_span("worker_execute", 0.5,
                               tags={"shard": 0})
        trace.graft(index, log.wire())
        by_name = {s.name: s for s in trace.spans}
        assert by_name["index_thaw"].parent == index
        assert trace.spans[by_name["core_build"].parent].name == \
            "index_thaw"


# ----------------------------------------------------------------------
# TraceRecorder
# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_ring_buffer_bounds_memory(self):
        recorder = TraceRecorder(capacity=3)
        for _ in range(10):
            recorder.finish(recorder.begin("search"))
        stats = recorder.stats()
        assert stats["buffered"] == 3
        assert stats["recorded"] == 10
        kept = [t.query_id for t in recorder.traces()]
        assert kept == ["q10", "q9", "q8"]
        assert recorder.get("q1") is None
        assert recorder.get("q10") is not None

    def test_finish_is_idempotent(self):
        recorder = TraceRecorder()
        trace = recorder.begin("search")
        recorder.finish(trace, "ok")
        recorder.finish(trace, "error")
        assert trace.status == "ok"
        assert recorder.stats()["recorded"] == 1

    def test_slow_query_log(self):
        recorder = TraceRecorder(slow_seconds=0.0)
        recorder.finish(recorder.begin("search", vertex="v"))
        stats = recorder.stats()
        assert stats["slow_queries"] == 1
        assert recorder.traces(slow=True)[0].query_id == "q1"
        # A fast query under a real threshold stays out of the log.
        recorder.configure(slow_seconds=60.0)
        recorder.finish(recorder.begin("search"))
        assert recorder.stats()["slow_queries"] == 1

    def test_disabled_recorder_is_noops(self):
        recorder = TraceRecorder(enabled=False)
        assert recorder.begin("search") is None
        recorder.finish(None)
        assert recorder.stats()["recorded"] == 0

    def test_trace_scope_records_and_handles_errors(self):
        recorder = TraceRecorder()
        with recorder.trace("detect", graph="g") as trace:
            with tracing.span("merge"):
                pass
        assert trace.status == "ok"
        assert [s.name for s in trace.spans] == ["execute", "merge"]
        with pytest.raises(ValueError):
            with recorder.trace("detect") as failing:
                raise ValueError("boom")
        assert failing.status == "error"

    def test_trace_scope_reuses_active_trace(self):
        recorder = TraceRecorder()
        outer = recorder.begin("search")
        with tracing.activate(outer):
            with recorder.trace("search") as inner:
                assert inner is outer
        # The outer owner has not finished it; nothing published yet.
        assert outer.status == "active"
        assert recorder.stats()["recorded"] == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder().configure(capacity=-1)


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def _sample_metrics_doc():
    return {
        "uptime_seconds": 12.5,
        "requests": {"/api/search": 4, "/api/metrics": 1},
        "errors": 1,
        "engine": {
            "queue_depth": 0,
            "in_flight": 1,
            "workers": 2,
            "throughput_per_second": 0.32,
            "throughput_recent_per_second": 1.5,
            "counters": {"submitted": 4, "completed": 3},
            "latency": {
                "search": {
                    "count": 3,
                    "total_seconds": 0.75,
                    "buckets": [[0.1, 1], [0.5, 2], [None, 0]],
                },
            },
            "traces": {"recorded": 3, "slow_queries": 1},
        },
        "cache": {"hits": 2, "misses": 2, "evictions": 0,
                  "invalidations": 1, "entries": 2,
                  "invalidations_by_reason": {"core-cascade": 1}},
    }


class TestPrometheusRendering:
    def test_exposition_structure(self):
        text = render_prometheus(_sample_metrics_doc())
        lines = text.splitlines()
        assert text.endswith("\n")
        # Every sample line references a metric with a TYPE header.
        typed = set()
        for line in lines:
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
        for line in lines:
            if line.startswith("#"):
                continue
            metric = line.split("{")[0].split(" ")[0]
            base = metric
            for suffix in ("_bucket", "_sum", "_count"):
                if metric.endswith(suffix) and \
                        metric[:-len(suffix)] in typed:
                    base = metric[:-len(suffix)]
            assert base in typed, line

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(_sample_metrics_doc())
        buckets = [line for line in text.splitlines()
                   if line.startswith("repro_latency_seconds_bucket")]
        values = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert values == sorted(values)
        assert 'le="+Inf"' in buckets[-1]
        assert values[-1] == 3
        count = [line for line in text.splitlines()
                 if line.startswith("repro_latency_seconds_count")][0]
        assert count.rsplit(" ", 1)[1] == "3"

    def test_recent_throughput_preferred(self):
        text = render_prometheus(_sample_metrics_doc())
        line = [ln for ln in text.splitlines()
                if ln.startswith("repro_engine_throughput_per_second ")]
        assert line[0].endswith("1.5")

    def test_label_escaping(self):
        doc = _sample_metrics_doc()
        doc["requests"] = {'/pa"th\nx\\y': 1}
        text = render_prometheus(doc)
        assert r'path="/pa\"th\nx\\y"' in text

    def test_empty_doc_renders(self):
        text = render_prometheus({})
        assert "repro_uptime_seconds 0.0" in text


class TestWaterfall:
    def test_renders_spans_with_depth(self):
        trace = QueryTrace("q7", "search", tags={"graph": "g", "k": 4})
        with tracing.activate(trace):
            with tracing.span("execute"):
                with tracing.span("merge", shards=2):
                    pass
        trace.finish("ok")
        text = format_waterfall(trace.to_dict())
        lines = text.splitlines()
        assert lines[0].startswith("q7 search [ok]")
        assert "graph=g" in lines[0]
        assert any(line.lstrip().startswith("execute") for line in lines)
        merge = [line for line in lines if "merge" in line][0]
        assert merge.startswith("    ")      # nested one level deeper
        assert "shards=2" in merge
        assert "#" in merge

    def test_empty_trace(self):
        trace = QueryTrace("q1", "search")
        trace.finish("ok")
        assert "0 span(s)" in format_waterfall(trace.to_dict())


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_search_records_trace_with_queue_and_execute(self):
        from repro.datasets import DblpConfig, generate_dblp_graph
        explorer = CExplorer(workers=2)
        explorer.add_graph("dblp", generate_dblp_graph(
            DblpConfig(n_authors=200, n_communities=6, seed=5)))
        try:
            future = explorer.engine.search("global", "Jim Gray", k=3)
            future.result(30)
            trace = future.trace
            assert trace is not None
            assert trace.status == "ok"
            names = [s.name for s in trace.spans]
            assert "queue_wait" in names
            assert "execute" in names
            assert "cache_lookup" in names
            assert trace.tags["cache"] == "miss"
            assert explorer.engine.tracer.get(trace.query_id) is trace

            # The cache-hit path deliberately skips tracing: a hit
            # resolves in microseconds and a trace would multiply its
            # cost (the <5% warm-path overhead budget).
            recorded = explorer.engine.tracer.stats()["recorded"]
            hit = explorer.engine.search("global", "Jim Gray", k=3)
            assert hit.result(5) == future.result(5)
            assert hit.trace is None
            assert explorer.engine.tracer.stats()["recorded"] == \
                recorded
        finally:
            explorer.engine.shutdown()

    def test_snapshot_reports_tracer_stats(self):
        explorer = CExplorer(workers=1)
        try:
            doc = explorer.engine.snapshot()["traces"]
            assert doc["enabled"] is True
            assert doc["capacity"] == 256
        finally:
            explorer.engine.shutdown()


# ----------------------------------------------------------------------
# acceptance: sharded query over the process backend, via HTTP
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_server():
    from repro.datasets import DblpConfig, generate_dblp_graph
    explorer = CExplorer(workers=2, backend="process")
    explorer.add_graph("dblp", generate_dblp_graph(
        DblpConfig(n_authors=400, n_communities=8, seed=13)),
        shards=3, partitioner="greedy")
    srv = make_server(explorer, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    explorer.engine.shutdown()


def _url(server, path):
    return "http://127.0.0.1:{}{}".format(server.server_address[1],
                                          path)


def _get(server, path):
    with urllib.request.urlopen(_url(server, path)) as resp:
        return resp.status, resp.headers, resp.read()


def _get_json(server, path):
    status, _, body = _get(server, path)
    return status, json.loads(body)


class TestShardedTraceAcceptance:
    def _run_traced_query(self, server, algorithm="acq", k=3):
        req = urllib.request.Request(
            _url(server, "/api/search"),
            data=json.dumps({"vertex": "Jim Gray", "k": k,
                             "algorithm": algorithm}).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req) as resp:
            doc = json.loads(resp.read())
        assert "trace" in doc["query"]
        status, trace = _get_json(
            server, "/api/traces/" + doc["query"]["trace"])
        assert status == 200
        return trace

    def test_trace_covers_fanout_and_merge(self, traced_server):
        trace = self._run_traced_query(traced_server)
        assert trace["status"] == "ok"
        spans = trace["spans"]
        by_name = {}
        for i, span in enumerate(spans):
            by_name.setdefault(span["name"], []).append(i)

        workers = [spans[i] for i in by_name["worker_execute"]]
        process_workers = [s for s in workers
                           if s["tags"].get("backend") == "process"]
        # Three structural fan-out jobs plus the whole-query finish.
        assert {s["tags"]["shard"]
                for s in process_workers} >= {0, 1, 2}
        assert {spans[i]["tags"]["shard"]
                for i in by_name["shard_ipc"]} >= {0, 1, 2}
        assert by_name["merge"], "no merge span"

        # Worker-side sub-spans were shipped back over the wire and
        # grafted under the per-shard worker_execute spans.  A warm
        # worker cache can legitimately skip thaw/build spans, but
        # the ACQ finish always records its algorithm run, and only
        # known worker phases may appear.
        grafted = set()
        for index in by_name["worker_execute"]:
            if spans[index]["tags"].get("backend") != "process":
                continue
            grafted |= {s["name"] for s in spans
                        if s["parent"] == index}
        assert "algorithm" in grafted
        assert grafted <= {"index_thaw", "core_build", "cltree_build",
                           "truss_build", "algorithm"}

    def test_top_level_spans_account_for_latency(self, traced_server):
        # k=2 keys a fresh cache entry, so this traces a full
        # fan-out execution rather than an earlier test's cache hit.
        trace = self._run_traced_query(traced_server, k=2)
        top = [s for s in trace["spans"]
               if s["parent"] is None and s["name"] != "request"]
        accounted = sum(s["seconds"] for s in top)
        # The instrumented phases partition the query end to end:
        # their sum must sit within ~10% of the measured total.
        assert accounted == pytest.approx(trace["seconds"], rel=0.10,
                                          abs=0.001)

    def test_traces_listing_and_limit(self, traced_server):
        # A fresh k keys a cache miss; hits record no trace at all.
        self._run_traced_query(traced_server, k=4)
        status, doc = _get_json(traced_server, "/api/traces?limit=1")
        assert status == 200
        assert len(doc["traces"]) == 1
        assert doc["stats"]["recorded"] >= 1
        summary = doc["traces"][0]
        assert summary["op"] == "search"
        assert summary["seconds"] > 0

    def test_unknown_trace_404(self, traced_server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(traced_server, "/api/traces/q999999")
        assert err.value.code == 404

    def test_metrics_exposition_endpoint(self, traced_server):
        self._run_traced_query(traced_server, k=5)
        status, headers, body = _get(traced_server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'repro_latency_seconds_bucket{le="+Inf",op="search"}' \
            in text
        assert "repro_traces_recorded_total" in text
