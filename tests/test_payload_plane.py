"""The zero-copy payload plane.

The load-bearing claims: (1) whatever transport ships a frozen
payload to a worker -- pickled bytes, a fork-inherited registry
snapshot, or a shared-memory segment attached zero-copy -- query
results are identical; (2) segments are reference-counted and
unlinked on version bumps, quarantine discards, and engine shutdown,
so no run leaks ``/dev/shm`` entries; (3) a lost segment (the
``segment_loss`` chaos fault) is absorbed by the re-freeze ladder;
(4) the persistent store round-trips frozen payloads and CL-trees so
a restarted explorer comes up warm without rebuilding, and spilled
results readmit identically.
"""

import gc
import pickle

import pytest
from conftest import random_graphs
from hypothesis import HealthCheck, given, settings

from repro.core.cltree import build_cltree
from repro.datasets import DblpConfig, generate_dblp_graph
from repro.engine import payloads as payload_plane
from repro.engine.faults import FaultPlan
from repro.explorer.cexplorer import CExplorer
from repro.graph.frozen import FrozenGraph, freeze
from repro.util.errors import CExplorerError, PayloadCorruptionError

TRANSPORTS = ("pickle", "registry", "shm")


@pytest.fixture(autouse=True)
def _finalize_orphans():
    """Engines other test modules dropped without ``shutdown()`` hold
    payloads until their GC finalizer runs; collect them so the
    absolute ``live_segments() == 0`` assertions below are about
    *this* test's engines."""
    gc.collect()


@pytest.fixture
def transport_mode():
    """Restore the ambient transport after a test reconfigures it."""
    previous = payload_plane.configure("shm")
    yield payload_plane.configure
    payload_plane.configure(previous)


def _csr_lists(frozen):
    return list(frozen.indptr), list(frozen.indices)


def _attributes(frozen):
    return ([frozen.keywords(v) for v in frozen.vertices()],
            [frozen.label(v) for v in frozen.vertices()])


# ----------------------------------------------------------------------
# packing: the segment/file layout round-trips
# ----------------------------------------------------------------------
def test_pack_unpack_full_payload(dblp_small):
    frozen = freeze(dblp_small)
    buf = memoryview(b"".join(payload_plane.pack_payload(frozen)))
    out = payload_plane.unpack_payload(buf, key="t")
    assert _csr_lists(out) == _csr_lists(frozen)
    # The keyword/label sidecar is lazy: structural access leaves it
    # undecoded; the first attribute read materialises it.
    assert out._sidecar is not None
    assert list(out.neighbors(3)) == list(frozen.neighbors(3))
    assert out._sidecar is not None
    assert _attributes(out) == _attributes(frozen)
    assert out._sidecar is None


def test_pack_unpack_shard_extras(dblp_small):
    frozen = freeze(dblp_small)
    extras = (tuple(range(frozen.vertex_count)),
              [frozen.degree(v) for v in frozen.vertices()])
    buf = memoryview(b"".join(
        payload_plane.pack_payload(frozen, extras=extras)))
    out, old_ids, degrees = payload_plane.unpack_payload(buf, key="t")
    assert old_ids == extras[0]
    assert degrees == extras[1]
    assert _csr_lists(out) == _csr_lists(frozen)


def test_unpack_rejects_torn_buffer(dblp_small):
    frozen = freeze(dblp_small)
    packed = b"".join(payload_plane.pack_payload(frozen))
    with pytest.raises(PayloadCorruptionError):
        payload_plane.unpack_payload(memoryview(packed[:40]), key="t")
    garbled = b"XXXX" + packed[4:]
    with pytest.raises(PayloadCorruptionError):
        payload_plane.unpack_payload(memoryview(garbled), key="t")


def test_repickling_lazy_snapshot_materialises(dblp_small):
    frozen = freeze(dblp_small)
    buf = memoryview(b"".join(payload_plane.pack_payload(frozen)))
    out = payload_plane.unpack_payload(buf, key="t")
    clone = pickle.loads(pickle.dumps(out))
    assert _csr_lists(clone) == _csr_lists(frozen)
    assert _attributes(clone) == _attributes(frozen)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(graph=random_graphs(keywords=["db", "ir", "ml"]))
def test_packed_equivalent_to_pickled(graph):
    """Property: the packed zero-copy layout decodes to the same
    snapshot the pickle transport ships, for arbitrary graphs."""
    frozen = freeze(graph)
    via_pickle = pickle.loads(pickle.dumps(frozen))
    buf = memoryview(b"".join(payload_plane.pack_payload(frozen)))
    via_pack = payload_plane.unpack_payload(buf, key="t")
    assert _csr_lists(via_pack) == _csr_lists(via_pickle)
    assert _attributes(via_pack) == _attributes(via_pickle)


# ----------------------------------------------------------------------
# segment lifecycle
# ----------------------------------------------------------------------
def test_publish_attach_destroy(transport_mode, dblp_small):
    frozen = freeze(dblp_small)
    before = payload_plane.live_segments()
    segment = payload_plane.publish(("t", "g", 1), frozen)
    assert segment is not None
    assert payload_plane.live_segments() == before + 1
    assert payload_plane.live_bytes() > 0
    attached = payload_plane.attach(segment.ref)
    assert _csr_lists(attached) == _csr_lists(frozen)
    ref = segment.ref
    segment.release()  # drops the only reference -> unlink
    assert payload_plane.live_segments() == before
    with pytest.raises(PayloadCorruptionError):
        payload_plane.attach(ref)


def test_refcount_holds_segment_alive(transport_mode, dblp_small):
    frozen = freeze(dblp_small)
    before = payload_plane.live_segments()
    segment = payload_plane.publish(("t", "g", 2), frozen)
    segment.acquire()
    segment.release()
    assert payload_plane.live_segments() == before + 1
    segment.release()
    assert payload_plane.live_segments() == before


def test_corrupt_ref_fails_attach(transport_mode, dblp_small):
    frozen = freeze(dblp_small)
    segment = payload_plane.publish(("t", "g", 3), frozen)
    try:
        ref = payload_plane.corrupt_ref(segment.ref)
        stats = payload_plane.plane_stats()
        with pytest.raises(PayloadCorruptionError):
            payload_plane.attach(ref)
        assert payload_plane.plane_stats()["attach_failures"] \
            == stats["attach_failures"] + 1
    finally:
        segment.release()


def test_configure_rejects_unknown_transport():
    with pytest.raises(CExplorerError):
        payload_plane.configure("carrier-pigeon")


# ----------------------------------------------------------------------
# transport equivalence through the engine
# ----------------------------------------------------------------------
def _answers(explorer, vertices):
    out = [explorer.search("acq", v, k=4, use_cache=False)
           for v in vertices]
    out.append(explorer.search("global", vertices[0], k=3,
                               use_cache=False))
    return out


@pytest.mark.parametrize("shards", (1, 2, 4))
def test_process_transport_equivalence(transport_mode, dblp_small,
                                       shards):
    """Sharded and unsharded process execution returns identical
    communities on every rung of the transport ladder."""
    vertices = [dblp_small.label(v) for v in (10, 25)]
    results = {}
    for transport in TRANSPORTS:
        transport_mode(transport)
        # The failure counter is process-global and cumulative (the
        # registry rung legitimately records fork misses): diff it.
        failures = payload_plane.plane_stats()["attach_failures"]
        explorer = CExplorer(workers=2, backend="process")
        try:
            explorer.add_graph("g", dblp_small, shards=shards,
                               partitioner="greedy")
            results[transport] = _answers(explorer, vertices)
            if transport == "shm":
                stats = explorer.engine.snapshot()["payloads"]
                assert stats["attach_failures"] == failures
        finally:
            explorer.engine.shutdown()
        # Shutdown releases every payload this engine published.
        assert payload_plane.live_segments() == 0
    assert results["shm"] == results["pickle"]
    assert results["registry"] == results["pickle"]


def test_thread_backend_equivalence(transport_mode, dblp_small):
    vertices = [dblp_small.label(v) for v in (10, 25)]
    results = {}
    for transport in ("pickle", "shm"):
        transport_mode(transport)
        explorer = CExplorer(workers=2, backend="thread")
        try:
            explorer.add_graph("g", dblp_small, shards=2,
                               partitioner="greedy")
            results[transport] = _answers(explorer, vertices)
        finally:
            explorer.engine.shutdown()
    assert results["shm"] == results["pickle"]


def test_invalidate_releases_segments(transport_mode, dblp_small):
    explorer = CExplorer(workers=2, backend="process")
    try:
        explorer.add_graph("g", dblp_small, shards=2,
                           partitioner="greedy")
        explorer.search("acq", dblp_small.label(10), k=4,
                        use_cache=False)
        held = payload_plane.live_segments()
        assert held > 0
        for entry in explorer.indexes.shard_names("g"):
            explorer.indexes.invalidate(entry)
        explorer.indexes.invalidate("g")
        assert payload_plane.live_segments() < held
    finally:
        explorer.engine.shutdown()
    assert payload_plane.live_segments() == 0


def test_segment_loss_chaos_recovers(transport_mode, dblp_small):
    """The ``segment_loss`` fault unlinks a published segment while
    its ref is in flight.  Each query runs against freshly published
    segments (shard entries invalidated between queries), so a loss
    is a genuine torn attachment -- the worker's attach fails, the
    payload is quarantined (the next fan-out re-publishes), and the
    query falls back to the exact serial path.  Answers must match
    fault-free ones and nothing may leak."""
    vertices = [dblp_small.label(v) for v in (10, 25, 40)]

    def run(faults):
        explorer = CExplorer(workers=2, backend="process",
                             faults=faults)
        try:
            explorer.add_graph("g", dblp_small, shards=2,
                               partitioner="greedy")
            answers = []
            for v in vertices:
                for entry in explorer.indexes.shard_names("g"):
                    explorer.indexes.invalidate(entry)
                answers.append(explorer.search("acq", v, k=4,
                                               use_cache=False))
            return answers, explorer.engine.snapshot()
        finally:
            explorer.engine.shutdown()

    clean, _ = run(None)
    chaotic, snap = run(
        FaultPlan.from_spec("seed=11;segment_loss:shard@0.5"))
    assert chaotic == clean
    counters = snap["resilience"]["counters"]
    assert counters["faults_injected"] > 0
    assert counters["quarantines"] >= 1
    assert payload_plane.live_segments() == 0


# ----------------------------------------------------------------------
# the persistent warm store
# ----------------------------------------------------------------------
def _small_graph():
    return generate_dblp_graph(DblpConfig(n_authors=200,
                                          n_communities=6, seed=7))


def test_graph_store_roundtrip(tmp_path):
    graph = _small_graph()
    frozen = freeze(graph)
    cltree = build_cltree(graph)
    store = payload_plane.GraphStore(str(tmp_path))
    store.save("g", frozen, cltree)
    assert store.matches("g", frozen)
    assert store.has_cltree("g")
    loaded = store.load_frozen("g")
    assert _csr_lists(loaded) == _csr_lists(frozen)
    assert _attributes(loaded) == _attributes(frozen)
    tree = store.load_cltree("g", graph)
    assert list(tree.core) == list(cltree.core)
    described = store.describe()
    assert [doc["graph"] for doc in described["graphs"]] == ["g"]
    assert described["graphs"][0]["payload_bytes"] > 0
    assert described["graphs"][0]["cltree_bytes"] > 0
    assert described["total_bytes"] > 0
    assert store.clear() > 0
    assert store.describe()["graphs"] == []


def test_store_mismatch_stays_cold(tmp_path):
    store = payload_plane.GraphStore(str(tmp_path))
    store.save("g", freeze(_small_graph()))
    other = generate_dblp_graph(DblpConfig(n_authors=180,
                                           n_communities=5, seed=9))
    assert not store.matches("g", freeze(other))


def test_warm_restart_skips_rebuild(tmp_path):
    graph = _small_graph()
    vertex = graph.label(15)

    cold = CExplorer(workers=2, store_dir=str(tmp_path))
    try:
        cold.add_graph("g", graph)
        cold.index()
        cold_answer = cold.search("acq", vertex, k=4)
        assert cold.engine.stats.get("store_saves") == 1
    finally:
        cold.engine.shutdown()

    warm = CExplorer(workers=2, store_dir=str(tmp_path))
    try:
        warm.add_graph("g", graph)
        assert warm.engine.stats.get("warm_restores") == 1
        assert warm.engine.stats.get("warm_restore_failures") == 0
        # The restored CL-tree installs without a build; querying and
        # re-requesting the index must not trigger one either.
        warm.index()
        warm_answer = warm.search("acq", vertex, k=4, use_cache=False)
        assert warm.indexes.stats("g")["builds"] == 0
        assert warm_answer == cold_answer
    finally:
        warm.engine.shutdown()


def test_result_spill_readmission(tmp_path):
    graph = _small_graph()
    vertex = graph.label(15)

    first = CExplorer(workers=2, store_dir=str(tmp_path))
    try:
        first.add_graph("g", graph)
        first.index()
        answer = first.search("acq", vertex, k=4)
    finally:
        first.engine.shutdown()  # flushes live cache entries to disk

    second = CExplorer(workers=2, store_dir=str(tmp_path))
    try:
        second.add_graph("g", graph)
        readmitted = second.search("acq", vertex, k=4)
        assert readmitted == answer
        stats = second.engine.cache.stats()
        assert stats["spill_hits"] == 1
        assert stats["spill"]["hits"] == 1
    finally:
        second.engine.shutdown()
