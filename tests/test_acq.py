"""Tests for the ACQ query algorithms (the system's engine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.acq import (
    AcqQuery,
    acq_dec,
    acq_inc_s,
    acq_inc_t,
    acq_search,
    brute_force_acq,
)
from repro.core.cltree import build_cltree
from repro.util.errors import QueryError

from conftest import random_graphs


def _result_key(communities):
    """Canonical comparison form: set of (members, shared keywords)."""
    return {(c.vertices, c.shared_keywords) for c in communities}


class TestWorkedExample:
    """Problem 1's worked example: q=A, k=2, S={w,x,y} -> {A,C,D}/{x,y}."""

    @pytest.mark.parametrize("algorithm", ["dec", "inc-s", "inc-t"])
    def test_paper_example(self, fig5, algorithm):
        result = acq_search(fig5, fig5.id_of("A"), 2,
                            keywords={"w", "x", "y"}, algorithm=algorithm)
        assert len(result) == 1
        community = result[0]
        assert {fig5.label(v) for v in community} == {"A", "C", "D"}
        assert community.shared_keywords == {"x", "y"}
        assert community.method == "ACQ"
        assert community.k == 2

    def test_brute_force_agrees(self, fig5):
        result = brute_force_acq(
            AcqQuery(fig5, fig5.id_of("A"), 2, keywords={"w", "x", "y"}))
        assert len(result) == 1
        assert {fig5.label(v) for v in result[0]} == {"A", "C", "D"}


class TestAcqQueryValidation:
    def test_rejects_unknown_vertex(self, fig5):
        with pytest.raises(QueryError):
            AcqQuery(fig5, 999, 2)

    def test_rejects_negative_k(self, fig5):
        with pytest.raises(QueryError):
            AcqQuery(fig5, 0, -1)

    def test_rejects_keywords_outside_wq(self, fig5):
        with pytest.raises(QueryError, match="not in W"):
            AcqQuery(fig5, fig5.id_of("B"), 1, keywords={"zzz"})

    def test_rejects_empty_query_set(self, fig5):
        with pytest.raises(QueryError):
            AcqQuery(fig5, [], 1)

    def test_defaults_keywords_to_wq(self, fig5):
        q = AcqQuery(fig5, fig5.id_of("A"), 2)
        assert q.keywords == fig5.keywords(fig5.id_of("A"))

    def test_multi_vertex_defaults_to_shared_keywords(self, fig5):
        q = AcqQuery(fig5, [fig5.id_of("A"), fig5.id_of("D")], 2)
        assert q.keywords == {"x", "y"}

    def test_duplicate_query_vertices_deduped(self, fig5):
        a = fig5.id_of("A")
        q = AcqQuery(fig5, [a, a], 2)
        assert q.query_vertices == (a,)

    def test_unknown_algorithm(self, fig5):
        with pytest.raises(QueryError, match="unknown ACQ algorithm"):
            acq_search(fig5, 0, 1, algorithm="nope")

    def test_repr(self, fig5):
        assert "k=2" in repr(AcqQuery(fig5, fig5.id_of("A"), 2))


class TestStructuralBehaviour:
    def test_no_community_when_k_too_large(self, fig5):
        assert acq_search(fig5, fig5.id_of("A"), 4) == []

    def test_isolated_vertex_k0_returns_self(self, fig5):
        result = acq_search(fig5, fig5.id_of("J"), 0)
        assert len(result) == 1
        assert {fig5.label(v) for v in result[0]} == {"J"}
        assert result[0].shared_keywords == {"x"}

    def test_k0_uses_connected_component_only(self, fig5):
        result = acq_search(fig5, fig5.id_of("H"), 0)
        members = {fig5.label(v) for v in result[0]}
        assert members <= {"H", "I"}

    def test_fallback_when_no_keyword_shared(self, fig5):
        # E's keywords are {y, z}; in the 3-core around A nobody shares
        # a keyword set with support... use B (keywords {x}) with k=3:
        # all of A,B,C,D share x, so no fallback; craft S={w} from A:
        # only A carries w, so the AC keeps the structural community
        # with empty shared keywords.
        result = acq_search(fig5, fig5.id_of("A"), 3, keywords={"w"})
        assert len(result) == 1
        assert result[0].shared_keywords == frozenset()
        assert {fig5.label(v) for v in result[0]} == {"A", "B", "C", "D"}

    def test_shared_keywords_recomputed_from_community(self, fig5):
        # Query on S={x}: every vertex of the answer also shares y?
        # {A,B,C,D} all contain x; B lacks y, so L must stay {x}.
        result = acq_search(fig5, fig5.id_of("A"), 3, keywords={"x"})
        assert len(result) == 1
        assert result[0].shared_keywords == {"x"}

    def test_multiple_communities_possible(self):
        """Two disjoint triangles sharing keyword paths through q."""
        from conftest import build_graph
        # q=0 sits between two triangles; with k=1 and S={a}, both
        # triangles qualify... build: 0-1,1-2,2-0 (kw a) and 0-3,3-4,4-0
        # (kw a on 3,4 too). With k=2 both triangles are 2-cores through q.
        g = build_graph(5, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4),
                            (4, 0)],
                        {0: {"a"}, 1: {"a"}, 2: {"a"}, 3: {"a"}, 4: {"a"}})
        result = acq_search(g, 0, 2, keywords={"a"})
        # The whole gadget is one connected 2-core; q belongs to one
        # community covering both triangles.
        assert len(result) == 1
        assert result[0].vertices == frozenset(range(5))


class TestMultiVertex:
    def test_two_query_vertices(self, fig5):
        result = acq_search(fig5, [fig5.id_of("A"), fig5.id_of("D")], 2,
                            keywords={"x", "y"})
        assert len(result) == 1
        community = result[0]
        assert fig5.id_of("A") in community
        assert fig5.id_of("D") in community
        assert community.shared_keywords == {"x", "y"}

    def test_query_vertices_in_different_components(self, fig5):
        assert acq_search(fig5, [fig5.id_of("A"), fig5.id_of("H")], 1) == []

    def test_all_variants_agree_on_multi_vertex(self, fig5):
        qs = [fig5.id_of("A"), fig5.id_of("C")]
        expected = _result_key(acq_search(fig5, qs, 2, algorithm="dec"))
        for algorithm in ("inc-s", "inc-t"):
            assert _result_key(acq_search(fig5, qs, 2,
                                          algorithm=algorithm)) == expected


class TestIndexReuse:
    def test_prebuilt_index_used(self, fig5):
        index = build_cltree(fig5)
        with_index = acq_search(fig5, fig5.id_of("A"), 2, index=index)
        without = acq_search(fig5, fig5.id_of("A"), 2)
        assert _result_key(with_index) == _result_key(without)


@st.composite
def acq_cases(draw):
    g = draw(random_graphs(max_n=14, max_m=40, keywords=list("abcd")))
    q = draw(st.integers(0, g.vertex_count - 1))
    k = draw(st.integers(0, 4))
    return g, q, k


class TestAlgorithmEquivalence:
    """The paper's three query algorithms must return identical answers,
    and all must match the exponential brute force."""

    @settings(max_examples=60, deadline=None)
    @given(acq_cases())
    def test_all_algorithms_match_brute_force(self, case):
        g, q, k = case
        query = AcqQuery(g, q, k)
        expected = _result_key(brute_force_acq(query))
        index = build_cltree(g)
        assert _result_key(acq_dec(AcqQuery(g, q, k),
                                   index=index)) == expected
        assert _result_key(acq_inc_s(AcqQuery(g, q, k))) == expected
        assert _result_key(acq_inc_t(AcqQuery(g, q, k),
                                     index=index)) == expected

    @settings(max_examples=40, deadline=None)
    @given(acq_cases())
    def test_result_invariants(self, case):
        """Every returned community satisfies Problem 1's properties."""
        g, q, k = case
        results = acq_dec(AcqQuery(g, q, k))
        sizes = {len(c.shared_keywords) for c in results}
        assert len(sizes) <= 1  # maximality: all same |L|
        for community in results:
            assert q in community                       # connectivity anchor
            assert community.minimum_internal_degree() >= k  # cohesiveness
            # connectivity: BFS from q inside the community covers it
            members = community.vertices
            seen = {q}
            stack = [q]
            while stack:
                u = stack.pop()
                for w in g.neighbors(u):
                    if w in members and w not in seen:
                        seen.add(w)
                        stack.append(w)
            assert seen == set(members)
            # keyword cohesiveness: L really is shared by everyone
            for v in community:
                assert community.shared_keywords <= g.keywords(v)
