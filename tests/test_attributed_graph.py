"""Tests for the AttributedGraph substrate."""

import pytest
from hypothesis import given

from repro.graph.attributed import AttributedGraph
from repro.util.errors import GraphFormatError, UnknownVertexError

from conftest import random_graphs


class TestConstruction:
    def test_empty_graph(self):
        g = AttributedGraph()
        assert g.vertex_count == 0
        assert g.edge_count == 0
        assert len(g) == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_directed_rejected(self):
        with pytest.raises(GraphFormatError):
            AttributedGraph(directed=True)

    def test_add_vertex_returns_dense_ids(self):
        g = AttributedGraph()
        assert g.add_vertex("a") == 0
        assert g.add_vertex("b") == 1
        assert g.add_vertex() == 2

    def test_duplicate_label_rejected(self):
        g = AttributedGraph()
        g.add_vertex("a")
        with pytest.raises(GraphFormatError):
            g.add_vertex("a")

    def test_ensure_vertex_get_or_create(self):
        g = AttributedGraph()
        v1 = g.ensure_vertex("a")
        v2 = g.ensure_vertex("a")
        assert v1 == v2
        assert g.vertex_count == 1

    def test_add_edge_and_counts(self):
        g = AttributedGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        assert g.add_edge(0, 1) is True
        assert g.edge_count == 1
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_parallel_edge_collapsed(self):
        g = AttributedGraph()
        g.add_vertex()
        g.add_vertex()
        g.add_edge(0, 1)
        assert g.add_edge(1, 0) is False
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        g = AttributedGraph()
        g.add_vertex()
        with pytest.raises(GraphFormatError):
            g.add_edge(0, 0)

    def test_edge_to_unknown_vertex(self):
        g = AttributedGraph()
        g.add_vertex()
        with pytest.raises(UnknownVertexError):
            g.add_edge(0, 5)

    def test_remove_edge(self):
        g = AttributedGraph()
        g.add_vertex()
        g.add_vertex()
        g.add_edge(0, 1)
        g.remove_edge(0, 1)
        assert g.edge_count == 0
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)


class TestAttributes:
    def test_keywords_frozen(self):
        g = AttributedGraph()
        g.add_vertex("a", {"x", "y"})
        assert g.keywords(0) == frozenset({"x", "y"})
        g.set_keywords(0, ["z"])
        assert g.keywords(0) == frozenset({"z"})

    def test_labels_and_ids(self):
        g = AttributedGraph()
        g.add_vertex("alice")
        assert g.label(0) == "alice"
        assert g.id_of("alice") == 0
        assert g.has_label("alice")
        assert not g.has_label("bob")
        with pytest.raises(UnknownVertexError):
            g.id_of("bob")

    def test_display_name_fallback(self):
        g = AttributedGraph()
        g.add_vertex()
        g.add_vertex("named")
        assert g.display_name(0) == "v0"
        assert g.display_name(1) == "named"

    def test_relabel(self):
        g = AttributedGraph()
        g.add_vertex("old")
        g.relabel(0, "new")
        assert g.id_of("new") == 0
        assert not g.has_label("old")

    def test_relabel_duplicate_rejected(self):
        g = AttributedGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        with pytest.raises(GraphFormatError):
            g.relabel(1, "a")

    def test_relabel_same_vertex_same_label_ok(self):
        g = AttributedGraph()
        g.add_vertex("a")
        g.relabel(0, "a")
        assert g.id_of("a") == 0

    def test_keyword_vocabulary(self):
        g = AttributedGraph()
        g.add_vertex("a", {"x"})
        g.add_vertex("b", {"x", "y"})
        assert g.keyword_vocabulary() == {"x", "y"}

    def test_labels_view_is_copy(self):
        g = AttributedGraph()
        g.add_vertex("a")
        labels = g.labels()
        labels["b"] = 99
        assert not g.has_label("b")


class TestTraversal:
    def _path(self, n):
        g = AttributedGraph()
        for i in range(n):
            g.add_vertex()
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        return g

    def test_neighbors_and_degree(self):
        g = self._path(3)
        assert g.degree(1) == 2
        assert set(g.neighbors(1)) == {0, 2}

    def test_edges_listed_once(self):
        g = self._path(4)
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_connected_component(self):
        g = self._path(3)
        g.add_vertex()  # isolated vertex 3
        assert g.connected_component(0) == {0, 1, 2}
        assert g.connected_component(3) == {3}

    def test_connected_components(self):
        g = self._path(3)
        g.add_vertex()
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1, 2], [3]]

    def test_contains(self):
        g = self._path(2)
        assert 0 in g and 1 in g
        assert 2 not in g
        assert "a" not in g


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = AttributedGraph()
        g.add_vertex("a", {"x"})
        g.add_vertex("b")
        g.add_edge(0, 1)
        h = g.copy()
        h.remove_edge(0, 1)
        h.add_vertex("c")
        assert g.edge_count == 1
        assert g.vertex_count == 2
        assert h.keywords(0) == {"x"}
        assert h.id_of("a") == 0

    def test_induced_subgraph_remaps(self):
        g = AttributedGraph()
        for name in "abcd":
            g.add_vertex(name, {name})
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub, mapping = g.induced_subgraph([1, 2, 3])
        assert sub.vertex_count == 3
        assert sub.edge_count == 2
        assert mapping == {1: 0, 2: 1, 3: 2}
        assert sub.label(0) == "b"
        assert sub.keywords(2) == {"d"}

    def test_induced_subgraph_empty_edges(self):
        g = AttributedGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        g.add_edge(0, 1)
        sub, _ = g.induced_subgraph([0])
        assert sub.vertex_count == 1
        assert sub.edge_count == 0

    def test_repr(self):
        g = AttributedGraph()
        g.add_vertex()
        assert "n=1" in repr(g)


@given(random_graphs())
def test_handshake_lemma(g):
    """Property: sum of degrees equals twice the edge count."""
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.edge_count


@given(random_graphs())
def test_edges_are_symmetric_and_unique(g):
    """Property: every edge appears once with u < v and symmetrically."""
    edges = list(g.edges())
    assert len(edges) == len(set(edges)) == g.edge_count
    for u, v in edges:
        assert u < v
        assert u in g.neighbors(v)
        assert v in g.neighbors(u)


@given(random_graphs())
def test_components_partition_vertices(g):
    """Property: connected components partition the vertex set."""
    seen = []
    for comp in g.connected_components():
        seen.extend(comp)
    assert sorted(seen) == list(g.vertices())
