"""Tests for the CSR snapshot layer (repro.graph.frozen) and the CSR
kernel fast paths in repro.core.kcore / repro.core.cltree.

The load-bearing invariants:

* **representation equivalence** -- a :class:`FrozenGraph` answers the
  whole read API exactly like the mutable graph it snapshots
  (property-tested over random attributed graphs);
* **kernel equivalence** -- every CSR kernel (NumPy-vectorised and
  pure-Python alike) returns byte-identical results to the seed
  adjacency-set path: core numbers, peels, connected k-cores, CL-tree
  community structure;
* **pickle round-trip** -- a frozen graph survives pickling (the
  process-backend transport) with all queries intact;
* **immutability** -- mutators raise, so derived structures can trust
  a snapshot for its lifetime.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cltree import build_cltree
from repro.core.kcore import (
    _core_csr_python,
    connected_k_core,
    core_decomposition,
    core_decomposition_csr,
    peel_to_min_degree,
)
from repro.graph.frozen import FrozenGraph, freeze
from repro.util.errors import GraphFormatError, UnknownVertexError

from conftest import build_graph, random_graphs


# ----------------------------------------------------------------------
# representation equivalence
# ----------------------------------------------------------------------
class TestFrozenGraph:
    def test_read_api_matches_mutable(self, karate):
        frozen = freeze(karate)
        assert frozen.vertex_count == karate.vertex_count
        assert frozen.edge_count == karate.edge_count
        assert len(frozen) == len(karate)
        for v in karate.vertices():
            assert list(frozen.neighbors(v)) == sorted(karate.neighbors(v))
            assert frozen.degree(v) == karate.degree(v)
            assert frozen.keywords(v) == karate.keywords(v)
            assert frozen.label(v) == karate.label(v)
            assert frozen.display_name(v) == karate.display_name(v)
        assert sorted(frozen.edges()) == sorted(karate.edges())
        assert frozen.labels() == karate.labels()
        assert frozen.keyword_vocabulary() == karate.keyword_vocabulary()

    def test_membership_and_lookup(self, fig5):
        frozen = freeze(fig5)
        assert 0 in frozen
        assert fig5.vertex_count not in frozen
        assert "x" not in frozen
        for u, v in fig5.edges():
            assert frozen.has_edge(u, v) and frozen.has_edge(v, u)
        assert not frozen.has_edge(0, 0)
        label = fig5.label(0)
        assert frozen.id_of(label) == 0
        assert frozen.has_label(label)
        with pytest.raises(UnknownVertexError):
            frozen.id_of("nobody")
        with pytest.raises(UnknownVertexError):
            frozen.neighbors(frozen.vertex_count)

    def test_connected_components_match(self, karate):
        frozen = freeze(karate)
        assert frozen.connected_component(0) == \
            karate.connected_component(0)
        ours = sorted(map(sorted, frozen.connected_components()))
        theirs = sorted(map(sorted, karate.connected_components()))
        assert ours == theirs

    def test_freeze_is_idempotent(self, fig5):
        frozen = freeze(fig5)
        assert freeze(frozen) is frozen
        assert FrozenGraph.from_graph(frozen) is frozen

    def test_mutators_raise(self, fig5):
        frozen = freeze(fig5)
        for call in (lambda: frozen.add_vertex("new"),
                     lambda: frozen.add_edge(0, 2),
                     lambda: frozen.remove_edge(0, 1),
                     lambda: frozen.set_keywords(0, {"x"}),
                     lambda: frozen.relabel(0, "y")):
            with pytest.raises(GraphFormatError):
                call()

    def test_pickle_round_trip(self, karate):
        frozen = freeze(karate)
        clone = pickle.loads(pickle.dumps(frozen))
        assert list(clone.indptr) == list(frozen.indptr)
        assert list(clone.indices) == list(frozen.indices)
        assert core_decomposition(clone) == core_decomposition(karate)
        assert clone.labels() == karate.labels()
        for v in karate.vertices():
            assert clone.keywords(v) == karate.keywords(v)

    def test_empty_graph(self):
        frozen = freeze(build_graph(0, []))
        assert frozen.vertex_count == 0
        assert frozen.edge_count == 0
        assert core_decomposition(frozen) == []

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(max_n=20, max_m=60, keywords=list("abc")))
    def test_snapshot_equivalence_property(self, graph):
        frozen = freeze(graph)
        assert frozen.vertex_count == graph.vertex_count
        assert frozen.edge_count == graph.edge_count
        for v in graph.vertices():
            assert list(frozen.neighbors(v)) == sorted(graph.neighbors(v))
            assert frozen.keywords(v) == graph.keywords(v)


# ----------------------------------------------------------------------
# kernel equivalence
# ----------------------------------------------------------------------
class TestCsrKernels:
    @settings(max_examples=50, deadline=None)
    @given(random_graphs(max_n=24, max_m=72))
    def test_core_decomposition_equivalence(self, graph):
        expected = core_decomposition(graph)
        frozen = freeze(graph)
        # The dispatching entry point, the explicit CSR entry point,
        # and the pure-Python kernel (the no-NumPy fallback) must all
        # agree with the seed adjacency-set path.
        assert core_decomposition(frozen) == expected
        assert core_decomposition_csr(frozen) == expected
        assert _core_csr_python(*frozen.csr()) == expected

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=20, max_m=60), st.integers(0, 4))
    def test_connected_k_core_equivalence(self, graph, k):
        frozen = freeze(graph)
        core = core_decomposition(graph)
        for q in range(graph.vertex_count):
            expected = connected_k_core(graph, q, k)
            assert connected_k_core(frozen, q, k) == expected
            # Precomputed-core reuse returns the same answer without
            # re-decomposing.
            assert connected_k_core(graph, q, k, core=core) == expected
            assert connected_k_core(frozen, q, k, core=core) == expected

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=20, max_m=60), st.integers(0, 4))
    def test_peel_equivalence(self, graph, k):
        frozen = freeze(graph)
        candidates = [v for v in graph.vertices() if v % 2 == 0]
        for protect in ((), candidates[:1]):
            expected = peel_to_min_degree(graph, candidates, k,
                                          protect=protect)
            assert peel_to_min_degree(frozen, candidates, k,
                                      protect=protect) == expected

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(max_n=16, max_m=48, keywords=list("ab")))
    def test_cltree_on_frozen_matches_mutable(self, graph):
        mutable_tree = build_cltree(graph)
        frozen_tree = build_cltree(freeze(graph))
        for v in range(graph.vertex_count):
            assert frozen_tree.node_of(v).k == mutable_tree.node_of(v).k
            top = max(mutable_tree.core) if mutable_tree.core else 0
            for k in range(top + 2):
                assert frozen_tree.community_vertices(v, k) == \
                    mutable_tree.community_vertices(v, k)

    def test_cltree_keyword_index_on_frozen(self, karate):
        frozen = freeze(karate)
        tree = build_cltree(frozen)
        oracle = build_cltree(karate)
        root = tree.component_root(0, 2)
        oracle_root = oracle.component_root(0, 2)
        for keyword in sorted(karate.keyword_vocabulary()):
            assert tree.vertices_with_keyword(root, keyword) == \
                oracle.vertices_with_keyword(oracle_root, keyword)


# ----------------------------------------------------------------------
# the precomputed-core satellite (the engine's Global path)
# ----------------------------------------------------------------------
class TestPrecomputedCore:
    def test_global_search_with_core(self, karate):
        from repro.algorithms.global_search import global_search
        core = core_decomposition(karate)
        for q in (0, 33):
            for k in (1, 2, 3, 99):
                assert global_search(karate, q, k, core=core) == \
                    global_search(karate, q, k)

    def test_engine_global_reuses_versioned_core(self, karate):
        from repro.explorer.cexplorer import CExplorer
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        baseline = explorer.search("global", 0, k=2, use_cache=False)
        # The versioned decomposition is cached after the first query;
        # later queries reuse it instead of re-decomposing.
        entry_core = explorer.indexes.core("k")
        assert entry_core == core_decomposition(karate)
        assert explorer.indexes.core("k") is entry_core
        assert explorer.search("global", 0, k=2,
                               use_cache=False) == baseline

    def test_engine_global_stays_fresh_under_maintenance(self, karate):
        from repro.explorer.cexplorer import CExplorer
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        explorer.search("global", 0, k=2)
        maintainer = explorer.maintainer()
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v))
        maintainer.insert_edge(u, v)
        got = explorer.search("global", 0, k=2, use_cache=False)
        from repro.algorithms.global_search import global_search
        assert got == global_search(karate, 0, 2)
