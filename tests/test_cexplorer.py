"""Tests for the CExplorer facade (the paper's Figure 4 API)."""

import pytest

from repro.explorer.cexplorer import CExplorer
from repro.graph.io import write_edge_list
from repro.util.errors import CExplorerError, QueryError

from conftest import build_graph


@pytest.fixture
def explorer(dblp_small):
    ex = CExplorer()
    ex.add_graph("dblp", dblp_small)
    return ex


class TestGraphManagement:
    def test_no_graph_yet(self):
        ex = CExplorer()
        with pytest.raises(CExplorerError):
            _ = ex.graph
        with pytest.raises(CExplorerError):
            ex.index()

    def test_upload_from_file(self, fig5, tmp_path):
        path = str(tmp_path / "fig5.txt")
        write_edge_list(fig5, path)
        ex = CExplorer()
        name = ex.upload(path)
        assert name == "fig5"
        assert ex.graph.vertex_count == 10

    def test_add_and_select_graphs(self, fig5, karate):
        ex = CExplorer()
        ex.add_graph("fig5", fig5)
        ex.add_graph("karate", karate)
        assert ex.graph_names() == ["fig5", "karate"]
        assert ex.graph is karate  # last added selected
        ex.select_graph("fig5")
        assert ex.graph is fig5
        with pytest.raises(CExplorerError):
            ex.select_graph("missing")

    def test_add_without_select(self, fig5, karate):
        ex = CExplorer()
        ex.add_graph("fig5", fig5)
        ex.add_graph("karate", karate, select=False)
        assert ex.graph is fig5


class TestIndexing:
    def test_index_cached(self, explorer):
        first = explorer.index()
        assert explorer.index() is first
        rebuilt = explorer.index(rebuild=True)
        assert rebuilt is not first

    def test_index_tracks_build_time(self, explorer):
        index = explorer.index()
        assert index.build_seconds >= 0

    def test_core_numbers_cached(self, explorer):
        assert explorer.core_numbers() is explorer.core_numbers()


class TestVertexResolution:
    def test_resolve_by_id_label_and_case(self, explorer):
        vid = explorer.graph.id_of("Jim Gray")
        assert explorer.resolve_vertex(vid) == vid
        assert explorer.resolve_vertex("Jim Gray") == vid
        assert explorer.resolve_vertex("jim gray") == vid
        assert explorer.resolve_vertex("  JIM GRAY ") == vid

    def test_unknown_name(self, explorer):
        with pytest.raises(QueryError, match="no author named"):
            explorer.resolve_vertex("Nobody Atall")

    def test_bad_id(self, explorer):
        with pytest.raises(QueryError):
            explorer.resolve_vertex(10 ** 9)

    def test_query_options_panel(self, explorer):
        options = explorer.query_options("jim gray")
        assert options["name"] == "Jim Gray"
        assert options["max_k"] >= 1
        assert options["degree_choices"][0] == 1
        assert options["degree_choices"][-1] == options["max_k"]
        assert len(options["keywords"]) >= 20


class TestSearchDetect:
    def test_search_acq_by_name(self, explorer):
        communities = explorer.search("acq", "jim gray", k=3)
        assert communities
        assert explorer.graph.id_of("Jim Gray") in communities[0]

    def test_search_multi_vertex(self, explorer):
        g = explorer.graph
        jim = g.id_of("Jim Gray")
        partner = max(g.neighbors(jim), key=lambda v: g.degree(v))
        communities = explorer.search("acq", ["jim gray", partner], k=2)
        if communities:
            assert jim in communities[0]
            assert partner in communities[0]

    def test_search_all_registered_cs(self, explorer):
        for algorithm in ("global", "local"):
            communities = explorer.search(algorithm, "jim gray", k=3)
            assert communities, algorithm

    def test_detect_label_propagation(self, explorer):
        communities = explorer.detect("label-propagation", seed=1)
        covered = {v for c in communities for v in c}
        assert covered == set(explorer.graph.vertices())


class TestAnalyzeCompareDisplay:
    def test_analyze_metrics(self, explorer):
        community = explorer.search("acq", "jim gray", k=3)[0]
        metrics = explorer.analyze(community)
        for key in ("vertices", "edges", "average_degree", "density",
                    "conductance", "cpj", "cmf",
                    "min_internal_degree"):
            assert key in metrics
        assert metrics["min_internal_degree"] >= 3

    def test_compare_report(self, explorer):
        report = explorer.compare("jim gray", k=3,
                                  methods=("global", "acq"))
        rows = report.table_rows()
        assert {r["method"] for r in rows} == {"global", "acq"}

    def test_display_formats(self, explorer):
        community = explorer.search("acq", "jim gray", k=3)[0]
        svg = explorer.display(community, fmt="svg")
        assert svg.startswith("<svg")
        art = explorer.display(community, fmt="ascii")
        assert "@" in art
        positions = explorer.display(community, fmt="positions")
        assert set(positions) == set(community.vertices)

    def test_display_layout_choices(self, explorer):
        community = explorer.search("acq", "jim gray", k=3)[0]
        for layout in ("ego", "circular", "spring"):
            assert explorer.display(community, fmt="positions",
                                    layout=layout)
        with pytest.raises(CExplorerError):
            explorer.display(community, layout="hexagonal")
        with pytest.raises(CExplorerError):
            explorer.display(community, fmt="3d-holo")

    def test_profile_lookup(self, explorer):
        profile = explorer.profile("jim gray")
        assert profile.name == "Jim Gray"
        assert not profile.synthetic
        other = explorer.profile(explorer.graph.id_of("Jim Gray"))
        assert other.name == "Jim Gray"

    def test_available_algorithms(self):
        algos = CExplorer.available_algorithms()
        assert "acq" in algos["cs"]
        assert "codicil" in algos["cd"]
