"""Unit and property tests for the updatable min-heap."""

import pytest
from hypothesis import given, strategies as st

from repro.util.heaps import UpdatableMinHeap


class TestUpdatableMinHeap:
    def test_pop_returns_minimum(self):
        heap = UpdatableMinHeap([("a", 3), ("b", 1), ("c", 2)])
        assert heap.pop() == ("b", 1)
        assert heap.pop() == ("c", 2)
        assert heap.pop() == ("a", 3)

    def test_pop_empty_raises(self):
        with pytest.raises(KeyError):
            UpdatableMinHeap().pop()

    def test_peek_does_not_remove(self):
        heap = UpdatableMinHeap([("a", 5)])
        assert heap.peek() == ("a", 5)
        assert len(heap) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(KeyError):
            UpdatableMinHeap().peek()

    def test_push_updates_priority(self):
        heap = UpdatableMinHeap([("a", 5), ("b", 4)])
        heap.push("a", 1)
        assert heap.pop() == ("a", 1)
        assert heap.pop() == ("b", 4)

    def test_update_alias(self):
        heap = UpdatableMinHeap([("a", 5)])
        heap.update("a", 9)
        assert heap.priority("a") == 9

    def test_discard_removes(self):
        heap = UpdatableMinHeap([("a", 1), ("b", 2)])
        heap.discard("a")
        assert "a" not in heap
        assert heap.pop() == ("b", 2)

    def test_discard_missing_is_noop(self):
        heap = UpdatableMinHeap()
        heap.discard("ghost")
        assert len(heap) == 0

    def test_len_and_bool(self):
        heap = UpdatableMinHeap()
        assert not heap
        heap.push("x", 0)
        assert heap
        assert len(heap) == 1

    def test_contains_after_update(self):
        heap = UpdatableMinHeap([("a", 1)])
        heap.push("a", 10)
        assert "a" in heap
        heap.pop()
        assert "a" not in heap

    def test_stale_entries_do_not_resurface(self):
        heap = UpdatableMinHeap()
        heap.push("a", 1)
        heap.push("a", 50)
        heap.push("b", 10)
        assert heap.pop() == ("b", 10)
        assert heap.pop() == ("a", 50)
        assert not heap


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(-100, 100)),
                max_size=80))
def test_heap_sorts_like_sorted(ops):
    """Property: after arbitrary pushes/updates, draining the heap
    yields items in nondecreasing final-priority order and exactly the
    surviving key set."""
    heap = UpdatableMinHeap()
    final = {}
    for key, priority in ops:
        heap.push(key, priority)
        final[key] = priority
    drained = []
    while heap:
        drained.append(heap.pop())
    assert sorted(k for k, _ in drained) == sorted(final)
    priorities = [p for _, p in drained]
    assert priorities == sorted(priorities)
    for key, priority in drained:
        assert final[key] == priority
