"""Tests for the Community result type."""

import pytest

from repro.core.community import Community

from conftest import build_graph


@pytest.fixture
def triangle_community():
    g = build_graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)],
                    {0: {"x", "y"}, 1: {"x"}, 2: {"x", "y"}, 3: {"z"}})
    return Community(g, {0, 1, 2}, method="test", query_vertices=(0,),
                     k=2, shared_keywords={"x"})


class TestBasics:
    def test_empty_community_rejected(self):
        g = build_graph(1, [])
        with pytest.raises(ValueError):
            Community(g, set())

    def test_len_iter_contains(self, triangle_community):
        c = triangle_community
        assert len(c) == 3
        assert sorted(c) == [0, 1, 2]
        assert 0 in c and 3 not in c

    def test_vertices_frozen(self, triangle_community):
        assert isinstance(triangle_community.vertices, frozenset)

    def test_equality_and_hash(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        a = Community(g, {0, 1}, shared_keywords={"x"})
        b = Community(g, {0, 1}, shared_keywords={"x"}, method="other")
        c = Community(g, {0, 1}, shared_keywords={"y"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a community"
        assert len({a, b, c}) == 2


class TestStatistics:
    def test_edge_count_is_induced(self, triangle_community):
        assert triangle_community.edge_count == 3  # (2,3) excluded

    def test_average_degree(self, triangle_community):
        assert triangle_community.average_degree == pytest.approx(2.0)

    def test_minimum_internal_degree(self, triangle_community):
        assert triangle_community.minimum_internal_degree() == 2

    def test_internal_degree(self, triangle_community):
        assert triangle_community.internal_degree(2) == 2  # edge to 3 cut
        with pytest.raises(KeyError):
            triangle_community.internal_degree(3)

    def test_induced_edges(self, triangle_community):
        assert sorted(triangle_community.induced_edges()) == \
            [(0, 1), (0, 2), (1, 2)]


class TestPresentation:
    def test_member_names_sorted(self, triangle_community):
        assert triangle_community.member_names() == ["n0", "n1", "n2"]

    def test_theme_with_limit(self):
        g = build_graph(1, [])
        c = Community(g, {0}, shared_keywords={"c", "a", "b"})
        assert c.theme() == ["a", "b", "c"]
        assert c.theme(limit=2) == ["a", "b"]

    def test_to_dict_shape(self, triangle_community):
        doc = triangle_community.to_dict()
        assert doc["method"] == "test"
        assert doc["k"] == 2
        assert doc["vertex_count"] == 3
        assert doc["edge_count"] == 3
        assert doc["theme"] == ["x"]
        assert doc["query_vertices"] == ["n0"]
        assert doc["vertices"] == ["n0", "n1", "n2"]

    def test_repr(self, triangle_community):
        assert "n=3" in repr(triangle_community)
