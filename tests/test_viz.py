"""Tests for layouts and renderers (the display API)."""

import math

import pytest

from repro.core.community import Community
from repro.viz.layout import circular_layout, ego_layout, spring_layout
from repro.viz.render import render_ascii, render_svg, save_svg

from conftest import build_graph


@pytest.fixture
def star_community():
    g = build_graph(5, [(0, i) for i in range(1, 5)],
                    {v: {"x"} for v in range(5)})
    return Community(g, set(range(5)), query_vertices=(0,),
                     shared_keywords={"x"}, method="test")


def _in_unit_square(pos):
    return all(0.0 <= x <= 1.0 and 0.0 <= y <= 1.0
               for x, y in pos.values())


class TestCircularLayout:
    def test_covers_all_vertices(self, star_community):
        pos = circular_layout(star_community)
        assert set(pos) == set(star_community.vertices)
        assert _in_unit_square(pos)

    def test_points_equidistant_from_center(self, star_community):
        pos = circular_layout(star_community)
        radii = [math.hypot(x - 0.5, y - 0.5) for x, y in pos.values()]
        assert max(radii) - min(radii) < 1e-9

    def test_deterministic(self, star_community):
        assert circular_layout(star_community) == \
            circular_layout(star_community)


class TestSpringLayout:
    def test_covers_all_vertices(self, star_community):
        pos = spring_layout(star_community, iterations=20, seed=1)
        assert set(pos) == set(star_community.vertices)
        assert _in_unit_square(pos)

    def test_deterministic_under_seed(self, star_community):
        a = spring_layout(star_community, seed=3)
        b = spring_layout(star_community, seed=3)
        assert a == b

    def test_connected_pair_closer_than_disconnected(self):
        # Path 0-1  2 (isolated but drawn together)
        g = build_graph(3, [(0, 1)])
        c = Community(g, {0, 1, 2})
        pos = spring_layout(c, iterations=120, seed=2)
        d01 = math.dist(pos[0], pos[1])
        d02 = math.dist(pos[0], pos[2])
        assert d01 < d02

    def test_empty_and_single(self):
        g = build_graph(1, [])
        assert spring_layout(Community(g, {0})) == {0: (0.5, 0.5)}

    def test_initial_positions_respected(self, star_community):
        init = {v: (0.5, 0.5) for v in star_community.vertices}
        pos = spring_layout(star_community, iterations=0, initial=init)
        assert pos == init


class TestEgoLayout:
    def test_query_vertex_centred(self, star_community):
        pos = ego_layout(star_community)
        assert pos[0] == (0.5, 0.5)

    def test_leaves_on_one_ring(self, star_community):
        pos = ego_layout(star_community)
        radii = {round(math.hypot(x - 0.5, y - 0.5), 6)
                 for v, (x, y) in pos.items() if v != 0}
        assert len(radii) == 1

    def test_rings_by_bfs_distance(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        c = Community(g, {0, 1, 2}, query_vertices=(0,))
        pos = ego_layout(c)
        r1 = math.hypot(pos[1][0] - 0.5, pos[1][1] - 0.5)
        r2 = math.hypot(pos[2][0] - 0.5, pos[2][1] - 0.5)
        assert r1 < r2

    def test_explicit_center(self, star_community):
        pos = ego_layout(star_community, center=3)
        assert pos[3] == (0.5, 0.5)

    def test_center_defaults_to_min_vertex_without_query(self):
        g = build_graph(2, [(0, 1)])
        pos = ego_layout(Community(g, {0, 1}))
        assert pos[0] == (0.5, 0.5)


class TestRenderSvg:
    def test_svg_structure(self, star_community):
        svg = render_svg(star_community)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") == 5
        assert svg.count("<line") == 4
        assert "Theme: x" in svg

    def test_query_vertex_highlighted(self, star_community):
        svg = render_svg(star_community)
        assert "#d9534f" in svg  # query colour present

    def test_labels_suppressed_beyond_limit(self, star_community):
        svg = render_svg(star_community, label_limit=2)
        # only the query vertex keeps its label
        assert svg.count("<text") == 2  # label + theme line

    def test_title_escaped(self, star_community):
        svg = render_svg(star_community, title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_save_svg(self, star_community, tmp_path):
        path = str(tmp_path / "c.svg")
        assert save_svg(star_community, path) == path
        with open(path) as f:
            assert f.read().startswith("<svg")

    def test_custom_layout_used(self, star_community):
        layout = {v: (0.0, 0.0) for v in star_community.vertices}
        svg = render_svg(star_community, layout=layout, width=100,
                         height=100)
        # All circles collapse onto the padded origin.
        assert svg.count('cx="30.0"') == 5


class TestRenderAscii:
    def test_contains_markers_and_theme(self, star_community):
        art = render_ascii(star_community)
        assert "@" in art
        assert "o" in art
        assert "Theme: x" in art

    def test_legend_lists_members(self, star_community):
        art = render_ascii(star_community)
        for name in star_community.member_names():
            assert name in art

    def test_large_community_skips_legend(self):
        g = build_graph(40, [(0, i) for i in range(1, 40)])
        c = Community(g, set(range(40)), query_vertices=(0,))
        art = render_ascii(c)
        assert "n39" not in art
