"""Tests for dynamic core maintenance under edge updates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kcore import core_decomposition
from repro.core.maintenance import CoreMaintainer

from conftest import build_graph


class TestInsertions:
    def test_insert_promotes_exactly_one_level(self):
        # Path 0-1-2; closing the triangle lifts all three to core 2.
        g = build_graph(3, [(0, 1), (1, 2)])
        m = CoreMaintainer(g)
        assert m.core_numbers() == [1, 1, 1]
        m.insert_edge(0, 2)
        assert m.core_numbers() == [2, 2, 2]
        assert m.verify()
        assert m.promotions == 3

    def test_insert_into_clique_fringe(self):
        # K4 plus pendant 4-0: pendant stays core 1.
        g = build_graph(5, [(i, j) for i in range(4) for j in range(i)])
        m = CoreMaintainer(g)
        m.insert_edge(0, 4)
        assert m.core(4) == 1
        assert m.core(0) == 3
        assert m.verify()

    def test_parallel_insert_is_noop(self):
        g = build_graph(2, [(0, 1)])
        m = CoreMaintainer(g)
        assert m.insert_edge(0, 1) is False
        assert m.updates == 0
        assert m.verify()

    def test_add_vertex_then_connect(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        m = CoreMaintainer(g)
        v = m.add_vertex("new")
        assert m.core(v) == 0
        m.insert_edge(v, 0)
        assert m.core(v) == 1
        assert m.verify()

    def test_insertion_cascade_through_shell(self):
        # Square 0-1-2-3 (all core 2 after diagonal? build a case where
        # the promotion region spans several vertices).
        g = build_graph(6, [(0, 1), (1, 2), (2, 3), (3, 0),
                            (3, 4), (4, 5), (5, 0)])
        m = CoreMaintainer(g)
        m.insert_edge(1, 4)
        assert m.verify()


class TestRemovals:
    def test_remove_triangle_edge(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        m = CoreMaintainer(g)
        m.remove_edge(0, 2)
        assert m.core_numbers() == [1, 1, 1]
        assert m.verify()
        assert m.demotions == 3

    def test_remove_pendant_edge(self):
        g = build_graph(5, [(i, j) for i in range(4) for j in range(i)]
                        + [(0, 4)])
        m = CoreMaintainer(g)
        m.remove_edge(0, 4)
        assert m.core(4) == 0
        assert m.core(0) == 3
        assert m.verify()

    def test_remove_bridge_between_cliques(self):
        edges = [(i, j) for i in range(3) for j in range(i)]
        edges += [(i + 3, j + 3) for i in range(3) for j in range(i)]
        edges += [(2, 3)]
        g = build_graph(6, edges)
        m = CoreMaintainer(g)
        m.remove_edge(2, 3)
        assert m.verify()

    def test_remove_missing_edge_raises(self):
        g = build_graph(2, [])
        m = CoreMaintainer(g)
        with pytest.raises(KeyError):
            m.remove_edge(0, 1)


class TestMixedWorkloads:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(4, 14),
           st.lists(st.tuples(st.booleans(), st.integers(0, 13),
                              st.integers(0, 13)), max_size=40))
    def test_matches_recompute_after_every_update(self, n, ops):
        """Property: after every single patch, the maintained core
        numbers equal a from-scratch decomposition."""
        g = build_graph(n, [])
        m = CoreMaintainer(g)
        for insert, a, b in ops:
            u, v = a % n, b % n
            if u == v:
                continue
            if insert:
                if not g.has_edge(u, v):
                    m.insert_edge(u, v)
            else:
                if g.has_edge(u, v):
                    m.remove_edge(u, v)
            assert m.core_numbers() == core_decomposition(g), \
                ("insert" if insert else "remove", u, v)

    def test_long_churn_on_dblp_sample(self, dblp_small):
        """Insert/remove a batch of edges on a realistic graph and stay
        exact throughout."""
        g = dblp_small.copy()
        m = CoreMaintainer(g)
        jim = g.id_of("Jim Gray")
        neighbours = sorted(g.neighbors(jim))[:10]
        removed = []
        for u in neighbours:
            m.remove_edge(jim, u)
            removed.append(u)
        assert m.verify()
        for u in removed:
            m.insert_edge(jim, u)
        assert m.verify()
        assert m.core_numbers() == core_decomposition(dblp_small)

    def test_counters(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        m = CoreMaintainer(g)
        m.insert_edge(0, 2)
        m.remove_edge(0, 2)
        assert m.updates == 2
        assert m.promotions == 3
        assert m.demotions == 3
