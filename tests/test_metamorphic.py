"""Metamorphic tests: how results must change when inputs change.

These complement the oracle tests (brute force, NetworkX) with
relations that hold across *pairs* of runs -- the classic way to catch
bugs that a single-run invariant cannot see.
"""

from hypothesis import given, settings, strategies as st

from repro.core.acq import AcqQuery, acq_dec
from repro.core.kcore import connected_k_core, core_decomposition
from repro.datasets import DblpConfig, generate_dblp_graph

from conftest import random_graphs


class TestAcqMetamorphic:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs(max_n=12, max_m=36, keywords=list("abc")),
           st.integers(0, 3))
    def test_shrinking_s_cannot_grow_theme_beyond_s(self, g, k):
        """|L| <= |S| always, and shrinking S can only shrink the
        optimal theme within the surviving keywords."""
        for q in range(min(g.vertex_count, 4)):
            full = acq_dec(AcqQuery(g, q, k))
            if not full:
                continue
            full_theme = full[0].shared_keywords
            assert full_theme <= g.keywords(q)
            if not full_theme:
                continue
            # Re-query with S restricted to the winning theme: the
            # same theme must be reachable (it is still shared).
            again = acq_dec(AcqQuery(g, q, k, keywords=full_theme))
            assert again
            assert again[0].shared_keywords == full_theme

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(max_n=12, max_m=36, keywords=list("ab")))
    def test_increasing_k_shrinks_structural_community(self, g):
        """The structural base is antitone in k."""
        core = core_decomposition(g)
        for q in range(min(g.vertex_count, 4)):
            previous = None
            for k in range(core[q] + 1):
                comm = connected_k_core(g, q, k)
                assert comm is not None
                if previous is not None:
                    assert comm <= previous
                previous = comm

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(max_n=10, max_m=30, keywords=list("ab")),
           st.integers(0, 2))
    def test_adding_query_vertex_shrinks_theme(self, g, k):
        """Adding a second query vertex from the community cannot grow
        the shared theme (it is an intersection over Q)."""
        for q in range(min(g.vertex_count, 3)):
            single = acq_dec(AcqQuery(g, q, k))
            if not single:
                continue
            community = single[0]
            partner = next((v for v in sorted(community.vertices)
                            if v != q), None)
            if partner is None:
                continue
            multi = acq_dec(AcqQuery(g, [q, partner], k))
            if multi:
                assert len(multi[0].shared_keywords) <= \
                    len(g.keywords(q))
                assert multi[0].shared_keywords <= \
                    g.keywords(q) & g.keywords(partner)


class TestGeneratorMetamorphic:
    def test_more_authors_more_edges(self):
        small = generate_dblp_graph(DblpConfig(n_authors=200,
                                               n_communities=4, seed=5))
        large = generate_dblp_graph(DblpConfig(n_authors=800,
                                               n_communities=4, seed=5))
        assert large.edge_count > small.edge_count

    def test_higher_inter_p_more_cross_edges(self):
        def cross_edges(inter_p):
            cfg = DblpConfig(n_authors=400, n_communities=4, seed=5,
                             inter_p=inter_p)
            graph, communities = generate_dblp_graph(
                cfg, return_communities=True)
            member_of = {}
            for c, members in communities.items():
                for v in members:
                    member_of[v] = c
            return sum(1 for u, v in graph.edges()
                       if member_of[u] != member_of[v])

        assert cross_edges(0.3) > cross_edges(0.02)

    def test_topic_share_controls_theme_strength(self):
        def shared_size(topic_share):
            cfg = DblpConfig(n_authors=300, n_communities=4, seed=5,
                             topic_share=topic_share)
            graph, communities = generate_dblp_graph(
                cfg, return_communities=True)
            sizes = []
            for members in communities.values():
                sample = sorted(members)[:20]
                shared = frozenset.intersection(
                    *(graph.keywords(v) for v in sample))
                sizes.append(len(shared))
            return sum(sizes) / len(sizes)

        assert shared_size(1.0) > shared_size(0.5)
