"""Tests for the truss maintenance subsystem.

The load-bearing invariants:

* **exactness** -- after every single edge update through a
  :class:`TrussMaintainer`, the maintained supports and truss numbers
  equal a from-scratch recomputation (property-tested over random
  insert/delete sequences);
* **selective invalidation** -- with a truss maintainer attached,
  cached k-truss/ATC results survive updates whose support cascade is
  disjoint from their footprint, and every surviving entry is
  byte-identical to recomputation;
* **sharded truss equivalence** -- the truss family's fan-out/merge
  path returns exactly the unsharded result for shards in {1, 2, 4},
  on both execution backends;
* **observability** -- invalidation reasons and cascade sizes surface
  through ``/api/metrics``, and the evict-all counter stays at zero
  for maintained updates.
"""

import json
import threading
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.attributed_truss import attributed_truss_search
from repro.algorithms.truss_search import truss_community_search
from repro.core.ktruss import edge_support, truss_decomposition
from repro.core.truss_maintenance import (
    TrussMaintainer,
    truss_affected_vertices,
)
from repro.engine.cache import ResultCache
from repro.engine.sharding import (
    TrussShardReport,
    ShardMergeError,
    ShardedIndexManager,
    merge_truss_reports,
    verify_truss_boundary,
)
from repro.explorer.cexplorer import CExplorer
from repro.server.app import make_server
from repro.util.errors import QueryError

from conftest import build_graph, random_graphs


def _triangle_graph():
    return build_graph(3, [(0, 1), (1, 2)])


# ----------------------------------------------------------------------
# the maintainer
# ----------------------------------------------------------------------
class TestTrussMaintainer:
    def test_closing_a_triangle_promotes_all_edges(self):
        g = _triangle_graph()
        m = TrussMaintainer(g)
        assert m.truss(0, 1) == 2
        m.add_edge(0, 2)
        assert m.truss(0, 1) == m.truss(1, 2) == m.truss(0, 2) == 3
        assert m.support(0, 1) == 1
        assert m.verify()
        assert m.promotions == 2        # two pre-existing edges rose

    def test_removing_a_triangle_edge_demotes(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        m = TrussMaintainer(g)
        m.remove_edge(0, 2)
        assert m.truss(0, 1) == m.truss(1, 2) == 2
        assert m.verify()
        assert m.demotions == 2

    def test_parallel_insert_is_noop(self):
        g = build_graph(2, [(0, 1)])
        m = TrussMaintainer(g)
        assert m.add_edge(0, 1) is False
        assert m.updates == 0

    def test_remove_missing_edge_raises(self):
        g = build_graph(2, [])
        m = TrussMaintainer(g)
        with pytest.raises(KeyError):
            m.remove_edge(0, 1)

    def test_k4_then_peel(self):
        edges = [(i, j) for i in range(4) for j in range(i)]
        g = build_graph(4, edges)
        m = TrussMaintainer(g)
        assert all(t == 4 for t in m.truss_numbers().values())
        m.remove_edge(0, 1)
        assert m.verify()
        assert max(m.truss_numbers().values()) == 3

    def test_add_vertex_then_connect(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        m = TrussMaintainer(g)
        v = m.add_vertex("new")
        m.add_edge(v, 0)
        m.add_edge(v, 1)
        assert m.truss(v, 0) == 3      # closes a triangle with (0, 1)
        assert m.verify()

    def test_listeners_see_cascade(self):
        g = _triangle_graph()
        m = TrussMaintainer(g)
        events = []
        m.add_listener(events.append)
        m.add_edge(0, 2)
        (event,) = events
        assert event["kind"] == "insert"
        assert event["edge"] == (0, 2)
        assert event["changed"] == {(0, 1), (1, 2)}
        assert {(0, 1), (1, 2), (0, 2)} <= event["support_changed"]
        affected = truss_affected_vertices(g, event)
        assert {0, 1, 2} <= affected
        assert m.last_cascade_size == 2
        assert m.max_cascade_size == 2

    @settings(max_examples=50, deadline=None)
    @given(st.integers(4, 14),
           st.lists(st.tuples(st.booleans(), st.integers(0, 13),
                              st.integers(0, 13)), max_size=40))
    def test_matches_recompute_after_every_update(self, n, ops):
        """Property: after every single patch, the maintained supports
        and truss numbers equal a from-scratch decomposition."""
        g = build_graph(n, [])
        m = TrussMaintainer(g)
        for insert, a, b in ops:
            u, v = a % n, b % n
            if u == v:
                continue
            if insert:
                if not g.has_edge(u, v):
                    m.add_edge(u, v)
            else:
                if g.has_edge(u, v):
                    m.remove_edge(u, v)
            assert m.truss_numbers() == truss_decomposition(g), \
                ("insert" if insert else "remove", u, v)
            assert m.supports() == edge_support(g)

    def test_long_churn_on_dblp_sample(self, dblp_small):
        g = dblp_small.copy()
        m = TrussMaintainer(g)
        jim = g.id_of("Jim Gray")
        neighbours = sorted(g.neighbors(jim))[:8]
        for u in neighbours:
            m.remove_edge(jim, u)
        assert m.verify()
        for u in neighbours:
            m.add_edge(jim, u)
        assert m.verify()
        assert m.truss_numbers() == truss_decomposition(dblp_small)


# ----------------------------------------------------------------------
# index manager wiring
# ----------------------------------------------------------------------
class TestIndexWiring:
    def test_attach_is_idempotent(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        tm = explorer.indexes.attach_truss_maintainer("k")
        assert explorer.indexes.attach_truss_maintainer("k") is tm

    def test_gateway_updates_patch_truss_index(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        gateway = explorer.truss_maintainer()
        before = explorer.indexes.truss_version("k")
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v))
        gateway.insert_edge(u, v)
        assert explorer.indexes.truss_version("k") == before + 1
        assert explorer.indexes.truss("k") == truss_decomposition(karate)
        gateway.remove_edge(u, v)
        assert explorer.indexes.truss("k") == truss_decomposition(karate)

    def test_truss_index_cached_per_version_without_maintainer(
            self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        first = explorer.indexes.truss("k")
        assert explorer.indexes.truss("k") is first       # cached
        explorer.indexes.invalidate("k")
        assert explorer.indexes.truss("k") is not first   # rebuilt

    def test_stats_report_truss_lifecycle(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        doc = explorer.indexes.stats("k")
        assert doc["truss"]["maintained"] is False
        explorer.truss_maintainer()
        gateway = explorer.maintainer()
        gateway.insert_edge(0, 9) if not karate.has_edge(0, 9) else None
        doc = explorer.indexes.stats("k")
        assert doc["truss"]["maintained"] is True
        assert "cascades" in doc["truss"]
        agg = explorer.indexes.truss_stats()
        assert agg["maintained_graphs"] == 1

    def test_unmaintained_update_still_evicts_truss_entries(self, karate):
        """Without a truss maintainer the old conservative behaviour
        is preserved: any maintenance update drops truss entries."""
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        explorer.search("k-truss", 0, k=3)
        assert len(explorer.cache) == 1
        explorer.maintainer().insert_edge(
            *next((u, v) for u in karate.vertices()
                  for v in karate.vertices()
                  if u < v and not karate.has_edge(u, v)))
        assert len(explorer.cache) == 0
        reasons = explorer.cache.stats()["invalidations_by_reason"]
        assert reasons["evict-all"] == 1
        assert reasons["truss-cascade"] == 0


# ----------------------------------------------------------------------
# selective cache invalidation
# ----------------------------------------------------------------------
class TestSelectiveInvalidation:
    def _two_community_graph(self):
        """Two K4 cliques joined by a long path: truss communities at
        k=3 are the cliques, far apart."""
        edges = [(i, j) for i in range(4) for j in range(i)]
        edges += [(i + 10, j + 10) for i in range(4) for j in range(i)]
        edges += [(3, 4), (4, 5), (5, 6), (6, 10)]
        return build_graph(14, edges)

    def test_disjoint_update_keeps_truss_entries(self):
        g = self._two_community_graph()
        explorer = CExplorer()
        explorer.add_graph("g", g)
        gateway = explorer.truss_maintainer()
        far = explorer.search("k-truss", 10, k=3)
        near = explorer.search("k-truss", 0, k=3)
        assert len(explorer.cache) == 2
        # Update inside the first clique's neighbourhood: only the
        # entry whose footprint intersects the cascade is evicted.
        gateway.remove_edge(0, 1)
        assert explorer.cache.get(
            explorer.cache.key("g", "k-truss", 10, 3, None)) == far
        assert explorer.cache.get(
            explorer.cache.key("g", "k-truss", 0, 3, None),
            record_miss=False) is None
        reasons = explorer.cache.stats()["invalidations_by_reason"]
        assert reasons["truss-cascade"] == 1
        assert reasons["evict-all"] == 0
        # The surviving entry is byte-identical to recomputation.
        fresh = CExplorer()
        fresh.add_graph("g", explorer.graph)
        assert far == fresh.search("k-truss", 10, k=3, use_cache=False)
        assert near is not None

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @settings(max_examples=20, deadline=None)
    @given(random_graphs(max_n=12, max_m=30, keywords=list("ab")),
           st.lists(st.tuples(st.booleans(), st.integers(0, 11),
                              st.integers(0, 11)), min_size=1,
                    max_size=6))
    def test_surviving_entries_match_recompute(self, shards, graph, ops):
        """Property: after any insert/delete sequence, every cached
        truss result that survived selective invalidation equals a
        fresh recomputation on the mutated graph -- sharded or not."""
        explorer = CExplorer()
        explorer.add_graph("g", graph.copy(), shards=shards)
        gateway = explorer.truss_maintainer()
        live = explorer.indexes.graph("g")
        n = live.vertex_count
        queries = [(q, k) for q in range(min(n, 4)) for k in (2, 3)]
        for q, k in queries:
            explorer.search("k-truss", q, k=k)
            try:
                explorer.search("atc", q, k=k, keywords={"a"})
            except QueryError:
                pass    # q does not carry keyword "a": nothing cached
        for insert, a, b in ops:
            u, v = a % n, b % n
            if u == v:
                continue
            if insert and not live.has_edge(u, v):
                gateway.insert_edge(u, v)
            elif not insert and live.has_edge(u, v):
                gateway.remove_edge(u, v)
        for q, k in queries:
            for algorithm, kw in (("k-truss", None), ("atc", {"a"})):
                key = explorer.cache.key("g", algorithm, q, k, kw)
                cached = explorer.cache.get(key, record_miss=False)
                if cached is None:
                    continue
                if algorithm == "k-truss":
                    expected = truss_community_search(live, q, k)
                else:
                    expected = attributed_truss_search(live, q, k,
                                                       keywords={"a"})
                assert cached == expected, (algorithm, q, k)

    def test_core_only_entries_unaffected_by_truss_wiring(self, karate):
        """ACQ/global entries keep their core-cascade selectivity when
        a truss maintainer is attached."""
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        gateway = explorer.truss_maintainer()
        explorer.search("global", 0, k=2)
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v))
        gateway.insert_edge(u, v)
        reasons = explorer.cache.stats()["invalidations_by_reason"]
        assert reasons["evict-all"] == 0


# ----------------------------------------------------------------------
# merge primitives
# ----------------------------------------------------------------------
class TestTrussMergePrimitives:
    def test_merge_with_no_reports_is_full_peel(self):
        g = build_graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        strong, suspects = merge_truss_reports(
            g, [], 3, extra_edges=list(g.edges()))
        assert strong == {(0, 1), (0, 2), (1, 2)}
        assert suspects == strong
        verify_truss_boundary(g, strong, suspects, 3)

    def test_certified_edges_are_immovable(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        report = TrussShardReport(0, {(0, 1), (0, 2), (1, 2)}, set())
        strong, suspects = merge_truss_reports(g, [report], 3)
        assert strong == {(0, 1), (0, 2), (1, 2)}
        assert suspects == set()

    def test_verify_raises_on_bad_merge(self):
        g = build_graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        with pytest.raises(ShardMergeError):
            # (0, 3) closes no triangle: a correct 3-truss merge could
            # never include it.
            verify_truss_boundary(g, set(g.edges()), {(0, 3)}, 3)

    def test_shard_truss_candidates_certify_soundly(self, karate):
        manager = ShardedIndexManager()
        manager.register("k", karate, shards=2, partitioner="greedy")
        truss = truss_decomposition(karate)
        for k in (3, 4):
            for shard in range(2):
                report = manager.shard_truss_candidates("k", shard, k)
                assert all(truss[e] >= k for e in report.certified)


# ----------------------------------------------------------------------
# sharded equivalence
# ----------------------------------------------------------------------
class TestShardedTrussEquivalence:
    CONFIGS = ((1, "hash", 1), (2, "hash", 1), (4, "greedy", 2))

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(max_n=14, max_m=42, keywords=list("abc")),
           st.integers(2, 4))
    def test_sharded_equals_unsharded(self, graph, k):
        plain = CExplorer()
        plain.add_graph("g", graph)
        sharded = []
        for shards, method, workers in self.CONFIGS:
            ex = CExplorer(workers=workers)
            ex.add_graph("g", graph, shards=shards, partitioner=method)
            sharded.append(ex)
        queries = list(range(min(graph.vertex_count, 4)))
        for q in queries:
            for algorithm, kw in (("k-truss", None), ("atc", None),
                                  ("atc", {"a", "b"})):
                try:
                    expected = plain.search(algorithm, q, k=k,
                                            keywords=kw,
                                            use_cache=False)
                except QueryError as exc:
                    expected = ("error", str(exc))
                for ex in sharded:
                    try:
                        got = ex.search(algorithm, q, k=k, keywords=kw,
                                        use_cache=False)
                    except QueryError as exc:
                        got = ("error", str(exc))
                    assert got == expected, (algorithm, q, k)
        for ex in sharded:
            assert ex.engine.stats.get("shard_fallbacks") == 0

    def test_equivalence_under_maintenance(self, karate):
        sharded = CExplorer()
        sharded.add_graph("k", karate.copy(), shards=2)
        plain = CExplorer()
        plain.add_graph("k", karate.copy())
        ms = sharded.truss_maintainer()
        mp = plain.truss_maintainer()
        for u, v in ((0, 9), (4, 12), (33, 9), (0, 1)):
            if sharded.indexes.graph("k").has_edge(u, v):
                ms.remove_edge(u, v)
                mp.remove_edge(u, v)
            else:
                ms.insert_edge(u, v)
                mp.insert_edge(u, v)
            for q in (0, 33):
                for k in (3, 4):
                    assert sharded.search("k-truss", q, k=k) == \
                        plain.search("k-truss", q, k=k), (u, v, q, k)
        assert sharded.engine.stats.get("shard_fallbacks") == 0

    def test_process_backend_matches_thread(self, dblp_small):
        plain = CExplorer()
        plain.add_graph("g", dblp_small)
        proc = CExplorer(workers=2, backend="process")
        proc.add_graph("g", dblp_small, shards=2, partitioner="greedy")
        try:
            jim = dblp_small.id_of("Jim Gray")
            for algorithm in ("k-truss", "atc"):
                assert proc.search(algorithm, jim, k=3) == \
                    plain.search(algorithm, jim, k=3)
            assert proc.engine.stats.get("process_fallbacks") == 0
        finally:
            proc.engine.shutdown()

    def test_invalid_k_matches_serial_error(self, karate):
        from repro.util.errors import QueryError
        explorer = CExplorer()
        explorer.add_graph("k", karate, shards=2)
        for algorithm in ("k-truss", "atc"):
            with pytest.raises(QueryError):
                explorer.search(algorithm, 0, k=1)


# ----------------------------------------------------------------------
# cache unit behaviour
# ----------------------------------------------------------------------
class TestCacheReasons:
    def test_truss_entries_use_truss_region(self):
        cache = ResultCache(8)
        cache.put(cache.key("g", "k-truss", 1, 3, None), "far",
                  vertices={10, 11})
        cache.put(cache.key("g", "acq", 1, 3, None), "core",
                  vertices={10, 11})
        # Core region hits the footprint, truss region does not: the
        # truss entry survives, the acq entry goes.
        evicted = cache.invalidate("g", affected={10},
                                   truss_affected={99})
        assert evicted == 1
        assert cache.get(cache.key("g", "k-truss", 1, 3, None)) == "far"
        reasons = cache.stats()["invalidations_by_reason"]
        assert reasons == {"core-cascade": 1, "truss-cascade": 0,
                           "evict-all": 0}

    def test_missing_truss_region_falls_back_to_evict_all(self):
        cache = ResultCache(8)
        cache.put(cache.key("g", "atc", 1, 3, None), "x",
                  vertices={10})
        cache.invalidate("g", affected={99})
        assert len(cache) == 0
        assert cache.stats()["invalidations_by_reason"]["evict-all"] == 1

    def test_empty_footprint_never_survives(self):
        cache = ResultCache(8)
        cache.put(cache.key("g", "k-truss", 1, 3, None), [],
                  vertices=set())
        cache.invalidate("g", affected={5}, truss_affected={5})
        assert len(cache) == 0


# ----------------------------------------------------------------------
# metrics surface
# ----------------------------------------------------------------------
class TestMetricsSurface:
    def test_api_metrics_reports_truss_counters(self, karate):
        explorer = CExplorer()
        explorer.add_graph("k", karate)
        gateway = explorer.truss_maintainer()
        explorer.search("k-truss", 0, k=3)
        u, v = next(
            (u, v) for u in karate.vertices() for v in karate.vertices()
            if u < v and not karate.has_edge(u, v))
        gateway.insert_edge(u, v)
        srv = make_server(explorer, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            url = "http://127.0.0.1:{}/api/metrics".format(
                srv.server_address[1])
            with urllib.request.urlopen(url) as resp:
                doc = json.loads(resp.read())
        finally:
            srv.shutdown()
        assert "truss_invalidations" in doc
        assert doc["truss_cascade_size"]["updates"] == 1
        assert "invalidations_by_reason" in doc["cache"]
        assert doc["cache"]["invalidations_by_reason"]["evict-all"] == 0
        assert doc["engine"]["truss"]["maintained_graphs"] == 1
