"""HTTP round-trip tests for the browser-server substrate."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.explorer.cexplorer import CExplorer
from repro.graph.io import write_edge_list
from repro.server.app import make_server


@pytest.fixture(scope="module")
def server(request):
    from repro.datasets import DblpConfig, generate_dblp_graph
    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph(
        DblpConfig(n_authors=400, n_communities=8, seed=13)))
    srv = make_server(explorer, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()


def _url(server, path):
    return "http://127.0.0.1:{}{}".format(server.server_address[1], path)


def _get(server, path):
    with urllib.request.urlopen(_url(server, path)) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, doc):
    req = urllib.request.Request(
        _url(server, path), data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestStaticEndpoints:
    def test_index_page(self, server):
        with urllib.request.urlopen(_url(server, "/")) as resp:
            body = resp.read().decode("utf-8")
            assert resp.headers["Content-Type"].startswith("text/html")
        assert "C-Explorer" in body
        assert "Search" in body

    def test_algorithms(self, server):
        status, doc = _get(server, "/api/algorithms")
        assert status == 200
        assert "acq" in doc["cs"]
        assert "codicil" in doc["cd"]

    def test_graphs_listing(self, server):
        status, doc = _get(server, "/api/graphs")
        assert status == 200
        assert doc["graphs"][0]["name"] == "dblp"
        assert doc["graphs"][0]["vertices"] == 400

    def test_unknown_endpoint_404(self, server):
        status, doc = _post(server, "/api/nope", {})
        assert status == 404
        assert "error" in doc


class TestQueryEndpoints:
    def test_options(self, server):
        status, doc = _post(server, "/api/options",
                            {"vertex": "jim gray"})
        assert status == 200
        assert doc["name"] == "Jim Gray"
        assert doc["keywords"]

    def test_search(self, server):
        status, doc = _post(server, "/api/search",
                            {"vertex": "jim gray", "k": 3,
                             "algorithm": "acq"})
        assert status == 200
        assert doc["query"]["k"] == 3
        assert doc["communities"]
        community = doc["communities"][0]
        assert "Jim Gray" in community["vertices"]
        assert community["theme"]

    def test_search_with_keyword_subset(self, server):
        _, options = _post(server, "/api/options",
                           {"vertex": "jim gray"})
        subset = options["keywords"][:5]
        status, doc = _post(server, "/api/search",
                            {"vertex": "jim gray", "k": 3,
                             "keywords": subset})
        assert status == 200

    def test_search_unknown_vertex_400(self, server):
        status, doc = _post(server, "/api/search",
                            {"vertex": "nobody at all"})
        assert status == 400
        assert "error" in doc

    def test_search_missing_vertex_400(self, server):
        status, doc = _post(server, "/api/search", {"k": 3})
        assert status == 400
        assert "vertex" in doc["error"]

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            _url(server, "/api/search"), data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req)
        assert exc.value.code == 400

    def test_detect(self, server):
        status, doc = _post(server, "/api/detect",
                            {"algorithm": "label-propagation",
                             "params": {"seed": 1}})
        assert status == 200
        assert doc["count"] >= 1
        assert len(doc["communities"]) <= 50

    def test_display(self, server):
        status, doc = _post(server, "/api/display",
                            {"vertex": "jim gray", "k": 3,
                             "community": 0})
        assert status == 200
        assert doc["svg"].startswith("<svg")
        assert doc["positions"]

    def test_display_bad_index(self, server):
        status, doc = _post(server, "/api/display",
                            {"vertex": "jim gray", "k": 3,
                             "community": 99})
        assert status == 400
        assert "out of range" in doc["error"]

    def test_profile(self, server):
        status, doc = _post(server, "/api/profile",
                            {"vertex": "Michael Stonebraker"})
        assert status == 200
        assert "Berkeley" in doc["institute"]

    def test_compare(self, server):
        status, doc = _post(server, "/api/compare",
                            {"vertex": "jim gray", "k": 3,
                             "methods": ["global", "acq"]})
        assert status == 200
        assert {row["method"] for row in doc["table"]} == \
            {"global", "acq"}
        assert "acq" in doc["quality"]
        # The Figure 6(a) bar graphs come along as SVG.
        assert doc["charts"]["cpj"].startswith("<svg")
        assert doc["charts"]["cmf"].startswith("<svg")

    def test_compare_charts_opt_out(self, server):
        status, doc = _post(server, "/api/compare",
                            {"vertex": "jim gray", "k": 3,
                             "methods": ["acq"], "charts": False})
        assert status == 200
        assert "charts" not in doc

    def test_upload(self, server, fig5, tmp_path):
        path = str(tmp_path / "fig5.txt")
        write_edge_list(fig5, path)
        status, doc = _post(server, "/api/upload", {"path": path,
                                                    "name": "fig5"})
        assert status == 200
        assert doc == {"name": "fig5", "vertices": 10, "edges": 11,
                       "shards": 1}
        # Restore the dblp graph as active for other tests.
        server.explorer.select_graph("dblp")

    def test_upload_missing_path(self, server):
        status, doc = _post(server, "/api/upload", {})
        assert status == 400

    def test_suggest(self, server):
        status, doc = _post(server, "/api/suggest", {"prefix": "jim"})
        assert status == 200
        assert "Jim Gray" in doc["names"]

    def test_suggest_empty_prefix(self, server):
        status, doc = _post(server, "/api/suggest",
                            {"prefix": "", "limit": 3})
        assert status == 200
        assert len(doc["names"]) == 3

    def test_stats_endpoint(self, server):
        status, doc = _get(server, "/api/stats")
        assert status == 200
        assert doc["vertices"] == server.explorer.graph.vertex_count
        assert "core_histogram" in doc

    def test_session_threading_and_history(self, server):
        status, doc = _post(server, "/api/search",
                            {"vertex": "jim gray", "k": 3})
        assert status == 200
        session_id = doc["session"]
        assert session_id
        # Second query under the same session.
        status, doc = _post(server, "/api/search",
                            {"vertex": "jim gray", "k": 2,
                             "session": session_id})
        assert doc["session"] == session_id
        status, doc = _post(server, "/api/history",
                            {"session": session_id})
        assert status == 200
        assert len(doc["history"]) == 2
        assert doc["history"][0]["k"] == 2  # most recent first

    def test_metrics_endpoint(self, server):
        _post(server, "/api/search", {"vertex": "jim gray", "k": 3})
        status, doc = _get(server, "/api/metrics")
        assert status == 200
        assert doc["uptime_seconds"] >= 0
        assert doc["requests"].get("/api/search", 0) >= 1
        assert "cache" in doc
        assert doc["cache"]["capacity"] > 0

    def test_metrics_engine_block(self, server):
        """/api/metrics surfaces the query engine: pool shape, queue
        depth, cache hit rate, and latency percentiles."""
        # One repeated search guarantees at least one miss and one hit.
        _post(server, "/api/search", {"vertex": "jim gray", "k": 4})
        _post(server, "/api/search", {"vertex": "jim gray", "k": 4})
        status, doc = _get(server, "/api/metrics")
        assert status == 200
        engine = doc["engine"]
        assert engine["workers"] >= 1
        assert engine["queue_depth"] >= 0
        assert engine["max_queue"] >= 1
        assert engine["cache"]["hits"] >= 1
        assert 0.0 <= engine["cache"]["hit_rate"] <= 1.0
        latency = engine["latency"]["search"]
        assert latency["count"] >= 1
        assert latency["p50_ms"] >= 0
        assert latency["p95_ms"] >= latency["p50_ms"]
        assert engine["counters"]["completed"] >= 1
        assert engine["indexes"]["dblp"]["version"] >= 1

    def test_search_runs_on_engine_workers(self, server):
        """A search increments the engine's completed counter (the
        work left the handler thread)."""
        before = _get(server, "/api/metrics")[1]["engine"]["counters"]
        _post(server, "/api/search",
              {"vertex": "michael stonebraker", "k": 5})
        after = _get(server, "/api/metrics")[1]["engine"]["counters"]
        assert after["completed"] >= before.get("completed", 0)
        assert after["submitted"] > before.get("submitted", 0)

    def test_metrics_counts_errors(self, server):
        before = _get(server, "/api/metrics")[1]["errors"]
        _post(server, "/api/search", {"vertex": "nobody here"})
        after = _get(server, "/api/metrics")[1]["errors"]
        assert after == before + 1

    def test_display_includes_inferred_theme(self, server):
        status, doc = _post(server, "/api/display",
                            {"vertex": "jim gray", "k": 3,
                             "algorithm": "global", "community": 0})
        assert status == 200
        assert doc["theme"], "structural community gets inferred theme"

    def test_history_unknown_session(self, server):
        status, doc = _post(server, "/api/history", {"session": "nope"})
        assert status == 400
        assert "unknown session" in doc["error"]

    def test_concurrent_queries(self, server):
        """The threaded server must answer parallel searches correctly."""
        results = []
        errors = []

        def worker():
            try:
                results.append(_post(server, "/api/search",
                                     {"vertex": "jim gray", "k": 3}))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        first = results[0][1]["communities"]
        assert all(r[1]["communities"] == first for r in results)
