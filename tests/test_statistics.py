"""Tests for the statistics table (Figure 6(a) bottom)."""

import pytest

from repro.analysis.statistics import (
    community_statistics,
    format_table,
    statistics_table,
)
from repro.core.community import Community

from conftest import build_graph


def _two_triangles_graph():
    return build_graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
                       {v: {"x"} for v in range(6)})


class TestCommunityStatistics:
    def test_empty_result_row(self):
        row = community_statistics([])
        assert row["communities"] == 0
        assert row["vertices"] == 0.0
        assert row["cmf"] == 0.0

    def test_single_community(self):
        g = _two_triangles_graph()
        c = Community(g, {0, 1, 2}, query_vertices=(0,))
        row = community_statistics([c])
        assert row == {
            "communities": 1, "vertices": 3.0, "edges": 3.0,
            "degree": 2.0, "cpj": 1.0, "density": 1.0, "cmf": 1.0,
        }

    def test_averages_across_communities(self):
        g = _two_triangles_graph()
        a = Community(g, {0, 1, 2}, query_vertices=(0,))
        b = Community(g, {3, 4}, query_vertices=(0,))
        row = community_statistics([a, b])
        assert row["communities"] == 2
        assert row["vertices"] == pytest.approx(2.5)
        assert row["edges"] == pytest.approx(2.0)  # (3 + 1) / 2

    def test_explicit_query_vertex_used_for_cmf(self):
        g = build_graph(2, [(0, 1)], {0: {"a"}, 1: set()})
        c = Community(g, {0, 1})
        row = community_statistics([c], query_vertex=0)
        assert row["cmf"] == pytest.approx(0.5)


class TestStatisticsTable:
    def test_rows_preserve_method_order(self):
        g = _two_triangles_graph()
        c = Community(g, {0, 1, 2}, query_vertices=(0,))
        rows = statistics_table({"global": [c], "acq": [c]})
        assert [r["method"] for r in rows] == ["global", "acq"]

    def test_format_table_renders_fig6_columns(self):
        g = _two_triangles_graph()
        c = Community(g, {0, 1, 2}, query_vertices=(0,))
        text = format_table(statistics_table({"ACQ": [c]}))
        lines = text.splitlines()
        assert "Method" in lines[0]
        assert "Vertices" in lines[0]
        assert "ACQ" in lines[2]

    def test_format_table_empty(self):
        assert "Method" in format_table([])
