"""Tests for the dataset fixtures and the DBLP generator."""

import pytest

from repro.core.kcore import core_decomposition, max_core_number
from repro.datasets import (
    DblpConfig,
    figure5_graph,
    generate_dblp_graph,
    karate_club_graph,
    seed_authors,
)
from repro.datasets.dblp import COMMON_KEYWORDS, SEED_AUTHORS
from repro.datasets.karate import karate_factions
from repro.graph.validation import validate_graph


class TestFigure5:
    def test_sizes_match_paper(self, fig5):
        assert fig5.vertex_count == 10
        assert fig5.edge_count == 11

    def test_keywords_match_paper(self, fig5):
        assert fig5.keywords(fig5.id_of("A")) == {"w", "x", "y"}
        assert fig5.keywords(fig5.id_of("D")) == {"x", "y", "z"}
        assert fig5.keywords(fig5.id_of("J")) == {"x"}

    def test_core_numbers_match_paper(self, fig5):
        core = core_decomposition(fig5)
        by_core = {}
        for v in fig5.vertices():
            by_core.setdefault(core[v], set()).add(fig5.label(v))
        assert by_core == {
            0: {"J"}, 1: {"F", "G", "H", "I"}, 2: {"E"},
            3: {"A", "B", "C", "D"},
        }

    def test_graph_is_valid(self, fig5):
        validate_graph(fig5, require_keywords=True)


class TestKarate:
    def test_shape(self, karate):
        assert karate.vertex_count == 34
        assert karate.edge_count == 78

    def test_factions_partition(self):
        factions = karate_factions()
        assert set(factions) == {"hi", "officer"}
        assert sum(len(m) for m in factions.values()) == 34

    def test_keywords_reflect_factions(self, karate):
        factions = karate_factions()
        for v in factions["hi"]:
            assert "instructor" in karate.keywords(v)
        for v in factions["officer"]:
            assert "administration" in karate.keywords(v)

    def test_valid(self, karate):
        validate_graph(karate, require_keywords=True)


class TestDblpGenerator:
    def test_default_shape(self, dblp_medium):
        assert dblp_medium.vertex_count == 2000
        assert dblp_medium.edge_count > 4000

    def test_deterministic(self):
        cfg = DblpConfig(n_authors=150, n_communities=5, seed=3)
        a = generate_dblp_graph(cfg)
        b = generate_dblp_graph(cfg)
        assert sorted(a.edges()) == sorted(b.edges())
        assert all(a.keywords(v) == b.keywords(v) for v in a.vertices())

    def test_different_seeds_differ(self):
        a = generate_dblp_graph(DblpConfig(n_authors=150, seed=1))
        b = generate_dblp_graph(DblpConfig(n_authors=150, seed=2))
        assert sorted(a.edges()) != sorted(b.edges())

    def test_seed_authors_present(self, dblp_medium):
        for name in seed_authors():
            assert dblp_medium.has_label(name)

    def test_keywords_per_author(self, dblp_medium):
        cfg_default = DblpConfig()
        for v in list(dblp_medium.vertices())[:100]:
            assert len(dblp_medium.keywords(v)) >= \
                cfg_default.keywords_per_author

    def test_planted_communities_returned(self):
        cfg = DblpConfig(n_authors=200, n_communities=4, seed=9)
        graph, communities = generate_dblp_graph(cfg,
                                                 return_communities=True)
        covered = sorted(v for members in communities.values()
                         for v in members)
        assert covered == list(graph.vertices())
        assert len(communities) == 4

    def test_topic_keywords_shared_within_community(self):
        cfg = DblpConfig(n_authors=200, n_communities=4, seed=9,
                         topic_share=1.0)
        graph, communities = generate_dblp_graph(cfg,
                                                 return_communities=True)
        for members in communities.values():
            shared = frozenset.intersection(
                *(graph.keywords(v) for v in members))
            # With topic_share=1 every member carries the full topic
            # pool, so at least 8 keywords are common.
            assert len(shared) >= 8

    def test_leaders_have_boosted_degree(self, dblp_medium):
        jim = dblp_medium.id_of("Jim Gray")
        degrees = sorted(dblp_medium.degree(v)
                         for v in dblp_medium.vertices())
        # The leader sits in the top decile of the degree distribution.
        assert dblp_medium.degree(jim) >= degrees[int(len(degrees) * 0.9)]

    def test_heavy_tail_degrees(self, dblp_medium):
        degrees = [dblp_medium.degree(v) for v in dblp_medium.vertices()]
        mean = sum(degrees) / len(degrees)
        assert max(degrees) > 4 * mean

    def test_nontrivial_core_structure(self, dblp_medium):
        assert max_core_number(dblp_medium) >= 4

    def test_common_keywords_globally_frequent(self, dblp_medium):
        data_count = sum(1 for v in dblp_medium.vertices()
                         if "data" in dblp_medium.keywords(v))
        assert data_count > dblp_medium.vertex_count * 0.2

    def test_graph_is_valid(self, dblp_medium):
        validate_graph(dblp_medium, require_keywords=True)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DblpConfig(n_authors=3, n_communities=10)
        with pytest.raises(ValueError):
            DblpConfig(m_intra=0)

    def test_seed_author_list_sane(self):
        assert "Jim Gray" in SEED_AUTHORS
        assert len(set(SEED_AUTHORS)) == len(SEED_AUTHORS)
        assert "data" in COMMON_KEYWORDS
