"""Tests for the metrics substrate (repro.engine.stats)."""

import threading

from repro.engine.stats import (
    BUCKET_EDGES,
    EngineStats,
    LatencyHistogram,
    RECENT_WINDOW_SECONDS,
)


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
class TestHistogramReservoir:
    def test_wraparound_keeps_last_n_samples(self):
        hist = LatencyHistogram(reservoir_size=8)
        for i in range(20):
            hist.record(float(i))
        # The ring holds exactly the last 8 observations (12..19);
        # older samples have been overwritten in place.
        assert sorted(hist._reservoir) == [float(i) for i in range(12, 20)]
        assert len(hist._reservoir) == 8
        # Lifetime aggregates still cover every observation.
        assert hist.count == 20
        assert hist.total == sum(range(20))
        assert hist.max == 19.0

    def test_wraparound_percentiles_reflect_recent_window(self):
        hist = LatencyHistogram(reservoir_size=4)
        for _ in range(100):
            hist.record(0.001)
        for _ in range(4):
            hist.record(1.0)
        # After wraparound only the four 1.0s samples remain, so the
        # median must ignore the hundred earlier fast queries.
        assert hist.percentile(50) == 1.0

    def test_percentile_clamped_at_zero_and_hundred(self):
        hist = LatencyHistogram()
        samples = [0.5, 0.1, 0.9, 0.3]
        for s in samples:
            hist.record(s)
        assert hist.percentile(0) == min(samples)
        assert hist.percentile(100) == max(samples)
        # Out-of-range ranks clamp rather than index-error.
        assert hist.percentile(-50) == min(samples)
        assert hist.percentile(250) == max(samples)

    def test_percentile_empty_reservoir(self):
        assert LatencyHistogram().percentile(95) == 0.0

    def test_snapshot_exports_buckets_and_total(self):
        hist = LatencyHistogram()
        hist.record(0.0002)   # second bucket (le 0.00025)
        hist.record(0.003)    # le 0.005
        hist.record(500.0)    # open-ended overflow bucket
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["total_seconds"] == round(0.0002 + 0.003 + 500.0, 6)
        buckets = snap["buckets"]
        assert len(buckets) == len(BUCKET_EDGES) + 1
        by_edge = dict((edge, count) for edge, count in buckets)
        assert by_edge[0.00025] == 1
        assert by_edge[0.005] == 1
        # The final bucket is open-ended: its bound is None.
        assert buckets[-1] == [None, 1]
        assert sum(count for _, count in buckets) == 3

    def test_snapshot_percentiles_agree_with_percentile(self):
        hist = LatencyHistogram()
        for i in range(1, 101):
            hist.record(i / 1000.0)
        snap = hist.snapshot()
        assert snap["p50_ms"] == round(hist.percentile(50) * 1000, 3)
        assert snap["p95_ms"] == round(hist.percentile(95) * 1000, 3)


# ----------------------------------------------------------------------
# EngineStats
# ----------------------------------------------------------------------
class TestEngineStats:
    def test_fanout_record_resets_on_shard_count_change(self):
        stats = EngineStats()
        stats.observe_fanout("g", [0.1, 0.2, 0.3])
        stats.observe_fanout("g", [0.1, 0.2, 0.3])
        rec = stats.snapshot()["sharding"]["g"]
        assert rec["fanouts"] == 2
        assert rec["shards"] == 3
        # Re-registering the graph with a different shard count starts
        # a fresh record -- stale per-shard totals would be meaningless.
        stats.observe_fanout("g", [0.5, 0.5])
        rec = stats.snapshot()["sharding"]["g"]
        assert rec["fanouts"] == 1
        assert rec["shards"] == 2
        assert rec["total_seconds"] == [0.5, 0.5]

    def test_fanout_skew_tracking(self):
        stats = EngineStats()
        stats.observe_fanout("g", [1.0, 1.0, 4.0])
        rec = stats.snapshot()["sharding"]["g"]
        assert rec["last_skew"] == 2.0
        assert rec["max_skew"] == 2.0
        stats.observe_fanout("g", [1.0, 1.0, 1.0])
        rec = stats.snapshot()["sharding"]["g"]
        assert rec["last_skew"] == 1.0
        assert rec["max_skew"] == 2.0

    def test_snapshot_reports_recent_and_lifetime_throughput(self):
        stats = EngineStats()
        for _ in range(10):
            stats.observe("search", 0.001)
        snap = stats.snapshot()
        assert snap["throughput_per_second"] > 0
        # All ten completions happened inside the recent window, and
        # the window is clamped to the (tiny) uptime, so the recent
        # rate is at least the lifetime rate here.
        assert snap["throughput_recent_per_second"] >= \
            snap["throughput_per_second"]

    def test_recent_throughput_drops_stale_completions(self):
        stats = EngineStats()
        stats.observe("search", 0.001)
        # Backdate the completion beyond the window; the next snapshot
        # must prune it, while lifetime counters keep it.
        stats._completions[0] -= RECENT_WINDOW_SECONDS + 10
        stats.started_at -= RECENT_WINDOW_SECONDS + 10
        snap = stats.snapshot()
        assert snap["throughput_recent_per_second"] == 0.0
        assert snap["latency"]["search"]["count"] == 1

    def test_snapshot_thread_safe_under_concurrent_observe(self):
        stats = EngineStats()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                stats.observe("search", (i % 50) / 1000.0)
                stats.count("queries")
                stats.observe_fanout("g", [0.001, 0.002])
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    snap = stats.snapshot()
                    hist = snap["latency"].get("search")
                    if hist is not None:
                        # A torn histogram would break this invariant.
                        assert sum(c for _, c in hist["buckets"]) == \
                            hist["count"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(timeout=10)
        stop_timer.cancel()
        assert not errors
        snap = stats.snapshot()
        assert snap["counters"]["queries"] == \
            snap["latency"]["search"]["count"]
