"""Tests for the planted-partition (LFR-style) generator."""

import pytest

from repro.datasets.lfr import generate_planted_partition
from repro.graph.validation import validate_graph


class TestGenerator:
    def test_shape_and_ground_truth(self):
        graph, truth = generate_planted_partition(n=120, communities=4,
                                                  seed=1)
        assert graph.vertex_count == 120
        covered = sorted(v for members in truth.values() for v in members)
        assert covered == list(graph.vertices())
        assert len(truth) == 4

    def test_deterministic(self):
        a, _ = generate_planted_partition(n=80, seed=5)
        b, _ = generate_planted_partition(n=80, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_valid_graph(self):
        graph, _ = generate_planted_partition(n=100, seed=2)
        validate_graph(graph)

    def test_keywords_per_community(self):
        graph, truth = generate_planted_partition(
            n=60, communities=3, keywords_per_community=4, seed=3)
        for c, members in truth.items():
            expected = {"topic{}-{}".format(c, i) for i in range(4)}
            for v in members:
                assert expected <= graph.keywords(v)

    def test_keywords_disabled(self):
        graph, _ = generate_planted_partition(n=40, communities=2,
                                              keywords_per_community=0,
                                              seed=1)
        assert graph.keywords(0) == {"common"}

    def test_mixing_parameter_controls_separation(self):
        """Lower mu -> higher internal edge fraction (the knob works)."""
        def internal_fraction(mu):
            graph, truth = generate_planted_partition(
                n=240, communities=6, avg_degree=10, mu=mu, seed=11)
            member_of = {}
            for c, members in truth.items():
                for v in members:
                    member_of[v] = c
            internal = sum(1 for u, v in graph.edges()
                           if member_of[u] == member_of[v])
            return internal / graph.edge_count

        assert internal_fraction(0.05) > internal_fraction(0.6) + 0.2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_planted_partition(mu=1.5)
        with pytest.raises(ValueError):
            generate_planted_partition(n=2, communities=5)

    def test_cd_difficulty_increases_with_mu(self):
        """End-to-end: label propagation recovers easy (mu=0.05) much
        better than hard (mu=0.5) mixtures."""
        from repro.algorithms.label_propagation import label_propagation
        from repro.analysis.ground_truth import partition_f1

        def score(mu):
            graph, truth = generate_planted_partition(
                n=180, communities=6, avg_degree=10, mu=mu, seed=7)
            found = label_propagation(graph, seed=3)
            return partition_f1(found, truth.values())

        assert score(0.05) > score(0.5)
