"""Tests for triangle-connected k-truss community search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.truss_search import truss_community_search
from repro.core.ktruss import truss_decomposition
from repro.util.errors import QueryError

from conftest import build_graph, random_graphs


def _bowtie():
    """Two triangles sharing vertex 2 (the classic truss showcase)."""
    return build_graph(5, [(0, 1), (1, 2), (0, 2),
                           (2, 3), (3, 4), (2, 4)])


class TestTrussCommunitySearch:
    def test_bowtie_gives_two_communities(self):
        """The shared vertex belongs to TWO 3-truss communities; plain
        k-core would merge them -- this is the point of the model."""
        g = _bowtie()
        communities = truss_community_search(g, 2, 3)
        assert len(communities) == 2
        member_sets = sorted(sorted(c.vertices) for c in communities)
        assert member_sets == [[0, 1, 2], [2, 3, 4]]

    def test_non_central_vertex_gets_one(self):
        g = _bowtie()
        communities = truss_community_search(g, 0, 3)
        assert len(communities) == 1
        assert sorted(communities[0].vertices) == [0, 1, 2]

    def test_k4_is_one_community(self):
        g = build_graph(4, [(i, j) for i in range(4) for j in range(i)])
        communities = truss_community_search(g, 0, 4)
        assert len(communities) == 1
        assert communities[0].vertices == frozenset(range(4))

    def test_no_community_when_truss_too_small(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        assert truss_community_search(g, 0, 3) == []

    def test_k_below_two_rejected(self):
        with pytest.raises(QueryError):
            truss_community_search(_bowtie(), 0, 1)

    def test_unknown_vertex(self):
        with pytest.raises(QueryError):
            truss_community_search(_bowtie(), 50, 3)

    def test_precomputed_truss_reused(self):
        g = _bowtie()
        truss = truss_decomposition(g)
        a = truss_community_search(g, 2, 3, truss=truss)
        b = truss_community_search(g, 2, 3)
        assert {c.vertices for c in a} == {c.vertices for c in b}

    def test_method_and_metadata(self):
        c = truss_community_search(_bowtie(), 0, 3)[0]
        assert c.method == "k-truss"
        assert c.query_vertices == (0,)
        assert c.k == 3

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(max_n=14, max_m=45), st.integers(3, 5))
    def test_edges_meet_truss_threshold(self, g, k):
        """Property: every edge inside a returned community has truss
        number >= k in the original graph."""
        truss = truss_decomposition(g)
        for q in range(min(g.vertex_count, 4)):
            for community in truss_community_search(g, q, k, truss=truss):
                assert q in community
                # q's community edges are all k-truss edges.
                for u, v in community.induced_edges():
                    key = (u, v) if u < v else (v, u)
                    # Edges between community members that are not part
                    # of the truss bundle may exist; the defining edges
                    # are those adjacent to triangles. At minimum q's
                    # incident community edges that seeded the search
                    # must qualify.
                for u in g.neighbors(q):
                    if u in community:
                        key = (min(q, u), max(q, u))
                        if truss.get(key, 0) >= k:
                            break
                else:
                    pytest.fail("no strong edge at q")
