"""Tests for the plug-in registry (the Section 3.1 API)."""

import pytest

from repro.algorithms.registry import (
    cd_algorithm,
    cs_algorithm,
    get_cd_algorithm,
    get_cs_algorithm,
    list_cd_algorithms,
    list_cs_algorithms,
    register_cd_algorithm,
    register_cs_algorithm,
)
from repro.core.community import Community
from repro.util.errors import UnknownAlgorithmError

from conftest import build_graph


class TestBuiltins:
    def test_builtin_cs_algorithms_present(self):
        names = list_cs_algorithms()
        for expected in ("acq", "acq-inc-s", "acq-inc-t", "global",
                         "local", "k-truss", "codicil", "steiner",
                         "atc"):
            assert expected in names

    def test_atc_adapter_runs(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        result = get_cs_algorithm("atc")(dblp_small, q, 3)
        if result:  # feasible for the fixture seed
            assert q in result[0]
            assert result[0].method == "ATC"

    def test_builtin_cd_algorithms_present(self):
        names = list_cd_algorithms()
        for expected in ("codicil", "newman-girvan", "label-propagation"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_cs_algorithm("ACQ").name == "acq"
        assert get_cd_algorithm("CODICIL").name == "codicil"

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(UnknownAlgorithmError) as exc:
            get_cs_algorithm("no-such-thing")
        assert "acq" in str(exc.value)

    def test_builtin_adapters_run(self, fig5):
        a = fig5.id_of("A")
        for name in ("acq", "acq-inc-s", "acq-inc-t", "global", "local"):
            result = get_cs_algorithm(name)(fig5, a, 2)
            assert result, name
            assert a in result[0]

    def test_cd_adapters_run(self, fig5):
        for name in ("newman-girvan", "label-propagation"):
            communities = get_cd_algorithm(name)(fig5)
            covered = {v for c in communities for v in c}
            assert covered == set(fig5.vertices())


class TestPluginRegistration:
    def test_register_and_call_custom_cs(self, fig5):
        def my_algo(graph, q, k, keywords=None):
            return [Community(graph, {q}, method="Mine",
                              query_vertices=(q,), k=k)]
        register_cs_algorithm("test-mine", my_algo, "demo plug-in")
        try:
            algo = get_cs_algorithm("test-mine")
            assert algo.description == "demo plug-in"
            result = algo(fig5, 0, 2)
            assert result[0].method == "Mine"
        finally:
            from repro.algorithms import registry
            registry._CS.pop("test-mine", None)

    def test_duplicate_registration_rejected(self):
        def noop(graph, q, k, keywords=None):
            return []
        register_cs_algorithm("test-dup", noop)
        try:
            with pytest.raises(ValueError):
                register_cs_algorithm("test-dup", noop)
            register_cs_algorithm("test-dup", noop, overwrite=True)
        finally:
            from repro.algorithms import registry
            registry._CS.pop("test-dup", None)

    def test_decorator_forms(self):
        from repro.algorithms import registry

        @cs_algorithm("test-deco-cs")
        def my_cs(graph, q, k, keywords=None):
            return []

        @cd_algorithm("test-deco-cd")
        def my_cd(graph):
            return []

        try:
            assert "test-deco-cs" in list_cs_algorithms()
            assert "test-deco-cd" in list_cd_algorithms()
        finally:
            registry._CS.pop("test-deco-cs", None)
            registry._CD.pop("test-deco-cd", None)

    def test_info_repr(self):
        info = get_cs_algorithm("acq")
        assert "acq" in repr(info)
        assert info.kind == "cs"
