"""Shared fixtures and hypothesis strategies for the test suite."""

import pytest
from hypothesis import strategies as st

from repro.datasets import (
    DblpConfig,
    figure5_graph,
    generate_dblp_graph,
    karate_club_graph,
)
from repro.graph.attributed import AttributedGraph


@pytest.fixture
def fig5():
    """The paper's running example graph (Figure 5(a))."""
    return figure5_graph()


@pytest.fixture
def karate():
    """Zachary's karate club with faction keywords."""
    return karate_club_graph()


@pytest.fixture(scope="session")
def dblp_small():
    """A small synthetic DBLP graph shared across tests (read-only)."""
    return generate_dblp_graph(DblpConfig(n_authors=400, n_communities=8,
                                          seed=13))


@pytest.fixture(scope="session")
def dblp_medium():
    """The default 2,000-author synthetic DBLP graph (read-only)."""
    return generate_dblp_graph()


@pytest.fixture
def fault_plan():
    """Factory: a seeded fault-injection plan from a spec string
    (``'seed=7;kill:shard@0.05'`` -- see repro.engine.faults), ready
    to hand to ``CExplorer(faults=...)`` / ``QueryEngine(faults=...)``.
    """
    from repro.engine.faults import FaultPlan
    return FaultPlan.from_spec


def build_graph(n, edge_pairs, keyword_map=None):
    """Build an AttributedGraph from raw data (test helper)."""
    g = AttributedGraph()
    for i in range(n):
        kws = keyword_map.get(i, ()) if keyword_map else ()
        g.add_vertex("n{}".format(i), kws)
    for u, v in edge_pairs:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


@st.composite
def random_graphs(draw, max_n=24, max_m=72, keywords=None):
    """Hypothesis strategy: a small random AttributedGraph.

    ``keywords`` is an optional list of keyword symbols; each vertex
    gets a random subset.
    """
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=0, max_size=m))
    keyword_map = {}
    if keywords:
        for v in range(n):
            keyword_map[v] = draw(st.sets(st.sampled_from(keywords)))
    return build_graph(n, pairs, keyword_map)
