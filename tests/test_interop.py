"""Tests for NetworkX interoperability."""

import networkx as nx
import pytest
from hypothesis import given

from repro.graph.interop import from_networkx, to_networkx
from repro.util.errors import GraphFormatError

from conftest import random_graphs


class TestToNetworkx:
    def test_fig5_roundtrip_structure(self, fig5):
        nxg = to_networkx(fig5)
        assert nxg.number_of_nodes() == 10
        assert nxg.number_of_edges() == 11
        assert nxg.nodes[fig5.id_of("A")]["label"] == "A"
        assert nxg.nodes[fig5.id_of("A")]["keywords"] == ["w", "x", "y"]

    def test_core_numbers_agree(self, fig5):
        from repro.core.kcore import core_decomposition
        nxg = to_networkx(fig5)
        ours = core_decomposition(fig5)
        theirs = nx.core_number(nxg)
        assert all(theirs[v] == ours[v] for v in fig5.vertices())

    @given(random_graphs(keywords=list("ab")))
    def test_roundtrip_property(self, g):
        back = from_networkx(to_networkx(g))
        assert back.vertex_count == g.vertex_count
        assert sorted(back.edges()) == sorted(g.edges())
        for v in g.vertices():
            assert back.keywords(v) == g.keywords(v)


class TestFromNetworkx:
    def test_arbitrary_node_ids(self):
        nxg = nx.Graph()
        nxg.add_edge("alice", "bob")
        nxg.add_node("carol", keywords=["x"])
        g = from_networkx(nxg)
        assert g.vertex_count == 3
        assert g.has_label("alice")
        assert g.keywords(g.id_of("carol")) == {"x"}
        assert g.has_edge(g.id_of("alice"), g.id_of("bob"))

    def test_label_attribute_wins(self):
        nxg = nx.Graph()
        nxg.add_node(0, label="Jim Gray")
        g = from_networkx(nxg)
        assert g.has_label("Jim Gray")

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.edge_count == 1

    def test_directed_rejected(self):
        with pytest.raises(GraphFormatError):
            from_networkx(nx.DiGraph())

    def test_multigraph_rejected(self):
        with pytest.raises(GraphFormatError):
            from_networkx(nx.MultiGraph())

    def test_karate_through_interop(self):
        g = from_networkx(nx.karate_club_graph())
        assert g.vertex_count == 34
        assert g.edge_count == 78
