"""Tests for the error hierarchy and RNG helper."""

import random

import pytest

from repro.util.errors import (
    CExplorerError,
    GraphFormatError,
    QueryError,
    UnknownAlgorithmError,
    UnknownVertexError,
)
from repro.util.rng import make_rng


class TestErrors:
    def test_all_derive_from_base(self):
        for exc_type in (GraphFormatError, QueryError, UnknownVertexError,
                         UnknownAlgorithmError):
            assert issubclass(exc_type, CExplorerError)

    def test_unknown_vertex_message_and_payload(self):
        err = UnknownVertexError("jim gray")
        assert "jim gray" in str(err)
        assert err.vertex == "jim gray"

    def test_unknown_vertex_is_keyerror(self):
        with pytest.raises(KeyError):
            raise UnknownVertexError(42)

    def test_query_error_is_valueerror(self):
        with pytest.raises(ValueError):
            raise QueryError("bad k")

    def test_unknown_algorithm_lists_known(self):
        err = UnknownAlgorithmError("mystery", known=["acq", "global"])
        text = str(err)
        assert "mystery" in text
        assert "acq" in text and "global" in text

    def test_unknown_algorithm_without_known(self):
        assert "registered" not in str(UnknownAlgorithmError("x"))


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random()
                                                 for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_random_instance(self):
        rng = random.Random(0)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert isinstance(make_rng(None), random.Random)

    def test_string_seeds_supported(self):
        a, b = make_rng("profile:x"), make_rng("profile:x")
        assert a.random() == b.random()
