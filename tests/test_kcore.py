"""Tests for k-core decomposition and peeling.

NetworkX (which ships its own core-number implementation) serves as an
independent oracle; it is used *only* in tests, never in the library.
"""

import networkx as nx
import pytest
from hypothesis import given

from repro.core.kcore import (
    connected_k_core,
    core_decomposition,
    k_core,
    max_core_number,
    peel_to_min_degree,
)

from conftest import build_graph, random_graphs


def _to_nx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(g.vertices())
    nxg.add_edges_from(g.edges())
    return nxg


class TestCoreDecomposition:
    def test_figure5_core_numbers(self, fig5):
        """The exact table of Figure 5(b)."""
        core = core_decomposition(fig5)
        expected = {"A": 3, "B": 3, "C": 3, "D": 3, "E": 2,
                    "F": 1, "G": 1, "H": 1, "I": 1, "J": 0}
        got = {fig5.label(v): core[v] for v in fig5.vertices()}
        assert got == expected

    def test_empty_graph(self):
        g = build_graph(0, [])
        assert core_decomposition(g) == []
        assert max_core_number(g) == 0

    def test_single_vertex(self):
        g = build_graph(1, [])
        assert core_decomposition(g) == [0]

    def test_clique(self):
        g = build_graph(5, [(i, j) for i in range(5) for j in range(i)])
        assert core_decomposition(g) == [4] * 5
        assert max_core_number(g) == 4

    def test_star(self):
        g = build_graph(6, [(0, i) for i in range(1, 6)])
        assert core_decomposition(g) == [1] * 6

    def test_karate_max_core(self, karate):
        assert max_core_number(karate) == 4

    @given(random_graphs(max_n=30, max_m=120))
    def test_matches_networkx(self, g):
        """Property: agrees with NetworkX's core_number on any graph."""
        ours = core_decomposition(g)
        theirs = nx.core_number(_to_nx(g))
        assert {v: ours[v] for v in g.vertices()} == theirs

    @given(random_graphs())
    def test_kcore_definition(self, g):
        """Property: inside H_k every vertex has >= k neighbours in H_k,
        and no vertex outside H_k could be added (maximality via the
        peeling fixpoint)."""
        core = core_decomposition(g)
        k = max(core) if core else 0
        members = k_core(g, k)
        for v in members:
            inside = sum(1 for u in g.neighbors(v) if u in members)
            assert inside >= k

    @given(random_graphs())
    def test_cores_are_nested(self, g):
        """Property: the (k+1)-core is contained in the k-core."""
        kmax = max_core_number(g)
        previous = set(g.vertices())
        for k in range(kmax + 1):
            current = k_core(g, k)
            assert current <= previous
            previous = current


class TestKCoreSubsets:
    def test_k_core_negative_k(self, fig5):
        with pytest.raises(ValueError):
            k_core(fig5, -1)

    def test_k_core_vertices_fig5(self, fig5):
        names = {fig5.label(v) for v in k_core(fig5, 3)}
        assert names == {"A", "B", "C", "D"}
        names2 = {fig5.label(v) for v in k_core(fig5, 2)}
        assert names2 == {"A", "B", "C", "D", "E"}

    def test_connected_k_core_fig5(self, fig5):
        got = connected_k_core(fig5, fig5.id_of("A"), 2)
        assert {fig5.label(v) for v in got} == {"A", "B", "C", "D", "E"}

    def test_connected_k_core_absent(self, fig5):
        assert connected_k_core(fig5, fig5.id_of("J"), 1) is None

    def test_connected_k_core_k0_is_component(self, fig5):
        got = connected_k_core(fig5, fig5.id_of("H"), 0)
        assert {fig5.label(v) for v in got} == {"H", "I"}

    def test_connected_k_core_separate_components(self, fig5):
        got = connected_k_core(fig5, fig5.id_of("H"), 1)
        assert {fig5.label(v) for v in got} == {"H", "I"}


class TestPeeling:
    def test_peel_keeps_k_core(self, fig5):
        alive = peel_to_min_degree(fig5, fig5.vertices(), 3)
        assert {fig5.label(v) for v in alive} == {"A", "B", "C", "D"}

    def test_peel_protect_failure_returns_none(self, fig5):
        assert peel_to_min_degree(fig5, fig5.vertices(), 3,
                                  protect=(fig5.id_of("E"),)) is None

    def test_peel_protect_outside_candidates(self, fig5):
        assert peel_to_min_degree(fig5, [0, 1], 0,
                                  protect=(9,)) is None

    def test_peel_on_subset(self, fig5):
        # Restricted to {A, B, C}, everyone has degree 2.
        ids = [fig5.id_of(x) for x in "ABC"]
        alive = peel_to_min_degree(fig5, ids, 2)
        assert alive == set(ids)
        assert peel_to_min_degree(fig5, ids, 3) == set()

    @given(random_graphs())
    def test_peel_equals_kcore_on_full_graph(self, g):
        """Property: peeling the whole graph to min degree k gives H_k."""
        kmax = max_core_number(g)
        for k in range(kmax + 2):
            assert peel_to_min_degree(g, g.vertices(), k) == k_core(g, k)

    @given(random_graphs())
    def test_peel_monotone_in_candidates(self, g):
        """Property: a larger candidate set never yields a smaller core."""
        n = g.vertex_count
        half = set(range(n // 2))
        small = peel_to_min_degree(g, half, 2)
        large = peel_to_min_degree(g, g.vertices(), 2)
        assert small <= large
