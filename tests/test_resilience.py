"""The fault-tolerant execution plane: chaos properties.

The load-bearing claim: under a seeded fault plan, every query either
returns a result **byte-identical** to fault-free execution (retries,
hedges and substrate fallbacks absorbed the fault) or fails fast with
a stable error from the registered taxonomy -- and no future is ever
left hanging.  Plus the machinery itself: deterministic fault plans,
retry backoff, circuit-breaker demotion/re-promotion, payload
quarantine, cooperative worker deadlines, and the health/readiness
serving surfaces.
"""

import json
import threading
import time

import pytest

from repro.datasets import DblpConfig, generate_dblp_graph
from repro.engine import backends
from repro.engine.faults import (
    FaultPlan,
    FaultSpecError,
    corrupt_blob,
)
from repro.engine.retry import (
    POLICIES,
    RETRYABLE,
    CircuitBreaker,
    RetryPolicy,
)
from repro.explorer.cexplorer import CExplorer
from repro.util.errors import (
    CExplorerError,
    FaultInjectedError,
    JobPayloadError,
    PayloadCorruptionError,
    QueryTimeoutError,
    WorkerKilledError,
)

VERTICES = ("jim gray", "michael stonebraker", "michael l. brodie",
            "bruce g. lindsay", "gerhard weikum")

_GRAPH = None


def _graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = generate_dblp_graph(
            DblpConfig(n_authors=300, n_communities=6, seed=7))
    return _GRAPH


def _explorer(shards=1, backend="thread", **kwargs):
    explorer = CExplorer(backend=backend, **kwargs)
    explorer.add_graph("dblp", _graph(), shards=shards)
    return explorer


def _canon(communities):
    return json.dumps([c.to_dict() for c in communities],
                      sort_keys=True)


def _resilience(explorer):
    return explorer.engine.snapshot()["resilience"]


# ----------------------------------------------------------------------
# fault plans: grammar, determinism, draws
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=7;kill:shard@0.05;delay:full_query@0.5=0.02;"
            "pool_break:*@1.0#3")
        assert plan.seed == 7
        assert [r.kind for r in plan.rules] == \
            ["kill", "delay", "pool_break"]
        assert plan.rules[1].param == 0.02
        assert plan.rules[2].limit == 3
        again = FaultPlan.from_spec(plan.to_spec())
        assert again.to_spec() == plan.to_spec()

    def test_json_spec(self):
        plan = FaultPlan.from_spec(json.dumps({
            "seed": 11,
            "rules": [{"kind": "kill", "target": "shard",
                       "rate": 0.5, "limit": 2}],
        }))
        assert plan.seed == 11
        assert plan.rules[0].limit == 2

    def test_empty_spec_is_no_plan(self):
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec("   ") is None

    @pytest.mark.parametrize("bad", [
        "explode:shard@0.5",      # unknown kind
        "kill:shard@1.5",         # rate out of range
        "kill:shard",             # no rate
        "notarule",               # no structure
        "{not json",              # bad JSON
        "seed=x;kill:shard@0.5",  # bad seed
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(bad)

    def test_from_env(self):
        plan = FaultPlan.from_env(
            {"REPRO_FAULT_PLAN": "seed=3;kill:shard@1.0"})
        assert plan.seed == 3
        assert FaultPlan.from_env({}) is None

    def test_draws_are_deterministic(self):
        spec = "seed=42;kill:shard@0.3;delay:shard@0.2=0.01"
        a = FaultPlan.from_spec(spec)
        b = FaultPlan.from_spec(spec)
        assert [a.draw("shard") for _ in range(50)] == \
            [b.draw("shard") for _ in range(50)]
        different = FaultPlan.from_spec(
            "seed=43;kill:shard@0.3;delay:shard@0.2=0.01")
        assert [a.draw("shard") for _ in range(50)] != \
            [different.draw("shard") for _ in range(50)]

    def test_rates_and_limits(self):
        always = FaultPlan.from_spec("kill:shard@1.0")
        assert all(always.draw("shard") == [("kill", None)]
                   for _ in range(10))
        never = FaultPlan.from_spec("kill:shard@0.0")
        assert all(never.draw("shard") is None for _ in range(10))
        capped = FaultPlan.from_spec("kill:shard@1.0#3")
        fired = [capped.draw("shard") for _ in range(10)]
        assert sum(1 for f in fired if f) == 3
        assert capped.injected("kill") == 3

    def test_target_pattern_scopes_ops(self):
        plan = FaultPlan.from_spec("kill:full_query*@1.0")
        assert plan.draw("full_query")
        assert plan.draw("full_query_batch")
        assert plan.draw("shard") is None

    def test_corrupt_blob_always_detectable(self):
        import pickle
        blob = pickle.dumps({"a": 1, "b": [2, 3]})
        mangled = corrupt_blob(blob)
        assert mangled != blob
        with pytest.raises(Exception):
            pickle.loads(mangled)


# ----------------------------------------------------------------------
# retry policy + circuit breaker mechanics
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_caps_and_jitters_deterministically(self):
        policy = RetryPolicy(attempts=5, base_delay=0.01,
                             max_delay=0.05)
        delays = [policy.backoff(n, token="shard:0")
                  for n in range(1, 6)]
        assert delays == [policy.backoff(n, token="shard:0")
                          for n in range(1, 6)]
        # capped exponential: never above max_delay * 1.5 (jitter)
        assert all(d <= 0.05 * 1.5 for d in delays)
        assert delays[0] < delays[2]
        assert delays != [policy.backoff(n, token="shard:1")
                          for n in range(1, 6)]

    def test_job_class_policies(self):
        assert POLICIES["shard"].hedge
        assert POLICIES["full_query"].hedge
        assert not POLICIES["full_query_batch"].hedge
        assert not POLICIES["detect"].hedge
        assert all(issubclass(exc, CExplorerError) for exc in RETRYABLE)


class TestCircuitBreaker:
    def test_opens_probes_and_promotes(self):
        breaker = CircuitBreaker("process", failure_threshold=3,
                                 cooldown=0.05)
        assert breaker.allow() is True
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        time.sleep(0.06)
        assert breaker.allow() == "probe"
        # only one probe in flight
        assert breaker.allow() is False
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True
        doc = breaker.snapshot()
        assert doc["opens"] == 1
        assert doc["promotions"] == 1
        assert doc["degraded_seconds"] > 0

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker("process", failure_threshold=2,
                                 cooldown=0.05)
        breaker.record_failure()
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow() == "probe"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False

    def test_success_resets_consecutive_count(self):
        # sparse failures (well under the windowed error rate) never
        # open the breaker, however many accumulate in total
        breaker = CircuitBreaker("process", failure_threshold=3)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_success()
            breaker.record_success()
            breaker.record_success()
        assert breaker.state == "closed"

    def test_windowed_error_rate_opens_without_consecutive(self):
        breaker = CircuitBreaker("process", failure_threshold=3,
                                 window=8, error_rate=0.5)
        for _ in range(8):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == "open"


# ----------------------------------------------------------------------
# cooperative worker deadlines
# ----------------------------------------------------------------------

class TestWorkerDeadlines:
    def test_check_deadline_raises_past_wall_deadline(self):
        backends.set_job_deadline(time.time() - 1.0)
        try:
            with pytest.raises(QueryTimeoutError):
                backends.check_deadline()
        finally:
            backends.set_job_deadline(None)
        backends.check_deadline()  # no deadline: no-op

    def test_expired_deadline_ships_into_process_worker(self):
        pool = backends.ProcessBackend(workers=1)
        try:
            future = pool.submit_job(backends.shard_full_query_job,
                                     ("k", b"x", "acq", "v", 4, None,
                                      None),
                                     deadline=time.time() - 1.0)
            with pytest.raises(QueryTimeoutError):
                pool.job_result(future, 10.0)
        finally:
            pool.close()


# ----------------------------------------------------------------------
# retries absorb injected faults (identity preserved)
# ----------------------------------------------------------------------

class TestRetryAbsorption:
    def test_thread_fanout_retries_injected_kills(self):
        baseline = _explorer(shards=2)
        expected = [_canon(baseline.search("acq", v, k=3))
                    for v in VERTICES]
        # every shard job's first attempt dies; retries absorb all
        chaotic = _explorer(
            shards=2,
            faults=FaultPlan.from_spec("seed=1;kill:shard@1.0#4"))
        got = [_canon(chaotic.search("acq", v, k=3))
               for v in VERTICES]
        assert got == expected
        counters = _resilience(chaotic)["counters"]
        assert counters["retries"] >= 4
        assert counters["faults_injected"] == 4

    def test_process_full_query_retries_injected_kills(self):
        baseline = _explorer()
        expected = _canon(baseline.search("acq", VERTICES[0], k=3))
        chaotic = _explorer(
            backend="process",
            faults=FaultPlan.from_spec("seed=2;kill:full_query@1.0#2"))
        try:
            assert _canon(chaotic.search("acq", VERTICES[0], k=3)) \
                == expected
            counters = _resilience(chaotic)["counters"]
            assert counters["retries"] >= 1
        finally:
            chaotic.engine.shutdown()

    def test_injected_faults_are_one_shot_across_retries(self):
        explorer = _explorer(
            faults=FaultPlan.from_spec("seed=3;error:fanout@1.0"))
        engine = explorer.engine
        runs = []

        def job():
            runs.append(1)
            return "ok"

        # attempt 1 dies to the injected fault *before* the job body;
        # the retry drops the (one-shot) fault and succeeds
        results, _ = engine.map_shards([job], op="fanout")
        assert results == ["ok"]
        assert len(runs) == 1
        assert _resilience(explorer)["counters"]["retries"] >= 1

    def test_exhausted_retries_surface_the_fault(self):
        explorer = _explorer()
        engine = explorer.engine
        attempts = []

        def always_dies():
            attempts.append(1)
            raise WorkerKilledError("this job never survives")

        with pytest.raises(WorkerKilledError):
            engine.map_shards([always_dies], op="fanout")
        # DEFAULT_POLICY gives unknown job classes two attempts
        assert len(attempts) == 2
        counters = _resilience(explorer)["counters"]
        assert counters["retries"] == 1
        assert counters["retry_exhausted"] == 1

    def test_span_fault_fires_inside_named_span(self):
        from repro.engine import tracing
        explorer = _explorer(
            faults=FaultPlan.from_spec("seed=4;error:span:execute@1.0"))
        engine = explorer.engine
        assert tracing._fault_hook is not None
        with pytest.raises(FaultInjectedError):
            engine.execute(lambda: 1, op="probe")
        engine.shutdown()
        # shutdown uninstalls only its own hook
        assert tracing._fault_hook is None


# ----------------------------------------------------------------------
# degradation ladder: process -> thread -> promotion back
# ----------------------------------------------------------------------

class TestBreakerDegradation:
    def test_pool_breaks_demote_then_probe_promotes(self):
        explorer = _explorer(
            backend="process",
            faults=FaultPlan.from_spec(
                "seed=5;pool_break:full_query@1.0#3"))
        engine = explorer.engine
        breaker = engine.resilience.breakers["process"]
        breaker.cooldown = 0.2
        baseline = _explorer()
        expected = {v: _canon(baseline.search("acq", v, k=3))
                    for v in VERTICES}
        try:
            # three broken dispatches: every query still answers
            # (thread/inline fallback), then the breaker is open
            for v in VERTICES[:3]:
                assert _canon(explorer.search("acq", v, k=3)) \
                    == expected[v]
            assert breaker.state == "open"
            # while open: the process pool is skipped, results intact
            assert _canon(explorer.search("acq", VERTICES[3], k=3)) \
                == expected[VERTICES[3]]
            assert _resilience(explorer)["degraded"]
            # after the cooldown the probe fan-out re-promotes
            time.sleep(0.25)
            assert _canon(explorer.search("acq", VERTICES[4], k=3)) \
                == expected[VERTICES[4]]
            assert breaker.state == "closed"
            doc = breaker.snapshot()
            assert doc["opens"] == 1
            assert doc["promotions"] == 1
            assert not _resilience(explorer)["degraded"]
        finally:
            engine.shutdown()

    def test_unpicklable_job_runs_inline_pool_intact(self):
        explorer = _explorer(backend="process")
        engine = explorer.engine
        try:
            token = object()  # pickles fine; the lambda below won't

            def job(value=lambda: token):
                return "ran"

            results = engine.map_shard_jobs(
                [(job, (lambda: 1,))], op="probe_payload")
            assert results == ["ran"]
            doc = engine.snapshot()
            assert doc.get("process_fallbacks", 0) == 0
            assert engine.resilience.breakers["process"].state \
                == "closed"
        finally:
            engine.shutdown()


# ----------------------------------------------------------------------
# corruption: quarantine, not breaker food
# ----------------------------------------------------------------------

class TestCorruptionQuarantine:
    def test_corrupt_payload_quarantined_and_query_recovers(self):
        baseline = _explorer()
        expected = _canon(baseline.search("acq", VERTICES[0], k=3))
        explorer = _explorer(
            backend="process",
            faults=FaultPlan.from_spec(
                "seed=6;corrupt:full_query@1.0#1"))
        engine = explorer.engine
        try:
            assert _canon(explorer.search("acq", VERTICES[0], k=3)) \
                == expected
            doc = _resilience(explorer)
            assert doc["counters"]["quarantines"] == 1
            assert doc["quarantined"] == 1
            # corruption must NOT have condemned the substrate
            assert doc["breakers"]["process"]["state"] == "closed"
        finally:
            engine.shutdown()

    def test_discard_payload_drops_cached_copy(self):
        explorer = _explorer()
        engine = explorer.engine
        payload, _ = engine.indexes.full_payload("dblp")
        assert engine.indexes.discard_payload(payload.key)
        assert not engine.indexes.discard_payload(payload.key)


# ----------------------------------------------------------------------
# hedging
# ----------------------------------------------------------------------

class TestHedging:
    def test_straggler_gets_hedged_duplicate(self):
        explorer = _explorer(
            backend="process",
            faults=FaultPlan.from_spec(
                "seed=8;delay:full_query@1.0=0.4#1"))
        engine = explorer.engine
        try:
            # warm the latency history so p95 is trusted (and tiny)
            for _ in range(25):
                engine.stats.observe("full_query", 0.002)
            start = time.perf_counter()
            explorer.search("acq", VERTICES[0], k=3)
            elapsed = time.perf_counter() - start
            counters = _resilience(explorer)["counters"]
            assert counters["hedges"] == 1
            assert counters["hedges_won"] \
                + counters["hedges_lost"] == 1
            # the hedge answered well before the 0.4s delay resolved
            assert elapsed < 0.4
        finally:
            engine.shutdown()

    def test_batch_jobs_never_hedge(self):
        assert not POLICIES["full_query_batch"].hedge


# ----------------------------------------------------------------------
# blast radius: batch member isolation
# ----------------------------------------------------------------------

class TestBatchMemberIsolation:
    def test_failed_member_retried_solo_group_survives(self):
        from repro.engine.batching import QueryBatcher
        baseline = _explorer()
        queries = [("acq", v, 3) for v in VERTICES[:4]]
        expected = [_canon(baseline.search(a, v, k=k))
                    for a, v, k in queries]
        explorer = _explorer(
            backend="process",
            faults=FaultPlan.from_spec("seed=9;kill:batch_member@0.5"))
        batcher = QueryBatcher(explorer, window=0.02)
        try:
            futures = [batcher.submit(a, v, k=k)
                       for a, v, k in queries]
            got = [_canon(f.result(60.0)) for f in futures]
            assert got == expected
            counters = _resilience(explorer)["counters"]
            assert counters["batch_member_retries"] >= 1
        finally:
            batcher.close()
            explorer.engine.shutdown()


# ----------------------------------------------------------------------
# the chaos property: 5% worker kills, identity or stable failure
# ----------------------------------------------------------------------

class TestChaosProperty:
    def test_seeded_kill_plan_preserves_results_no_hung_futures(self):
        baseline = _explorer(shards=2)
        queries = [("acq", v, k) for v in VERTICES for k in (3, 4)] * 2
        expected = [_canon(baseline.search(a, v, k=k))
                    for a, v, k in queries]
        chaotic = _explorer(
            shards=2,
            faults=FaultPlan.from_spec(
                "seed=13;kill:shard@0.05;delay:shard@0.05=0.005"))
        engine = chaotic.engine
        futures = [engine.search(a, v, k=k, timeout=30.0)
                   for a, v, k in queries]
        identical = 0
        failures = []
        for future, want in zip(futures, expected):
            try:
                got = _canon(future.result(30.0))
            except CExplorerError as exc:
                failures.append(exc)
            else:
                identical += got == want
        # every future resolved one way or the other: nothing hangs
        assert all(f.done() for f in futures)
        assert identical / len(queries) >= 0.99
        for exc in failures:
            assert isinstance(exc, (WorkerKilledError,
                                    QueryTimeoutError))
        doc = _resilience(chaotic)
        assert doc["fault_plan"]["injected"]
        assert doc["counters"]["faults_injected"] > 0


# ----------------------------------------------------------------------
# serving surfaces: /v1/health, /v1/ready, resilience metrics
# ----------------------------------------------------------------------

def _serve(explorer):
    from repro.server.app import make_server
    server = make_server(explorer, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def _get(server, path):
    import urllib.error
    import urllib.request
    url = "http://127.0.0.1:{}{}".format(server.server_address[1],
                                         path)
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestServingSurfaces:
    def test_health_and_ready_endpoints(self):
        explorer = _explorer()
        server = _serve(explorer)
        try:
            status, doc = _get(server, "/v1/health")
            assert status == 200
            assert doc["data"]["status"] == "ok"
            assert doc["data"]["degraded"] is False
            status, doc = _get(server, "/v1/ready")
            assert status == 200
            assert doc["data"]["ready"] is True
        finally:
            server.shutdown()

    def test_ready_flips_to_503_not_ready(self):
        explorer = _explorer()
        server = _serve(explorer)
        try:
            explorer.engine.shutdown()
            status, doc = _get(server, "/v1/ready")
            assert status == 503
            assert doc["error"]["code"] == "not_ready"
            # liveness still answers
            status, _ = _get(server, "/v1/health")
            assert status == 200
        finally:
            server.shutdown()

    def test_metrics_resilience_block_schema(self):
        from repro.engine.retry import ResiliencePlane
        explorer = _explorer()
        doc = explorer.engine.snapshot()["resilience"]
        assert set(doc["counters"]) == set(ResiliencePlane.COUNTER_KEYS)
        assert set(doc["breakers"]) == {"process", "thread"}
        for breaker in doc["breakers"].values():
            assert {"state", "opens", "probes", "promotions",
                    "degraded_seconds"} <= set(breaker)
        assert doc["quarantined"] == 0
        assert doc["degraded"] is False

    def test_prometheus_exports_resilience_series(self):
        from repro.engine.tracing import render_prometheus
        explorer = _explorer(
            faults=FaultPlan.from_spec("seed=10;kill:shard@1.0#1"))
        explorer.search("acq", VERTICES[0], k=3)
        text = render_prometheus(
            {"engine": explorer.engine.snapshot()})
        assert "repro_resilience_events_total" in text
        assert 'repro_breaker_state{backend="process"}' in text
        assert "repro_breaker_degraded_seconds_total" in text
        assert "repro_quarantined_payloads" in text

    def test_engine_busy_queue_makes_not_ready(self):
        explorer = CExplorer(workers=1, max_queue=1)
        explorer.add_graph("dblp", _graph())
        engine = explorer.engine
        release = threading.Event()
        engine.submit(release.wait, op="wedge")   # occupies the worker
        try:
            for _ in range(200):                  # wait for the claim
                if engine._in_flight:
                    break
                time.sleep(0.005)
            engine.submit(release.wait, op="wedge")  # fills the queue
            assert not engine.accepting
        finally:
            release.set()
            engine.shutdown()


# ----------------------------------------------------------------------
# plumbing: env plan pickup, fixture, CLI parsing
# ----------------------------------------------------------------------

class TestInstallation:
    def test_engine_picks_up_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=21;kill:shard@0.1")
        explorer = CExplorer()
        assert explorer.engine.faults is not None
        assert explorer.engine.faults.seed == 21

    def test_explicit_plan_beats_env(self, monkeypatch, fault_plan):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=21;kill:shard@0.1")
        explorer = CExplorer(faults=fault_plan("seed=5;drop:shard@0.2"))
        assert explorer.engine.faults.seed == 5

    def test_fixture_builds_plans(self, fault_plan):
        plan = fault_plan("seed=7;kill:shard@0.05")
        assert isinstance(plan, FaultPlan)

    def test_cli_fault_plan_flag(self, tmp_path, capsys):
        from repro import cli
        graph_path = tmp_path / "g.json"
        from repro.graph.io import write_graph_json
        write_graph_json(_graph(), str(graph_path))
        rc = cli.main(["search", "--graph", str(graph_path),
                       "--vertex", VERTICES[0], "-k", "3",
                       "--fault-plan", "seed=2;kill:shard@1.0#1",
                       "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out
