"""Tests for the comparison-analysis module (Figure 6)."""

from repro.analysis.comparison import ComparisonReport, compare_methods


class TestCompareMethods:
    def test_runs_all_methods(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "local", "acq"))
        assert set(report.results) == {"global", "local", "acq"}
        assert set(report.timings) == {"global", "local", "acq"}
        assert all(t >= 0 for t in report.timings.values())

    def test_failing_method_recorded_empty(self, dblp_small):
        """k-truss with k below 2 raises internally; the report must
        swallow it (per-method error chips, not a crash)."""
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 1, methods=("k-truss",))
        assert report.results["k-truss"] == []

    def test_table_rows_shape(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "acq"))
        rows = report.table_rows()
        assert [r["method"] for r in rows] == ["global", "acq"]
        for row in rows:
            for key in ("communities", "vertices", "edges", "degree",
                        "cpj", "cmf"):
                assert key in row

    def test_fig6_shape_global_biggest(self, dblp_small):
        """The Figure 6(a) size ordering: Global's community is the
        largest; ACQ's is (much) smaller."""
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "local", "acq"))
        rows = {r["method"]: r for r in report.table_rows()}
        assert rows["global"]["vertices"] >= rows["local"]["vertices"]
        assert rows["global"]["vertices"] >= rows["acq"]["vertices"]

    def test_quality_bars_acq_wins(self, dblp_small):
        """The Figure 6(a) bar charts: ACQ tops CPJ and CMF."""
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "local", "acq"))
        bars = report.quality_bars()
        assert bars["acq"]["cpj"] >= bars["global"]["cpj"]
        assert bars["acq"]["cmf"] >= bars["global"]["cmf"]

    def test_overlap_matrix_properties(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "local", "acq"))
        matrix = report.overlap_matrix()
        methods = [m for m, cs in report.results.items() if cs]
        for a in methods:
            assert matrix[(a, a)] == 1.0
            for b in methods:
                assert matrix[(a, b)] == matrix[(b, a)]
                assert 0.0 <= matrix[(a, b)] <= 1.0

    def test_render_text_contains_table(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3, methods=("global",))
        text = report.render_text()
        assert "Method" in text
        assert "CPJ" in text
        assert "Query time" in text

    def test_to_dict_is_json_ready(self, dblp_small):
        import json
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(dblp_small, q, 3,
                                 methods=("global", "acq"))
        doc = report.to_dict()
        json.dumps(doc)  # must not raise
        assert doc["k"] == 3
        assert "table" in doc and "quality" in doc

    def test_keywords_forwarded_to_acq(self, fig5):
        report = compare_methods(fig5, fig5.id_of("A"), 2,
                                 methods=("acq",),
                                 keywords={"w", "x", "y"})
        community = report.results["acq"][0]
        assert community.shared_keywords == {"x", "y"}

    def test_method_params_forwarded(self, dblp_small):
        q = dblp_small.id_of("Jim Gray")
        report = compare_methods(
            dblp_small, q, 3, methods=("local",),
            method_params={"local": {"budget": 25}})
        if report.results["local"]:
            assert len(report.results["local"][0]) <= 25


class TestComparisonReport:
    def test_empty_results_quality_bars(self, fig5):
        report = ComparisonReport(0, 2, {"x": []}, {"x": 0.0})
        assert report.quality_bars() == {"x": {"cpj": 0.0, "cmf": 0.0}}
        assert report.overlap_matrix() == {}
