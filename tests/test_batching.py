"""The cross-query batching layer: identity, grouping, dedup.

The load-bearing property: batched execution is **byte-identical** to
serial execution -- the admission window, single-flight dedup, QIG
grouping and the shared ``batch_full_query_job`` substrate change
where work runs and how often shared state is rebuilt, never a
result.  Property-tested across shard counts and both execution
backends.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DblpConfig, generate_dblp_graph
from repro.engine.batching import (
    QueryBatcher,
    QueryIntersectionGraph,
    signature_family,
)
from repro.explorer.cexplorer import CExplorer
from repro.util.errors import CExplorerError, EngineBusyError

VERTICES = ("jim gray", "michael stonebraker", "michael l. brodie",
            "bruce g. lindsay", "gerhard weikum")


_GRAPH = None


def _graph():
    # One shared immutable graph: generation dominates per-test cost,
    # and nothing in the search path mutates it.
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = generate_dblp_graph(
            DblpConfig(n_authors=300, n_communities=6, seed=7))
    return _GRAPH


def _explorer(shards=1, backend="thread", **kwargs):
    explorer = CExplorer(backend=backend, **kwargs)
    explorer.add_graph("dblp", _graph(), shards=shards)
    return explorer


def _canon(communities):
    return json.dumps([c.to_dict() for c in communities],
                      sort_keys=True)


def _run_batched(explorer, queries, window=0.02):
    batcher = QueryBatcher(explorer, window=window)
    try:
        futures = [batcher.submit(algorithm, vertex, k=k)
                   for algorithm, vertex, k in queries]
        return [_canon(f.result(60.0)) for f in futures]
    finally:
        batcher.close()


class TestBatchedEqualsSerial:
    """The identity property, across substrates."""

    @pytest.mark.parametrize("shards", [1, 2])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_mixed_batch_identical(self, shards, backend):
        queries = [("acq", "jim gray", 3),
                   ("acq", "jim gray", 3),          # dedup pair
                   ("acq", "michael stonebraker", 3),
                   ("k-truss", "jim gray", 3),
                   ("global", "gerhard weikum", 4)]
        serial = _explorer(shards=shards, backend=backend)
        expected = [_canon(serial.search(a, v, k=k))
                    for a, v, k in queries]
        batched = _explorer(shards=shards, backend=backend)
        assert _run_batched(batched, queries) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(("acq", "global", "k-truss")),
                  st.sampled_from(VERTICES),
                  st.integers(min_value=3, max_value=5)),
        min_size=1, max_size=8))
    def test_property_identical(self, queries):
        serial = _explorer()
        expected = [_canon(serial.search(a, v, k=k))
                    for a, v, k in queries]
        batched = _explorer()
        assert _run_batched(batched, queries) == expected

    def test_window_zero_still_correct(self):
        queries = [("acq", v, 3) for v in VERTICES]
        serial = _explorer()
        expected = [_canon(serial.search(a, v, k=k))
                    for a, v, k in queries]
        batched = _explorer()
        assert _run_batched(batched, queries, window=0.0) == expected


class _Sig:
    """A stand-in request carrying only a signature."""

    def __init__(self, graph="g", version=1, family="acq", k=4,
                 keywords=None):
        self.signature = (graph, version, family, k,
                          frozenset(keywords) if keywords else None)


class TestQueryIntersectionGraph:
    def test_same_signature_one_group(self):
        groups = QueryIntersectionGraph(
            [_Sig(), _Sig(), _Sig()]).groups()
        assert [len(g) for g in groups] == [3]

    def test_differing_k_splits(self):
        groups = QueryIntersectionGraph(
            [_Sig(k=3), _Sig(k=4), _Sig(k=3)]).groups()
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_version_splits(self):
        groups = QueryIntersectionGraph(
            [_Sig(version=1), _Sig(version=2)]).groups()
        assert len(groups) == 2

    def test_keyword_compatibility(self):
        # Unconstrained matches anything; constrained sides need a
        # non-empty intersection.
        a = _Sig(keywords=None)
        b = _Sig(keywords={"data", "web"})
        c = _Sig(keywords={"web", "query"})
        d = _Sig(keywords={"logic"})
        assert [len(g) for g in
                QueryIntersectionGraph([a, b, c]).groups()] == [3]
        groups = QueryIntersectionGraph([b, d]).groups()
        assert len(groups) == 2

    def test_max_size_caps_groups(self):
        groups = QueryIntersectionGraph(
            [_Sig() for _ in range(5)]).groups(max_size=2)
        assert [len(g) for g in groups] == [2, 2, 1]

    def test_families(self):
        assert signature_family("acq") == "acq"
        assert signature_family("acq-inc-s") == "acq"
        assert signature_family("k-truss") == "truss"
        assert signature_family("atc") == "truss"
        assert signature_family("global") == "global"


class TestBatcherBehaviour:
    def test_duplicate_queries_share_one_execution(self):
        explorer = _explorer()
        batcher = QueryBatcher(explorer, window=0.02)
        try:
            futures = [batcher.submit("acq", "jim gray", k=3)
                       for _ in range(5)]
            results = {_canon(f.result(30.0)) for f in futures}
            assert len(results) == 1
            stats = batcher.stats()
            assert stats["shared_answers"] == 4
            assert stats["batched_queries"] == 5
            # One execution: the cache saw exactly one store for
            # this key.
            assert explorer.cache.stats()["entries"] == 1
        finally:
            batcher.close()

    def test_cache_hit_resolves_without_window(self):
        explorer = _explorer()
        explorer.search("acq", "jim gray", k=3)
        batcher = QueryBatcher(explorer, window=5.0)
        try:
            future = batcher.submit("acq", "jim gray", k=3)
            # A 5s window must not delay a cache hit.
            assert future.done()
            assert future.result(0.1)
        finally:
            batcher.close()

    def test_bad_query_fails_alone(self):
        """One bad vertex in a batch fails only its own future."""
        explorer = _explorer()
        batcher = QueryBatcher(explorer, window=0.02)
        try:
            good = batcher.submit("acq", "jim gray", k=3)
            bad = batcher.submit("acq", "nobody at all", k=3)
            unknown = batcher.submit("nope", "jim gray", k=3)
            assert good.result(30.0)
            with pytest.raises(CExplorerError):
                bad.result(30.0)
            with pytest.raises(CExplorerError):
                unknown.result(30.0)
        finally:
            batcher.close()

    def test_saturated_engine_fails_fast(self):
        """A full queue rejects the group; member futures resolve
        with EngineBusyError instead of hanging."""
        explorer = _explorer(workers=1, max_queue=1)
        release = threading.Event()
        explorer.engine.submit(release.wait, 30.0, op="wedge")
        import time
        deadline = time.perf_counter() + 5.0
        while explorer.engine.snapshot()["in_flight"] < 1 \
                and time.perf_counter() < deadline:
            time.sleep(0.005)
        explorer.engine.submit(lambda: None, op="filler")
        batcher = QueryBatcher(explorer, window=0.01)
        try:
            future = batcher.submit("acq", "jim gray", k=3)
            with pytest.raises(EngineBusyError):
                future.result(5.0)
            assert explorer.engine.stats.get("batch_rejected") >= 1
        finally:
            release.set()
            batcher.close()

    def test_closed_batcher_degrades_to_engine(self):
        explorer = _explorer()
        batcher = QueryBatcher(explorer, window=0.02)
        batcher.close()
        future = batcher.submit("acq", "jim gray", k=3)
        assert future.result(30.0)

    def test_full_query_batch_rides_one_worker_job(self):
        """An all-eligible group ships one full_query_batch job (the
        shared-payload substrate), not one job per query."""
        explorer = _explorer(shards=1, backend="process")
        explorer.index()
        before = explorer.engine.stats.get("worker_full_query")
        queries = [("k-truss", v, 3) for v in VERTICES[:3]]
        serial = _explorer(shards=1)
        expected = [_canon(serial.search(a, v, k=k))
                    for a, v, k in queries]
        assert _run_batched(explorer, queries) == expected
        stats = explorer.engine.stats
        assert stats.get("worker_full_query") - before >= 3
        assert stats.get("batch_groups") >= 1
        assert explorer.engine.stats.get("batches") == 1

    def test_stats_document(self):
        explorer = _explorer()
        batcher = QueryBatcher(explorer, window=0.01)
        try:
            futures = [batcher.submit("acq", v, k=3)
                       for v in VERTICES[:3]]
            for f in futures:
                f.result(30.0)
            doc = batcher.stats()
            assert doc["window_seconds"] == 0.01
            assert doc["last_batch_size"] >= 1
            assert doc["max_batch_size"] >= doc["last_batch_size"]
            assert doc["batches"] >= 1
            assert doc["pending"] == 0
        finally:
            batcher.close()

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            QueryBatcher(_explorer(), window=-1)
