"""Tests for the CODICIL pipeline."""

import pytest

from repro.algorithms.codicil import (
    _content_edges,
    _cosine,
    _tfidf_vectors,
    _topo_jaccard,
    codicil,
    codicil_community,
)
from repro.util.errors import QueryError

from conftest import build_graph


def _two_topics():
    """Two keyword-coherent squares joined by one bridge edge."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 0),
             (4, 5), (5, 6), (6, 7), (7, 4),
             (3, 4)]
    kws = {v: {"db", "sql", "join"} for v in range(4)}
    kws.update({v: {"ml", "neural", "training"} for v in range(4, 8)})
    return build_graph(8, edges, kws)


class TestTfidf:
    def test_vectors_are_normalised(self):
        g = _two_topics()
        vectors, _ = _tfidf_vectors(g, df_cap_ratio=1.0)
        for vec in vectors.values():
            norm = sum(x * x for x in vec.values())
            assert norm == pytest.approx(1.0)

    def test_common_keywords_dropped_from_postings(self):
        g = build_graph(4, [], {v: {"common", "rare{}".format(v)}
                               for v in range(4)})
        _, postings = _tfidf_vectors(g, df_cap_ratio=0.5)
        assert "common" not in postings
        assert "rare0" in postings

    def test_cosine_bounds(self):
        g = _two_topics()
        vectors, _ = _tfidf_vectors(g, df_cap_ratio=1.0)
        same = _cosine(vectors[0], vectors[1])
        cross = _cosine(vectors[0], vectors[5])
        assert same == pytest.approx(1.0)
        assert cross == pytest.approx(0.0)

    def test_empty_keywords_zero_vector(self):
        g = build_graph(2, [(0, 1)])
        vectors, _ = _tfidf_vectors(g, df_cap_ratio=1.0)
        assert vectors[0] == {}


class TestContentEdges:
    def test_content_edges_connect_same_topic(self):
        g = _two_topics()
        vectors, postings = _tfidf_vectors(g, df_cap_ratio=1.0)
        edges = _content_edges(g, vectors, postings, t=2,
                               max_candidates=100)
        for (u, v), sim in edges.items():
            same_topic = (u < 4) == (v < 4)
            assert same_topic
            assert sim > 0


class TestTopoJaccard:
    def test_identical_neighbourhoods(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert _topo_jaccard(g, 0, 1) == pytest.approx(1.0)

    def test_disjoint_neighbourhoods(self):
        g = build_graph(4, [(0, 1), (2, 3)])
        assert _topo_jaccard(g, 0, 2) == 0.0


class TestCodicil:
    def test_partition_covers_all_vertices(self):
        g = _two_topics()
        communities = codicil(g, seed=1)
        covered = sorted(v for c in communities for v in c)
        assert covered == list(g.vertices())

    def test_partition_is_disjoint(self):
        g = _two_topics()
        communities = codicil(g, seed=1)
        seen = set()
        for c in communities:
            assert not (c.vertices & seen)
            seen |= c.vertices

    def test_separates_topics(self):
        g = _two_topics()
        communities = codicil(g, seed=1)
        best = max(communities, key=len)
        # No community may span both topic squares fully.
        for c in communities:
            members = c.vertices
            assert not ({0, 1, 2, 3} <= members
                        and {4, 5, 6, 7} <= members)
        assert len(best) >= 3

    def test_deterministic_under_seed(self):
        g = _two_topics()
        a = codicil(g, seed=5)
        b = codicil(g, seed=5)
        assert [c.vertices for c in a] == [c.vertices for c in b]

    def test_bad_sample_ratio(self):
        with pytest.raises(ValueError):
            codicil(_two_topics(), sample_ratio=0.0)

    def test_method_label(self):
        assert all(c.method == "CODICIL"
                   for c in codicil(_two_topics(), seed=1))

    def test_isolated_vertex_becomes_singleton(self):
        g = build_graph(3, [(0, 1)], {0: {"a"}, 1: {"a"}, 2: set()})
        communities = codicil(g, seed=1)
        singles = [c for c in communities if c.vertices == {2}]
        assert len(singles) == 1


class TestCodicilCommunity:
    def test_returns_cluster_of_q(self):
        g = _two_topics()
        result = codicil_community(g, 0, seed=1)
        assert len(result) == 1
        assert 0 in result[0]
        assert result[0].query_vertices == (0,)

    def test_reuses_partition(self):
        g = _two_topics()
        partition = codicil(g, seed=1)
        result = codicil_community(g, 5, partition=partition)
        assert 5 in result[0]

    def test_unknown_vertex(self):
        with pytest.raises(QueryError):
            codicil_community(_two_topics(), 99)
