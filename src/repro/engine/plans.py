"""Query planning: pick the CS execution strategy from graph/index
state.

The ACQ paper ships several algorithms for the same query (Dec over
the CL-tree, incremental variants, index-free local expansion), and
the right one depends on state the *user* should not have to know:
whether the CL-tree for this graph is built yet, how big the graph is,
whether the query constrains keywords at all.  This module is the
small planner that makes that call, so the server can accept
``"algorithm": "auto"`` and so explicit ACQ queries degrade gracefully
to index-free execution while a background build is still running.

A plan is data, not behaviour: the engine executes it, the metrics
endpoint can explain it.
"""

# Below this size every strategy is interactive; prefer the exact one.
SMALL_GRAPH_VERTICES = 2_000

ACQ_FAMILY = ("acq", "acq-inc-s", "acq-inc-t")

# The triangle-cohesive family: their structural phase is the global
# k-truss edge set, which shards certify through shard-local truss
# decompositions (lower bounds by subgraph monotonicity, exactly like
# shard-local cores) and the engine completes by peeling only the
# uncertain/cut edges.
TRUSS_FAMILY = ("k-truss", "atc")

# Algorithms whose structural phase (the connected k-core component,
# or the k-truss edge set for the triangle family) can fan out over
# graph shards; :mod:`repro.engine.sharding` aliases this as its
# SHARDABLE_ALGORITHMS.
FANOUT_ALGORITHMS = frozenset(ACQ_FAMILY) | {"global"} \
    | frozenset(TRUSS_FAMILY)

# Algorithms the whole-query worker pipeline can run end-to-end
# against a cached frozen snapshot (repro.engine.backends.
# shard_full_query_job): every built-in CS method -- the graph read
# protocol guarantees each accepts a FrozenGraph with byte-identical
# results.  Plug-ins registered after import are dispatched through
# the same generic protocol call, but the planner only volunteers the
# worker path for names it knows satisfy it.
FULL_QUERY_ALGORITHMS = FANOUT_ALGORITHMS \
    | {"local", "codicil", "steiner"}


class QueryPlan:
    """One planned execution: algorithm + index + fan-out decision.

    ``fanout=True`` means the graph is registered as shards and the
    chosen algorithm's structural phase should run partition-parallel
    (:mod:`repro.engine.sharding`); it is never set when ``shards=1``,
    so single-shard graphs keep the exact pre-sharding code path.
    ``worker_full_query=True`` means the entire query should run
    inside a worker against the graph's cached frozen payload
    (:meth:`~repro.engine.executor.QueryEngine.search_full_query`);
    the sharded fan-out takes precedence when both are set (its
    finishing phase already runs through the same worker pipeline).
    """

    __slots__ = ("algorithm", "use_index", "reason", "fanout",
                 "worker_full_query")

    def __init__(self, algorithm, use_index, reason, fanout=False,
                 worker_full_query=False):
        self.algorithm = algorithm
        self.use_index = use_index
        self.reason = reason
        self.fanout = fanout
        self.worker_full_query = worker_full_query

    def explain(self):
        """The plan as a JSON-friendly dict (the metrics endpoint's
        view of why a strategy was chosen)."""
        return {
            "algorithm": self.algorithm,
            "use_index": self.use_index,
            "reason": self.reason,
            "fanout": self.fanout,
            "worker_full_query": self.worker_full_query,
        }

    def __repr__(self):
        return ("QueryPlan({!r}, use_index={}, fanout={}, "
                "worker_full_query={}, reason={!r})"
                .format(self.algorithm, self.use_index, self.fanout,
                        self.worker_full_query, self.reason))


def plan_search(algorithm, graph, index_ready=False, keywords=None,
                shards=1, full_payload=False):
    """Choose the concrete algorithm and whether to use the CL-tree.

    ``algorithm`` may be a registered CS name (passed through, with
    the index decision made here for the ACQ family) or ``"auto"``.
    ``shards`` is how many partitions the graph is registered as;
    with ``shards > 1`` the plan marks shard-fan-out-capable
    algorithms (the k-core family) for partition-parallel execution.
    ``full_payload`` says a frozen whole-graph payload exists (or the
    engine's backend makes building one worthwhile); the plan then
    marks protocol-capable algorithms for whole-query worker
    execution.

    Auto rules, in order:

    * keyword-constrained queries always run ACQ -- only the attributed
      algorithms honour ``S``;
    * small graphs (< ``SMALL_GRAPH_VERTICES``) run ACQ too: the index
      build is cheap enough to do on the query path;
    * large graphs with a ready index run ACQ over the CL-tree;
    * large graphs without one fall back to index-free local search
      and let a background build upgrade later queries.

    Explicit ACQ-family requests always use the managed index (one
    amortised build); with ``index=None`` the implementations would
    build a throwaway CL-tree per query.
    """
    plan = _choose(algorithm.lower(), graph, index_ready, keywords)
    if shards > 1 and plan.algorithm in FANOUT_ALGORITHMS:
        plan.fanout = True
        plan.reason += ("; structural phase fans out over {} shards"
                        .format(shards))
    if full_payload and plan.algorithm in FULL_QUERY_ALGORITHMS:
        plan.worker_full_query = True
        plan.reason += ("; whole query runs on the frozen payload"
                        if not plan.fanout else
                        "; merge finish runs on the frozen payload")
    return plan


def _choose(algorithm, graph, index_ready, keywords):
    """The sharding-oblivious strategy pick (``algorithm`` already
    lower-cased -- the registry is case-insensitive)."""
    n = graph.vertex_count
    if algorithm == "auto":
        if keywords:
            return QueryPlan(
                "acq", True,
                "keyword-constrained query needs the attributed engine")
        if index_ready:
            return QueryPlan(
                "acq", True, "CL-tree ready; exact attributed search")
        if n < SMALL_GRAPH_VERTICES:
            return QueryPlan(
                "acq", True,
                "small graph ({} vertices): index build is cheap"
                .format(n))
        return QueryPlan(
            "local", False,
            "large unindexed graph ({} vertices): local expansion "
            "avoids a blocking index build".format(n))
    if algorithm in ACQ_FAMILY:
        # Always route the family through the managed index: with
        # index=None the ACQ implementations build a throwaway CL-tree
        # *per query*, so one amortised managed build is strictly
        # better even when it blocks the first query.
        return QueryPlan(algorithm, True,
                         "index ready" if index_ready
                         else "one managed index build, amortised "
                              "across queries")
    return QueryPlan(algorithm, False,
                     "algorithm does not consult the CL-tree")
