"""Sharded graph execution: partitioned CL-tree/k-core indexes plus
the engine-level fan-out/merge that queries them in parallel.

One large graph used to saturate one :class:`IndexManager` entry and
one worker: every structural query re-scanned the whole vertex set on
a single thread, and every maintenance update invalidated the single
monolithic index.  This module decomposes that work the way factorised
query engines decompose large instances (FDB in PAPERS.md) -- split
the graph once, push the per-partition work out to the worker pool,
and combine at the engine layer:

* :func:`partition_graph` / :class:`GraphPartitioner` -- edge-cut
  vertex partitioning.  The default is a deterministic multiplicative
  hash (stable across runs, O(n), oblivious to structure); the
  ``greedy`` method is a METIS-flavoured linear deterministic greedy
  balancer that places each vertex with the neighbours it already has,
  under a capacity penalty, cutting far fewer edges on
  community-structured graphs.  Partition skew is the failure mode the
  dynamic hash-join literature warns about (Jahangiri et al. in
  PAPERS.md); :meth:`Partition.stats` reports balance and cut so the
  metrics endpoint can surface it.

* :class:`ShardedIndexManager` -- an :class:`IndexManager` that, for a
  graph registered with ``shards > 1``, also materialises one induced
  subgraph **per shard** and registers each as its own versioned
  CL-tree/k-core index entry.  A :class:`CoreMaintainer` update is
  routed to the *owning shard only*: an intra-shard edge is applied to
  that shard's subgraph and bumps that shard's version; every other
  shard keeps its cached decomposition.  Shard-local core numbers are
  computed on a subgraph of ``G``, so they lower-bound the true core
  numbers -- which makes them sound *certificates*: a vertex whose
  shard-local core is ``>= k`` is guaranteed to be in the global
  k-core and never needs to be peeled again.

* :func:`sharded_structural_community` -- the exact decompose-then-
  combine query path.  Fan-out: each shard scans only its own
  vertices, classifying them as *certified* (shard-local core >= k),
  *dropped* (global degree < k) or *uncertain*.  Merge: the engine
  drains the peeling cascade over the uncertain vertices (certified
  vertices are immovable), takes the connected component of the query
  vertex, and re-verifies the k-core constraint on every
  boundary-crossing vertex of the merged community.  The result is
  provably the exact connected k-core component -- identical to the
  unsharded answer -- because certified vertices belong to the k-core
  by monotonicity and the cascade is the standard peel restricted to
  the only vertices that can still move.

* :func:`sharded_search` -- runs one shardable community search end to
  end: structural phase fanned out over
  :meth:`~repro.engine.executor.QueryEngine.map_shards`, then the
  algorithm-specific finish (``global`` builds the community directly;
  the ACQ family re-runs its keyword enumeration over the merged base,
  which re-verifies the keyword constraints on the full graph).  With
  ``shards=1`` nothing here runs at all -- the engine keeps the exact
  pre-sharding code path.

* **process-backend fan-out** -- with
  ``QueryEngine(backend="process")`` the per-shard scans leave the
  parent interpreter entirely: :class:`ShardPayload` caches, per
  ``(graph, version, shard)``, a pre-pickled CSR
  :class:`~repro.graph.frozen.FrozenGraph` snapshot of the shard (plus
  id map and global degrees), and
  :func:`~repro.engine.backends.shard_candidates_job` answers the
  certify/drop/classify probe in a ``multiprocessing`` worker.  The
  payload is serialised once per shard version -- not per query -- and
  maintenance invalidates it exactly when it bumps the shard's index
  version.  Merge, cascade drain and boundary re-verification stay in
  the parent, so sharded/process results remain byte-identical to
  unsharded/thread execution.
"""

import pickle
import time

from repro.algorithms.attributed_truss import attributed_truss_search
from repro.algorithms.truss_search import truss_community_search
from repro.core.acq import acq_search
from repro.core.community import Community
from repro.core.kcore import connected_k_core, core_decomposition
from repro.core.ktruss import truss_decomposition
from repro.engine.backends import (
    FixedBaseIndex,
    shard_candidates_job,
    shard_truss_job,
)
from repro.engine import tracing
from repro.engine.index_manager import GraphPayload, IndexManager
from repro.engine.plans import FANOUT_ALGORITHMS, TRUSS_FAMILY
from repro.graph.frozen import FrozenGraph
from repro.util.errors import (
    CExplorerError,
    QueryCancelledError,
    QueryError,
    QueryTimeoutError,
)

# Algorithms whose structural phase fans out over shards: the k-core
# families (structural phase = the connected k-core component) and,
# since the truss maintenance subsystem landed, the triangle families
# (structural phase = the global k-truss edge set, certified
# shard-locally and completed by peeling only uncertain/cut edges).
# `local` is already sublinear, so it runs unsharded.
SHARDABLE_ALGORITHMS = FANOUT_ALGORITHMS

PARTITION_METHODS = ("hash", "greedy")

_SHARD_SEP = "#shard"

# Knuth's multiplicative constant: spreads consecutive dense ids so a
# hash partition does not put every community on one shard.
_HASH_MULT = 2654435761
_HASH_MASK = 0xFFFFFFFF


def hash_shard(v, shards):
    """Deterministic shard owner of vertex id ``v`` (stable across
    runs and processes -- no reliance on Python's seeded ``hash``)."""
    return ((v * _HASH_MULT) & _HASH_MASK) % shards


class ShardMergeError(CExplorerError):
    """A merged community failed re-verification (a sharding bug --
    surfaced loudly instead of silently returning a wrong answer)."""


class Partition:
    """An edge-cut vertex partition of one graph.

    ``assignment[v]`` is the owning shard of vertex ``v``.  Vertices
    created after partitioning (online inserts) are assigned on demand
    by the deterministic hash rule, so ownership is total at all times.
    """

    __slots__ = ("shards", "method", "assignment", "cut_edges")

    def __init__(self, shards, method, assignment, cut_edges):
        self.shards = shards
        self.method = method
        self.assignment = assignment
        self.cut_edges = cut_edges

    def owner(self, v):
        """The shard owning ``v`` (hash-assigned when ``v`` postdates
        the partitioning pass)."""
        if v < len(self.assignment):
            return self.assignment[v]
        return hash_shard(v, self.shards)

    def assign(self, v):
        """Record ownership for a vertex created after partitioning;
        returns the owning shard."""
        while len(self.assignment) <= v:
            self.assignment.append(
                hash_shard(len(self.assignment), self.shards))
        return self.assignment[v]

    def members(self, shard):
        """Vertex ids owned by ``shard`` (in id order)."""
        return [v for v, s in enumerate(self.assignment) if s == shard]

    def sizes(self):
        """Vertex count per shard."""
        counts = [0] * self.shards
        for s in self.assignment:
            counts[s] += 1
        return counts

    def stats(self):
        """Balance/cut summary for the metrics endpoint."""
        sizes = self.sizes()
        mean = sum(sizes) / self.shards if self.shards else 0.0
        return {
            "shards": self.shards,
            "method": self.method,
            "sizes": sizes,
            "cut_edges": self.cut_edges,
            "balance": round(max(sizes) / mean, 4) if mean else 1.0,
        }


class GraphPartitioner:
    """Edge-cut partitioner with pluggable placement strategies.

    ``method="hash"`` (default) is the deterministic multiplicative
    hash: O(n), perfectly reproducible, structure-oblivious.
    ``method="greedy"`` is a METIS-style one-pass greedy balancer
    (linear deterministic greedy): each vertex goes to the shard
    holding most of its already-placed neighbours, penalised by how
    full that shard is, with deterministic tie-breaks -- fewer cut
    edges on graphs with community structure, same O(n + m) cost.
    """

    def __init__(self, shards, method="hash"):
        if shards < 1:
            raise CExplorerError("shards must be >= 1")
        if method not in PARTITION_METHODS:
            raise CExplorerError(
                "unknown partitioner {!r}; choose from {}".format(
                    method, PARTITION_METHODS))
        self.shards = shards
        self.method = method

    def partition(self, graph):
        """Partition ``graph``; returns a :class:`Partition`."""
        n = graph.vertex_count
        if self.shards == 1:
            assignment = [0] * n
        elif self.method == "hash":
            assignment = [hash_shard(v, self.shards) for v in range(n)]
        else:
            assignment = self._greedy(graph)
        cut = sum(1 for u, v in graph.edges()
                  if assignment[u] != assignment[v])
        return Partition(self.shards, self.method, assignment, cut)

    def _greedy(self, graph):
        n = graph.vertex_count
        shards = self.shards
        # Hard cap: no shard exceeds ceil(n / shards), so balance is
        # guaranteed and skew cannot hide behind a good cut.
        capacity = -(-n // shards)
        assignment = [-1] * n
        loads = [0] * shards
        # Highest-degree first: hubs seed shards, their neighbourhoods
        # follow them.  Ties break on vertex id for determinism.
        order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
        for v in order:
            placed = [0] * shards
            for u in graph.neighbors(v):
                if assignment[u] >= 0:
                    placed[assignment[u]] += 1
            best, best_key = 0, None
            for s in range(shards):
                if loads[s] >= capacity:
                    continue
                # Most already-placed neighbours wins; ties go to the
                # least-loaded shard, then the lowest index.
                key = (placed[s], -loads[s])
                if best_key is None or key > best_key:
                    best, best_key = s, key
            assignment[v] = best
            loads[best] += 1
        return assignment


def shard_entry_name(name, shard):
    """Index-entry name of one shard of graph ``name``."""
    return "{}{}{}".format(name, _SHARD_SEP, shard)


def parent_graph_name(entry_name):
    """The graph a (possibly shard-) entry name belongs to."""
    return entry_name.split(_SHARD_SEP, 1)[0]


class ShardReport:
    """One shard's contribution to a structural query: the fan-out
    payload the merge step consumes."""

    __slots__ = ("shard", "certified", "uncertain", "dropped")

    def __init__(self, shard, certified, uncertain, dropped):
        self.shard = shard
        self.certified = certified    # set: shard-local core >= k
        self.uncertain = uncertain    # dict v -> current degree
        self.dropped = dropped        # list: global degree < k


class TrussShardReport:
    """One shard's contribution to a truss structural query.

    ``certified`` edges have shard-local truss >= k, which certifies
    global truss >= k by subgraph monotonicity; ``uncertain`` is the
    rest of the shard's (intra-shard) edges.  Cross-shard (cut) edges
    belong to no shard and are classified at the merge.  All edges are
    ``(u, v)`` tuples with ``u < v`` in *global* vertex ids.
    """

    __slots__ = ("shard", "certified", "uncertain")

    def __init__(self, shard, certified, uncertain):
        self.shard = shard
        self.certified = certified
        self.uncertain = uncertain


class ShardPayload(GraphPayload):
    """One shard's frozen snapshot, ready to ship to a worker process.

    The payload bundles the ``(FrozenGraph, old_ids, global_degree)``
    triple a shard job needs.  :meth:`job_arg` ships it zero-copy
    through the payload plane (one shared-memory segment per shard
    version, a tiny ref per dispatch); ``blob`` is the pickled-triple
    fallback, serialised lazily **once per shard version** and reused
    until maintenance bumps the shard.  ``key`` is the ``(manager
    epoch, graph, shard, version)`` identity workers cache their
    attached/unpickled copy (and its shard-local core numbers) under
    -- the epoch keeps same-named graphs of different managers apart
    when jobs run inline in a shared parent process.
    """

    __slots__ = ("old_ids", "global_degree")

    def __init__(self, key, version, frozen, old_ids, global_degree,
                 build_seconds):
        super().__init__(key, version, frozen, build_seconds)
        self.old_ids = old_ids
        self.global_degree = global_degree

    @property
    def blob(self):
        """The pickled job triple (serialised once, on first use)."""
        if self._blob is None:
            with tracing.span("payload_pickle"):
                self._blob = pickle.dumps(
                    (self.frozen, self.old_ids, self.global_degree),
                    protocol=pickle.HIGHEST_PROTOCOL)
        return self._blob

    def _extras(self):
        return (self.old_ids, self.global_degree)


class _ShardSet:
    """Partition bookkeeping for one sharded graph."""

    __slots__ = ("partition", "names", "graphs", "old_to_new", "routed")

    def __init__(self, partition, names, graphs, old_to_new):
        self.partition = partition
        self.names = names
        self.graphs = graphs          # per-shard induced subgraphs
        self.old_to_new = old_to_new  # per-shard {global id: local id}
        self.routed = None            # maintainer wired for routing


class ShardedIndexManager(IndexManager):
    """An :class:`IndexManager` that can hold a graph as shards.

    ``register(..., shards=n)`` additionally materialises the ``n``
    induced shard subgraphs and registers each under
    ``<name>#shard<i>`` -- a full versioned index entry of its own, so
    shard CL-trees build lazily/eagerly like any other index and
    ``/api/metrics`` reports per-shard versions for free.  With
    ``shards=1`` (the default) behaviour is exactly the parent's.
    """

    def __init__(self):
        super().__init__()
        self._parts = {}
        # (name, shard) -> ShardPayload, valid while the shard entry's
        # version matches; one latest payload per shard, so the cache
        # is bounded by the number of live shard entries.  The payload
        # epoch (worker-cache identity of same-named graphs across
        # managers) is inherited from :class:`IndexManager`.
        self._payloads = {}
        self._payload_stores.append(self._payloads)
        # name -> {edge: exact global support} for the edges no shard
        # owns (cut edges).  Kept exact under maintenance by the
        # :meth:`invalidate` override: an update only evicts the
        # entries its neighbourhood could have changed.
        self._cut_supports = {}
        self.cut_support_hits = 0
        self.cut_support_misses = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name, graph, build="lazy", shards=1,
                 partitioner="hash"):
        """Register ``name``; with ``shards > 1`` also partition it
        and register one index entry per shard subgraph."""
        if _SHARD_SEP in name:
            raise CExplorerError(
                "graph names may not contain {!r}".format(_SHARD_SEP))
        # Validate shard arguments (and compute the partition) *before*
        # touching the parent entry: a rejected registration must not
        # leave the manager holding a graph its caller rolled back.
        part = GraphPartitioner(shards, partitioner).partition(graph) \
            if shards > 1 else None
        version = super().register(name, graph, build=build)
        if part is not None:
            names, graphs, mappings = [], [], []
            for i in range(shards):
                sub, old_to_new = graph.induced_subgraph(part.members(i))
                entry = shard_entry_name(name, i)
                # Replaces a same-named entry from a previous sharded
                # registration in place -- no window where a shard
                # entry is missing.
                super().register(entry, sub, build=build)
                names.append(entry)
                graphs.append(sub)
                mappings.append(old_to_new)
            fresh = _ShardSet(part, names, graphs, mappings)
            with self._lock:
                old = self._parts.get(name)
                self._parts[name] = fresh
                self._cut_supports.pop(name, None)
                stale = self._drop_shard_payloads(name)
            leftovers = old.names[shards:] if old is not None else []
        else:
            with self._lock:
                old = self._parts.pop(name, None)
                self._cut_supports.pop(name, None)
                stale = self._drop_shard_payloads(name)
            leftovers = old.names if old is not None else []
        for payload in stale:
            payload.release()
        for entry in leftovers:
            super().unregister(entry)
        return version

    def _drop_shard_payloads(self, name, shard=None):
        """Pop cached shard payloads of ``name`` (one shard or all)
        and return them for release *outside* the manager lock."""
        stale = [key for key in self._payloads
                 if key[0] == name and (shard is None or key[1] == shard)]
        return [self._payloads.pop(key) for key in stale]

    def unregister(self, name):
        """Drop ``name``, its shard entries and its cached payloads
        (releasing their shared-memory segments)."""
        with self._lock:
            old = self._parts.pop(name, None)
            self._cut_supports.pop(name, None)
            stale = self._drop_shard_payloads(name)
        for payload in stale:
            payload.release()
        if old is not None:
            for entry in old.names:
                super().unregister(entry)
        super().unregister(name)

    def discard_payload(self, key):
        """Quarantine hook covering shard payloads too: a corrupt or
        unattachable per-shard payload is dropped from the cache and
        its segment unlinked, so the next fan-out re-freezes and
        re-publishes that shard."""
        if super().discard_payload(key):
            return True
        with self._lock:
            stale = None
            for cache_key, payload in list(self._payloads.items()):
                if payload.key == key:
                    stale = self._payloads.pop(cache_key)
                    break
        if stale is not None:
            stale.release()
            return True
        return False

    def release_payloads(self):
        """Shutdown hook: release shard payloads too."""
        with self._lock:
            stale = list(self._payloads.values())
            self._payloads.clear()
        for payload in stale:
            payload.release()
        super().release_payloads()

    # ------------------------------------------------------------------
    # shard reads
    # ------------------------------------------------------------------
    def shards(self, name):
        """Number of shards ``name`` is held as (1 = unsharded)."""
        part = self._parts.get(name)
        return part.partition.shards if part is not None else 1

    def partition(self, name):
        """The :class:`Partition` of ``name``, or ``None``."""
        part = self._parts.get(name)
        return part.partition if part is not None else None

    def shard_names(self, name):
        """Index-entry names of ``name``'s shards (empty when
        unsharded)."""
        part = self._parts.get(name)
        return list(part.names) if part is not None else []

    def shard_stats(self, name):
        """Partition + per-shard index lifecycle stats (metrics)."""
        part = self._parts.get(name)
        if part is None:
            return None
        doc = part.partition.stats()
        doc["indexes"] = [self.stats(entry) for entry in part.names]
        doc["cut_support_cache"] = {
            "entries": len(self._cut_supports.get(name, ())),
            # Manager-wide counters: how often truss merges found
            # their cut-edge supports warm vs had to intersect.
            "hits": self.cut_support_hits,
            "misses": self.cut_support_misses,
        }
        return doc

    def shard_candidates(self, name, shard, k):
        """One shard's :class:`ShardReport` for a level-``k`` query.

        Runs as a fan-out job on the worker pool: scans only the
        shard's own vertices, certifying via the shard-local core
        numbers (cached per shard version, so only maintenance on
        *this* shard ever forces a recompute).
        """
        with self._lock:
            part = self._parts.get(name)
            if part is None:
                raise CExplorerError(
                    "graph {!r} is not sharded".format(name))
        sub = part.graphs[shard]
        try:
            # Only trust the cached per-version decomposition when the
            # index entry still holds *this* shard set's subgraph
            # (a concurrent re-registration may have replaced it).
            if self.graph(part.names[shard]) is sub:
                local_core = self.core(part.names[shard])
            else:
                local_core = core_decomposition(sub)
        except CExplorerError:
            local_core = core_decomposition(sub)
        mapping = part.old_to_new[shard]
        graph = self.graph(name)
        certified = set()
        uncertain = {}
        dropped = []
        for old, new in mapping.items():
            if local_core[new] >= k:
                certified.add(old)
                continue
            degree = graph.degree(old)
            if degree < k:
                dropped.append(old)
            else:
                uncertain[old] = degree
        return ShardReport(shard, certified, uncertain, dropped)

    def shard_truss_candidates(self, name, shard, k):
        """One shard's :class:`TrussShardReport` for a level-``k``
        truss query.

        Runs as a fan-out job on the worker pool: decomposes only the
        shard's own induced subgraph (cached per shard truss version,
        so only maintenance on *this* shard ever forces a recompute)
        and certifies edges whose shard-local truss number reaches
        ``k``.
        """
        with self._lock:
            part = self._parts.get(name)
            if part is None:
                raise CExplorerError(
                    "graph {!r} is not sharded".format(name))
        sub = part.graphs[shard]
        try:
            # Only trust the cached per-version decomposition when the
            # index entry still holds *this* shard set's subgraph.
            if self.graph(part.names[shard]) is sub:
                local_truss = self.truss(part.names[shard])
            else:
                local_truss = truss_decomposition(sub)
        except CExplorerError:
            local_truss = truss_decomposition(sub)
        mapping = part.old_to_new[shard]
        old_ids = [0] * len(mapping)
        for old, new in mapping.items():
            old_ids[new] = old
        certified = set()
        uncertain = set()
        for u, v in sub.edges():
            a, b = old_ids[u], old_ids[v]
            edge = (a, b) if a < b else (b, a)
            if local_truss.get((u, v), 0) >= k:
                certified.add(edge)
            else:
                uncertain.add(edge)
        return TrussShardReport(shard, certified, uncertain)

    def shard_payload(self, name, shard):
        """The pickled-frozen snapshot of one shard, cached per
        ``(graph, version, shard)``.

        Returns ``(payload, fresh)`` where ``fresh`` says the snapshot
        was (re)built by this call -- the engine records the build
        time under the ``snapshot_build`` latency op.  The payload
        bundles everything :func:`~repro.engine.backends.
        shard_candidates_job` needs to answer a level-``k`` probe in a
        worker process: the shard subgraph as a CSR
        :class:`~repro.graph.frozen.FrozenGraph`, the local-to-global
        id map, and the owned vertices' *global* degrees (an edge
        update always bumps both endpoint owners' shard versions, so a
        version-matched payload never carries stale degrees).
        """
        start = time.perf_counter()
        with self._lock:
            part = self._parts.get(name)
            if part is None:
                raise CExplorerError(
                    "graph {!r} is not sharded".format(name))
            entry_name = part.names[shard]
            version = self.version(entry_name)
            cached = self._payloads.get((name, shard))
            if cached is not None and cached.version == version:
                return cached, False
            # Snapshot under the lock: maintenance routing mutates the
            # shard subgraphs under the same lock, so the frozen CSR
            # and the degree array are a consistent cut of one state.
            sub = part.graphs[shard]
            mapping = part.old_to_new[shard]
            graph = self.graph(name)
            with tracing.span("payload_freeze", graph=name,
                              shard=shard):
                frozen = FrozenGraph.from_graph(sub)
            old_ids = [0] * len(mapping)
            for old, new in mapping.items():
                old_ids[new] = old
            global_degree = [graph.degree(old) for old in old_ids]
        # Serialisation is lazy: the payload plane ships the frozen
        # arrays zero-copy through a shared-memory segment, so the
        # pickle (``payload.blob``) only ever runs on the fallback
        # rung -- cold queries stop paying ``payload_pickle`` at all.
        payload = ShardPayload(
            (self._payload_epoch, name, shard, version), version,
            frozen, old_ids, global_degree,
            time.perf_counter() - start)
        replaced = None
        with self._lock:
            fresh = self._parts.get(name)
            # Publish only when the snapshot still describes the live
            # shard set at the version it was cut at; an unpublished
            # (raced) payload is still a consistent snapshot of the
            # state it was cut from, so the in-flight query may use
            # it -- the same either-state semantics the thread path
            # has for queries concurrent with mutations.
            if fresh is part and self.version(entry_name) == version:
                replaced = self._payloads.get((name, shard))
                self._payloads[(name, shard)] = payload
        if replaced is not None:
            replaced.release()
        return payload, True

    # ------------------------------------------------------------------
    # cut-edge support cache
    # ------------------------------------------------------------------
    def cut_edge_supports(self, name, edges):
        """Exact global triangle supports of ``edges``, cached.

        Cut edges (endpoints on different shards) belong to no shard
        subgraph, so every sharded truss merge needs their exact
        global supports -- and they are the same edges query after
        query.  The cache holds them per graph; the
        :meth:`invalidate` override keeps it exact by evicting only
        the entries inside each update's affected neighbourhood (an
        edge's triangle count can only change when the update touches
        one of its endpoints' adjacencies).  Misses are computed here
        and cached; hits/misses are counted for :meth:`shard_stats`.
        """
        out = {}
        misses = []
        with self._lock:
            graph = self.graph(name)
            version = self.version(name)
            cache = self._cut_supports.setdefault(name, {})
            for edge in edges:
                support = cache.get(edge)
                if support is None:
                    misses.append(edge)
                else:
                    self.cut_support_hits += 1
                    out[edge] = support
        # Intersect outside the lock: a cold cache over many cut
        # edges is real work, and every concurrent version/payload
        # probe shares this lock (same reasoning as the out-of-lock
        # whole-graph freeze in ``IndexManager.full_payload``).
        for edge in misses:
            u, v = edge
            nu = graph.neighbors(u)
            if not isinstance(nu, set):
                nu = set(nu)
            out[edge] = len(nu.intersection(graph.neighbors(v)))
        if misses:
            with self._lock:
                self.cut_support_misses += len(misses)
                # Publish only when no maintenance landed while we
                # computed -- a concurrent update may have evicted
                # exactly these edges, and re-adding them would
                # resurrect stale counts.  The in-flight query still
                # uses the computed values: a consistent snapshot of
                # the state it read (either-state semantics).
                entry = self._entries.get(name)
                if entry is not None and entry.version == version \
                        and self._cut_supports.get(name) is cache:
                    for edge in misses:
                        cache[edge] = out[edge]
        return out

    def invalidate(self, name, affected=None, **kwargs):
        """Version bump plus cut-support eviction scoped to the
        update's neighbourhood.

        A cached cut-edge support can only change when the update
        touches one of the edge's endpoints, so an ``affected`` region
        evicts exactly the cache entries with an endpoint inside it;
        a region-less (conservative) bump clears the graph's whole
        cut cache.  Shard-entry bumps route to their parent graph's
        cache.
        """
        parent = parent_graph_name(name)
        stale_payloads = []
        with self._lock:
            cache = self._cut_supports.get(parent)
            if cache:
                if affected is None:
                    cache.clear()
                else:
                    stale = [edge for edge in cache
                             if edge[0] in affected
                             or edge[1] in affected]
                    for edge in stale:
                        del cache[edge]
            # A shard-entry bump makes the cached shard payload one
            # version stale: release it (and unlink its segment) now
            # rather than when the next fan-out replaces it.
            if parent != name and _SHARD_SEP in name:
                try:
                    shard = int(name.rsplit(_SHARD_SEP, 1)[1])
                except ValueError:
                    shard = None
                if shard is not None:
                    stale_payloads = self._drop_shard_payloads(
                        parent, shard)
        for payload in stale_payloads:
            payload.release()
        return super().invalidate(name, affected=affected, **kwargs)

    # ------------------------------------------------------------------
    # maintenance routing
    # ------------------------------------------------------------------
    def attach_maintainer(self, name, maintainer=None):
        """Parent wiring plus shard routing: each edge update is
        applied to -- and bumps the version of -- the owning shard
        only; the other shards keep their cached decompositions."""
        maintainer = super().attach_maintainer(name, maintainer)
        with self._lock:
            part = self._parts.get(name)
            # Idempotent per (shard set, maintainer): re-attaching
            # must not stack a second routing listener (each update
            # would bump shard versions twice, trashing the per-shard
            # core caches this class exists to keep).
            wire = part is not None and part.routed is not maintainer
            if wire:
                part.routed = maintainer
        if wire:
            def route(event):
                """Apply the update to the owning shard's subgraph."""
                self._route_update(name, event)
            maintainer.add_listener(route)
        return maintainer

    def _route_update(self, name, event):
        # The shard-subgraph mutation happens under the manager lock
        # so :meth:`shard_payload` (which snapshots a subgraph under
        # the same lock) can never observe a half-applied update and
        # freeze a torn CSR.
        with self._lock:
            part = self._parts.get(name)
            if part is None:
                return
            u, v = event["edge"]
            partition = part.partition
            graph = self.graph(name)
            adopted = set()
            for w in (u, v):
                if w >= len(partition.assignment):
                    adopted |= self._adopt_vertex(part, graph, w)
            su, sv = partition.owner(u), partition.owner(v)
            if su == sv:
                sub = part.graphs[su]
                mu = part.old_to_new[su][u]
                mv = part.old_to_new[su][v]
                if event["kind"] == "insert":
                    sub.add_edge(mu, mv)
                elif sub.has_edge(mu, mv):
                    sub.remove_edge(mu, mv)
        # A cross-shard edge lives in no shard subgraph; the owning
        # shards' certificates stay sound (their subgraphs are still
        # subgraphs of G), but their boundary changed, so their
        # versions bump and dependants re-read.  Shards that adopted a
        # new vertex bump too: their subgraph grew, so their cached
        # core decompositions are stale.
        for shard in sorted({su, sv} | adopted):
            self.invalidate(shard_entry_name(name, shard),
                            affected=set(event["edge"]))

    def _adopt_vertex(self, part, graph, v):
        """Assign a vertex created after partitioning to its hash
        shard and mirror it into that shard's subgraph; returns the
        set of shards that grew (their index entries must be
        invalidated by the caller)."""
        partition = part.partition
        first_new = len(partition.assignment)
        partition.assign(v)
        touched = set()
        for w in range(first_new, len(partition.assignment)):
            shard = partition.assignment[w]
            sub = part.graphs[shard]
            local = sub.add_vertex(graph.label(w), graph.keywords(w))
            part.old_to_new[shard][w] = local
            touched.add(shard)
        return touched


# ----------------------------------------------------------------------
# the exact decompose-then-combine structural query
# ----------------------------------------------------------------------

def merge_shard_reports(graph, reports, q, k, extra_vertices=()):
    """Combine per-shard candidate reports into the exact connected
    k-core component of ``q`` (or ``None``).

    ``extra_vertices`` covers vertices no shard reported (created
    after the partitioning pass and never routed through a
    maintainer); they are classified here so the merge stays total.

    The drain is the standard peel restricted to *uncertain* vertices:
    certified vertices are in the global k-core by monotonicity
    (shard-local core numbers lower-bound global ones), so they are
    immovable and their degrees are never tracked.
    """
    certified = set()
    uncertain = {}
    queue = []
    for report in reports:
        certified |= report.certified
        uncertain.update(report.uncertain)
        queue.extend(report.dropped)
    for v in extra_vertices:
        degree = graph.degree(v)
        if degree < k:
            queue.append(v)
        else:
            uncertain[v] = degree
    removed = set(queue)
    while queue:
        d = queue.pop()
        for u in graph.neighbors(d):
            if u in uncertain and u not in removed:
                uncertain[u] -= 1
                if uncertain[u] < k:
                    removed.add(u)
                    queue.append(u)
    if q in removed or (q not in certified and q not in uncertain):
        return None
    # Component of q over the survivors, on the full adjacency.
    component = {q}
    frontier = [q]
    while frontier:
        u = frontier.pop()
        for w in graph.neighbors(u):
            if w in component or w in removed:
                continue
            if w in certified or w in uncertain:
                component.add(w)
                frontier.append(w)
    return component


def verify_boundary(graph, partition, component, k):
    """Re-verify the k-core constraint on the merged community.

    One pass over the full-graph adjacency recomputes every member's
    within-community degree -- boundary-crossing vertices included,
    which is where a bad merge would first show.  A violation raises
    :class:`ShardMergeError` rather than returning a silently wrong
    community (the caller answers it by recomputing serially).
    """
    for v in component:
        internal = sum(1 for u in graph.neighbors(v) if u in component)
        if internal < k:
            raise ShardMergeError(
                "vertex {} (shard {}) has internal degree {} < k={} "
                "after merge".format(v, partition.owner(v), internal,
                                     k))


def sharded_structural_community(engine, name, q, k):
    """The exact connected k-core component of ``q`` at level ``k``,
    computed shard-parallel over ``engine``'s worker pool.

    Fan-out: one :meth:`ShardedIndexManager.shard_candidates` job per
    shard (certify / drop / classify, each scanning only its own
    vertices).  Merge: drain the peeling cascade, take ``q``'s
    component, re-verify boundary crossers.  Returns ``None`` when
    ``q`` is not in the k-core.
    """
    indexes = engine.indexes
    graph = indexes.graph(name)
    partition = indexes.partition(name)
    if partition is None:
        # Raced a re-registration down to shards=1: answer exactly,
        # just without the fan-out.
        return connected_k_core(graph, q, k)
    try:
        if getattr(engine, "backend", "thread") == "process":
            # GIL-free fan-out: ship each shard's cached frozen
            # snapshot to the process pool; workers certify against
            # shard-local CSR core numbers and return plain
            # containers in global ids.
            jobs = []
            for shard in range(partition.shards):
                payload, fresh = indexes.shard_payload(name, shard)
                if fresh:
                    engine.stats.observe("snapshot_build",
                                         payload.build_seconds)
                jobs.append((shard_candidates_job,
                             (payload.key, payload.job_arg(), k)))
            raw = engine.map_shard_jobs(jobs, graph=name)
            reports = [
                ShardReport(shard, set(certified), dict(uncertain),
                            list(dropped))
                for shard, (certified, uncertain, dropped)
                in enumerate(raw)
            ]
        else:
            jobs = [
                (lambda shard=shard:
                 indexes.shard_candidates(name, shard, k))
                for shard in range(partition.shards)
            ]
            reports, _ = engine.map_shards(jobs, graph=name)
        extra = range(len(partition.assignment), graph.vertex_count)
        with tracing.span("merge", shards=partition.shards, kind="core"):
            component = merge_shard_reports(graph, reports, q, k,
                                            extra_vertices=extra)
            if component is not None:
                verify_boundary(graph, partition, component, k)
        return component
    except (QueryTimeoutError, QueryCancelledError):
        # Deadline/cancellation signals belong to admission control;
        # never convert them into more (serial) work.
        raise
    except (CExplorerError, IndexError, RuntimeError):
        # A concurrent re-registration or maintenance update mutated
        # the shard set under the fan-out (stale entries, dict/set
        # changed during iteration, or a merge that failed
        # re-verification).  Fall back to the exact serial
        # computation; the stats counter keeps the event visible.
        engine.stats.count("shard_fallbacks")
        return connected_k_core(indexes.graph(name), q, k)


# ----------------------------------------------------------------------
# the exact decompose-then-combine truss query
# ----------------------------------------------------------------------

def merge_truss_reports(graph, reports, k, extra_edges=(),
                        known_supports=None):
    """Combine per-shard truss reports into the exact global k-truss
    edge set.

    ``extra_edges`` covers the edges no shard reported: cut edges
    (their endpoints live on different shards) and edges of vertices
    created after partitioning.  The peel is the standard truss peel
    restricted to *uncertain* edges: certified edges are in the global
    k-truss by monotonicity (shard-local truss numbers lower-bound
    global ones), so they are immovable and their supports are never
    tracked.  Supports of uncertain edges are exact global triangle
    counts over the full adjacency; ``known_supports`` optionally
    carries already-exact counts (the manager's cut-edge support
    cache) so recurring cut edges skip the intersection.

    Returns ``(strong, suspects)``: the k-truss edge set and the
    subset of it that survived as uncertain (the boundary region
    :func:`verify_truss_boundary` re-verifies).
    """
    certified = set()
    uncertain = set()
    for report in reports:
        certified.update(report.certified)
        uncertain.update(report.uncertain)
    for edge in extra_edges:
        uncertain.add(edge)
    uncertain -= certified
    nbrs = graph.neighbors
    known = known_supports or {}
    support = {}
    for u, v in uncertain:
        s = known.get((u, v))
        support[(u, v)] = s if s is not None \
            else len(nbrs(u) & nbrs(v))
    threshold = k - 2
    queue = [e for e, s in support.items() if s < threshold]
    removed = set(queue)
    # ``removed`` dedupes the queue; ``gone`` tracks edges whose
    # triangles have been torn down.  They must differ: a triangle
    # whose two tracked edges are *enqueued together* still has to
    # decrement its third edge exactly once, which only the
    # processed-edge set can decide.
    gone = set()
    while queue:
        e = queue.pop()
        u, v = e
        gone.add(e)
        for w in nbrs(u) & nbrs(v):
            a = (u, w) if u < w else (w, u)
            b = (v, w) if v < w else (w, v)
            if a in gone or b in gone:
                continue  # triangle already torn down
            for other in (a, b):
                s = support.get(other)
                if s is None:
                    continue  # certified partner: immovable
                support[other] = s - 1
                if s - 1 < threshold and other not in removed:
                    removed.add(other)
                    queue.append(other)
    suspects = uncertain - removed
    return certified | suspects, suspects


def verify_truss_boundary(graph, strong, suspects, k):
    """Re-verify the merged k-truss on its uncertain survivors.

    Certified edges carry a shard-local proof; the ``suspects`` (cut
    edges and under-certified intra-shard edges that survived the
    merge peel) are where a bad merge would first show.  Each must
    close at least ``k - 2`` triangles whose other two edges are in
    ``strong``; a violation raises :class:`ShardMergeError` rather
    than returning a silently wrong truss (the caller answers by
    recomputing serially).
    """
    nbrs = graph.neighbors
    for u, v in suspects:
        count = 0
        for w in nbrs(u) & nbrs(v):
            a = (u, w) if u < w else (w, u)
            b = (v, w) if v < w else (w, v)
            if a in strong and b in strong:
                count += 1
        if count < k - 2:
            raise ShardMergeError(
                "edge ({}, {}) has {} in-truss triangles < k-2={} "
                "after merge".format(u, v, count, k - 2))


def sharded_truss_edge_set(engine, name, k):
    """The exact global k-truss edge set of graph ``name``, computed
    shard-parallel over ``engine``'s worker pool.

    Fan-out: one truss certify/classify job per shard (thread backend:
    :meth:`ShardedIndexManager.shard_truss_candidates`; process
    backend: :func:`~repro.engine.backends.shard_truss_job` over the
    cached frozen shard payloads, running the CSR support-counting
    kernel GIL-free).  Merge: peel the uncertain and cut edges with
    exact global supports (cut-edge supports come from the manager's
    per-graph cache, invalidated only by each update's
    neighbourhood), then re-verify the survivors.  The merged edge
    set is memoized per ``(graph, truss_version, k)`` in the engine's
    :class:`~repro.engine.cache.SubproblemMemo` -- queries for
    different vertices at the same level share one fan-out, and the
    truss-version key means the entry survives anything that does not
    move the truss index.  Returns ``None`` when the graph is (no
    longer) sharded.
    """
    indexes = engine.indexes
    partition = indexes.partition(name)
    if partition is None:
        return None
    truss_version = indexes.truss_version(name)
    return engine.memo.get_or_compute(
        name, truss_version, "ktruss-strong", k,
        lambda: _compute_sharded_truss_edge_set(engine, name, k))


def _compute_sharded_truss_edge_set(engine, name, k):
    """The uncached fan-out/merge behind
    :func:`sharded_truss_edge_set`."""
    indexes = engine.indexes
    graph = indexes.graph(name)
    partition = indexes.partition(name)
    if partition is None:
        return None
    if getattr(engine, "backend", "thread") == "process":
        jobs = []
        for shard in range(partition.shards):
            payload, fresh = indexes.shard_payload(name, shard)
            if fresh:
                engine.stats.observe("snapshot_build",
                                     payload.build_seconds)
            jobs.append((shard_truss_job,
                         (payload.key, payload.job_arg(), k)))
        raw = engine.map_shard_jobs(jobs, graph=name)
        reports = [
            TrussShardReport(shard, set(certified), set(uncertain))
            for shard, (certified, uncertain) in enumerate(raw)
        ]
    else:
        jobs = [
            (lambda shard=shard:
             indexes.shard_truss_candidates(name, shard, k))
            for shard in range(partition.shards)
        ]
        reports, _ = engine.map_shards(jobs, graph=name)
    # Cut edges and post-partition edges belong to no shard subgraph;
    # classify them at the merge so coverage stays total.
    assigned = len(partition.assignment)
    extra = []
    for u, v in graph.edges():
        if (u >= assigned or v >= assigned
                or partition.assignment[u] != partition.assignment[v]):
            extra.append((u, v))
    # Cut edges recur in every truss merge of this graph; their exact
    # global supports come from the manager's per-(graph) cache,
    # which maintenance invalidates by the update's neighbourhood
    # only (see ShardedIndexManager.cut_edge_supports).
    supports_fn = getattr(indexes, "cut_edge_supports", None)
    known_supports = supports_fn(name, extra) \
        if supports_fn is not None else None
    with tracing.span("merge", shards=partition.shards, kind="truss"):
        strong, suspects = merge_truss_reports(
            graph, reports, k, extra_edges=extra,
            known_supports=known_supports)
        verify_truss_boundary(graph, strong, suspects, k)
    return strong


def worker_finish(engine, name, algorithm, q, k, keywords, base):
    """Finish one sharded query inside the whole-query worker
    pipeline: the parent's merge reconciled the cross-shard structural
    phase into ``base``; the verification / keyword-enumeration phase
    runs against the cached frozen payload (in a worker process under
    the process backend, in-process on the same CSR snapshot
    otherwise).  Raising callers fall back to the parent-side finish.
    """
    return engine.search_full_query(name, algorithm, q, k,
                                    keywords=keywords, base=base)


def sharded_truss_search(engine, name, algorithm, q, k, keywords=None):
    """Run one triangle-family search partition-parallel.

    ``k-truss``: the merged k-truss edge set replaces the global
    decomposition (a level-``k`` query only ever asks "is this edge's
    truss >= k"), and the triangle-connectivity BFS runs unchanged.
    ``atc``: the merged edge set is the structural base (the
    whole-graph truss reduction).  The finishing phase -- triangle
    BFS or keyword enumeration -- runs through the whole-query worker
    pipeline over the frozen payload; the parent-side finish remains
    as the fallback.  Results are identical to unsharded execution.
    """
    graph = engine.indexes.graph(name)
    q0 = q if isinstance(q, int) else tuple(q)[0]
    if k < 2:
        # Match the serial implementations' validation errors exactly.
        if algorithm == "k-truss":
            raise QueryError("k must be >= 2 for a k-truss community")
        raise QueryError("truss order k must be >= 2")
    try:
        strong = sharded_truss_edge_set(engine, name, k)
    except (QueryTimeoutError, QueryCancelledError):
        # Deadline/cancellation signals belong to admission control;
        # never convert them into more (serial) work.
        raise
    except (CExplorerError, IndexError, KeyError, RuntimeError):
        # A concurrent re-registration or maintenance update mutated
        # the shard set under the fan-out, or the merge failed
        # re-verification.  Fall back to the exact serial computation.
        engine.stats.count("shard_fallbacks")
        strong = None
    if strong is None:
        if algorithm == "k-truss":
            return truss_community_search(graph, q0, k)
        return attributed_truss_search(graph, q, k, keywords=keywords)
    try:
        return worker_finish(engine, name, algorithm, q, k, keywords,
                             ("edges", tuple(sorted(strong))))
    except (QueryTimeoutError, QueryCancelledError):
        raise
    except QueryError:
        # Genuine query validation errors are identical either way;
        # re-running the finish in the parent would only raise again.
        raise
    except (CExplorerError, IndexError, KeyError, RuntimeError):
        engine.stats.count("full_query_fallbacks")
    if algorithm == "k-truss":
        return truss_community_search(graph, q0, k,
                                      truss={e: k for e in strong})
    return attributed_truss_search(graph, q, k, keywords=keywords,
                                   base_edges=strong)


def sharded_search(engine, name, algorithm, q, k, keywords=None):
    """Run one shardable community search; results are identical to
    the unsharded path (the equivalence the tests prove).

    ``global``: the merged component *is* the answer.  ACQ family: the
    merged component is the structural base; the keyword enumeration
    (bounded by the community, not the graph) runs through the
    whole-query worker pipeline against the frozen payload -- the
    parent's merge only reconciles the cross-shard component -- with
    the parent-side enumeration kept as the fallback.  Triangle
    family (``k-truss``/``atc``): dispatched to
    :func:`sharded_truss_search`, whose structural phase is the merged
    global k-truss edge set.
    """
    if algorithm not in SHARDABLE_ALGORITHMS:
        raise CExplorerError(
            "algorithm {!r} does not support sharded execution"
            .format(algorithm))
    if algorithm in TRUSS_FAMILY:
        return sharded_truss_search(engine, name, algorithm, q, k,
                                    keywords=keywords)
    if k < 0:
        raise QueryError("degree constraint k must be >= 0")
    graph = engine.indexes.graph(name)
    q0 = q if isinstance(q, int) else tuple(q)[0]
    component = sharded_structural_community(engine, name, q0, k)
    if algorithm == "global":
        if component is None:
            return []
        return [Community(graph, component, method="Global",
                          query_vertices=(q0,), k=k)]
    variant = "dec" if algorithm == "acq" else algorithm[len("acq-"):]
    if component is not None:
        try:
            return worker_finish(
                engine, name, algorithm, q, k, keywords,
                ("component", tuple(sorted(component))))
        except (QueryTimeoutError, QueryCancelledError):
            raise
        except QueryError:
            # Validation errors (bad keywords, foreign vertices) are
            # identical either way; surface them directly.
            raise
        except (CExplorerError, IndexError, KeyError, RuntimeError):
            engine.stats.count("full_query_fallbacks")
    shim = FixedBaseIndex(graph, q0, k, component)
    return acq_search(graph, q, k, keywords=keywords,
                      algorithm=variant, index=shim)
