"""The zero-copy payload plane: shared-memory CSR segments and the
persistent warm store.

The process backend used to ship every :class:`~repro.graph.frozen.
FrozenGraph` payload to workers as a pickled blob -- one serialize /
copy / deserialize round per dispatch, multiplied by the worker count
in resident memory.  This module separates *data placement* from
*compute* (the Polynesia split, PAPERS.md): the CSR arrays of a frozen
payload are published once into a POSIX shared-memory segment, jobs
carry a tiny picklable *ref*, and workers attach the mapping and build
a :class:`FrozenGraph` over ``memoryview`` slices of it -- zero-copy,
amortised across every dispatch and every worker.

Transport ladder (each rung degrades to the next automatically):

1. **shm** -- ``multiprocessing.shared_memory`` segments.  One
   refcounted :class:`Segment` per ``(graph, shard, version)`` payload,
   owned by the parent; unlinked on version bump, eviction, engine
   shutdown, and (backstop) at interpreter exit, so no
   ``resource_tracker`` leak warnings survive a clean run.
2. **registry** -- a fork-inherited module-level snapshot registry.
   Workers forked *after* a payload was registered see it for free via
   copy-on-write; a registry miss (worker forked too early) disables
   the rung for the process and falls through.
3. **pickle** -- the original pickled-blob path, always correct.

A failed attach in a worker raises
:class:`~repro.util.errors.PayloadCorruptionError` carrying the
payload key, which plugs into the existing resilience ladder:
quarantine -> ``discard_payload`` (which unlinks the segment) -> one
retry against a freshly published payload, with the full-query path
falling back to pickled transport on that retry.  The chaos plane's
``segment_loss`` fault exercises exactly this recovery.

Persistence rides on the same byte layout: :class:`GraphStore` writes
the packed payload to ``frozen.bin`` (re-loaded via ``mmap``, also
zero-copy) next to the serialized CL-tree and a fingerprint, and
:class:`ResultSpill` spills :class:`~repro.engine.cache.ResultCache`
entries to disk keyed by ``(graph, version, query)`` -- together they
let a restarted server come up warm instead of rebuilding indexes and
caches from nothing.
"""

import atexit
import hashlib
import json
import mmap
import os
import pickle
import re
import shutil
import struct
import threading
from array import array
from collections import OrderedDict

from repro.util.errors import CExplorerError, PayloadCorruptionError

try:
    from multiprocessing import shared_memory as _shared_memory
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover - always present on CPython 3.8+
    _shared_memory = None
    _resource_tracker = None

ENV_TRANSPORT = "REPRO_PAYLOAD_TRANSPORT"
TRANSPORTS = ("shm", "registry", "pickle")

# Packed payload layout: magic, then byte lengths of the four parts
# (raw int32 indptr, raw int32 indices, pickled shard extras, pickled
# keyword/label sidecar), then the parts themselves.  Extras decode
# eagerly (shard jobs need ``old_ids``/``global_degree`` up front);
# the sidecar stays *undecoded in the buffer* until a vertex
# attribute is actually read -- structural kernels never pay for it.
# Identical for shm segments and on-disk ``frozen.bin`` files, so
# attach and mmap-load share one decoder.
_MAGIC = b"RPP2"
_HEADER = struct.Struct("<4sQQQQ")

_lock = threading.RLock()
_segments = {}            # name -> Segment (parent-side owners)
_attached = {}            # name -> SharedMemory (worker-side keep-alive)
_decoded = OrderedDict()  # name -> decoded payload (attach memo)
_DECODED_CAP = 64         # segments outliving their decode memo entry
_mmaps = []               # (mmap, file) keep-alive for store loads
_fork_registry = {}       # payload key -> decoded payload object
_registry_owned = set()   # keys this process published to the registry
_registry_ok = True       # poisoned on the first fork-miss
_shm_ok = True            # poisoned when segment creation fails
_seq = 0
_attach_failures = 0


def _transport():
    mode = os.environ.get(ENV_TRANSPORT, "shm").strip().lower()
    return mode if mode in TRANSPORTS else "shm"


def configure(transport):
    """Force the payload transport (``shm``/``registry``/``pickle``).

    Used by tests and benchmarks to compare rungs of the ladder; the
    environment variable :data:`ENV_TRANSPORT` does the same for a
    whole process.  Returns the previous mode.
    """
    if transport not in TRANSPORTS:
        raise CExplorerError(
            "unknown payload transport: {!r} (expected one of {})".format(
                transport, "/".join(TRANSPORTS)))
    previous = _transport()
    os.environ[ENV_TRANSPORT] = transport
    return previous


# ----------------------------------------------------------------------
# packing / unpacking (shared by shm segments and the disk store)
# ----------------------------------------------------------------------
def _array_bytes(arr):
    """Raw little-endian int32 bytes of a CSR array (array or view)."""
    if isinstance(arr, array):
        return arr.tobytes()
    return bytes(arr)


def pack_payload(frozen, extras=None):
    """Pack a frozen graph (plus optional shard ``extras``) into the
    flat segment/file layout.  Returns a list of byte chunks."""
    frozen._ensure_sidecar()
    indptr = _array_bytes(frozen.indptr)
    indices = _array_bytes(frozen.indices)
    meta = pickle.dumps(extras, protocol=pickle.HIGHEST_PROTOCOL)
    sidecar = pickle.dumps((frozen._keywords, frozen._labels),
                           protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(_MAGIC, len(indptr), len(indices),
                          len(meta), len(sidecar))
    return [header, indptr, indices, meta, sidecar]


def unpack_payload(buf, key=None):
    """Decode a packed payload from ``buf`` (a memoryview over a shm
    segment or mmap).  The CSR arrays stay *views into the buffer* --
    this is the zero-copy attach -- and the keyword/label sidecar is
    handed to the snapshot as a lazy loader over its buffer slice, so
    a structural query never unpickles it; only the small shard
    ``extras`` decode eagerly.  Returns the same object shape
    ``pickle.loads`` produced on the blob path: a bare
    :class:`FrozenGraph` for full payloads, ``(frozen, old_ids,
    global_degree)`` for shard payloads.
    """
    from repro.graph.frozen import FrozenGraph

    try:
        magic, n_indptr, n_indices, n_meta, n_sidecar = \
            _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ValueError("bad payload magic: {!r}".format(magic))
        off = _HEADER.size
        indptr = buf[off:off + n_indptr].cast("i")
        off += n_indptr
        indices = buf[off:off + n_indices].cast("i")
        off += n_indices
        extras = pickle.loads(bytes(buf[off:off + n_meta]))
        off += n_meta
        side = buf[off:off + n_sidecar]
    except PayloadCorruptionError:
        raise
    except Exception as exc:
        raise PayloadCorruptionError(
            "payload segment decode failed: {}".format(exc), key=key)

    def load_sidecar(view=side, key=key):
        # The closed-over view pins the segment/mmap mapping alive
        # for as long as the snapshot may still need it.
        try:
            return pickle.loads(bytes(view))
        except Exception as exc:
            raise PayloadCorruptionError(
                "payload sidecar decode failed: {}".format(exc),
                key=key)

    frozen = FrozenGraph(indptr, indices, None, None,
                         sidecar_loader=load_sidecar)
    if extras is None:
        return frozen
    return (frozen,) + tuple(extras)


# ----------------------------------------------------------------------
# refs: the tiny picklable objects that travel in job args
# ----------------------------------------------------------------------
class ShmPayloadRef:
    """Locator for a payload living in a shared-memory segment."""

    __slots__ = ("segment", "key", "nbytes", "corrupted")

    def __init__(self, segment, key, nbytes, corrupted=False):
        self.segment = segment
        self.key = key
        self.nbytes = nbytes
        self.corrupted = corrupted

    def __repr__(self):
        return "ShmPayloadRef(segment={!r}, key={!r})".format(
            self.segment, self.key)


class RegistryPayloadRef:
    """Locator for a payload in the fork-inherited registry."""

    __slots__ = ("key", "corrupted")

    def __init__(self, key, corrupted=False):
        self.key = key
        self.corrupted = corrupted

    def __repr__(self):
        return "RegistryPayloadRef(key={!r})".format(self.key)


def is_ref(obj):
    """Whether ``obj`` is a payload-plane locator (vs a pickled blob
    or an in-process payload object)."""
    return isinstance(obj, (ShmPayloadRef, RegistryPayloadRef))


def corrupt_ref(ref):
    """A detectably-corrupted copy of ``ref`` (the chaos plane's
    ``corrupt`` fault on zero-copy transport): attaching it raises
    :class:`PayloadCorruptionError` with the *real* key, so quarantine
    targets the right payload."""
    if isinstance(ref, ShmPayloadRef):
        return ShmPayloadRef(ref.segment, ref.key, ref.nbytes,
                             corrupted=True)
    return RegistryPayloadRef(ref.key, corrupted=True)


# ----------------------------------------------------------------------
# parent side: segment ownership
# ----------------------------------------------------------------------
if _shared_memory is not None:
    class _QuietSharedMemory(_shared_memory.SharedMemory):
        """``SharedMemory`` that tolerates live exported views.

        A zero-copy consumer in *this* process (inline fallback,
        thread backend, mmap twin) holds memoryviews into the
        mapping, so ``close`` during an unlink -- or ``__del__`` at
        interpreter shutdown -- would raise ``BufferError: cannot
        close exported pointers exist``.  Swallowing it is correct:
        the name is unlinked eagerly either way, and the mapping
        itself is reclaimed once the last view dies.
        """

        def close(self):
            try:
                super().close()
            except BufferError:
                pass

        def __del__(self):
            try:
                super().__del__()
            except Exception:
                pass


class Segment:
    """A refcounted parent-side owner of one shared-memory segment.

    The publishing payload holds one reference; :meth:`release` at
    zero closes and unlinks.  ``destroy`` is idempotent so an
    externally-lost segment (``segment_loss`` chaos, atexit sweep)
    and a later release do not double-unlink.
    """

    __slots__ = ("name", "key", "nbytes", "_shm", "_refs", "_pid")

    def __init__(self, shm, key, nbytes):
        self.name = shm.name
        self.key = key
        self.nbytes = nbytes
        self._shm = shm
        self._refs = 1
        self._pid = os.getpid()

    @property
    def ref(self):
        return ShmPayloadRef(self.name, self.key, self.nbytes)

    def acquire(self):
        with _lock:
            self._refs += 1
        return self

    def release(self):
        with _lock:
            self._refs -= 1
            dead = self._refs <= 0
        if dead:
            self.destroy()

    def destroy(self):
        with _lock:
            shm, self._shm = self._shm, None
            _segments.pop(self.name, None)
            _decoded.pop(self.name, None)
        if shm is None or self._pid != os.getpid():
            return
        try:
            shm.close()
        except Exception:  # pragma: no cover - close never fails first
            pass
        try:
            shm.unlink()
        except Exception:
            pass


class _RegistrySlot:
    """Segment-shaped owner for the fork-registry rung."""

    __slots__ = ("key", "nbytes", "_refs")

    def __init__(self, key, nbytes):
        self.key = key
        self.nbytes = nbytes
        self._refs = 1

    @property
    def name(self):
        return None

    @property
    def ref(self):
        return RegistryPayloadRef(self.key)

    def acquire(self):
        with _lock:
            self._refs += 1
        return self

    def release(self):
        with _lock:
            self._refs -= 1
            dead = self._refs <= 0
        if dead:
            self.destroy()

    def destroy(self):
        with _lock:
            _fork_registry.pop(self.key, None)
            _registry_owned.discard(self.key)


def _next_segment_name():
    global _seq
    with _lock:
        _seq += 1
        return "repro-{:x}-{:x}".format(os.getpid(), _seq)


def publish(key, frozen, extras=None):
    """Place one frozen payload on the best available zero-copy rung.

    Returns a :class:`Segment`/:class:`_RegistrySlot` owner (holding
    one reference) or ``None`` when the plane is disabled or every
    rung is unavailable -- the caller then ships the pickled blob.
    """
    global _shm_ok
    mode = _transport()
    if mode == "pickle":
        return None
    if mode == "shm" and _shm_ok and _shared_memory is not None:
        chunks = pack_payload(frozen, extras)
        nbytes = sum(len(c) for c in chunks)
        try:
            shm = _QuietSharedMemory(
                name=_next_segment_name(), create=True,
                size=max(nbytes, 1))
            off = 0
            for chunk in chunks:
                shm.buf[off:off + len(chunk)] = chunk
                off += len(chunk)
        except Exception:
            # /dev/shm missing, full, or unwritable: poison the rung
            # for this process and fall through to the registry.
            _shm_ok = False
        else:
            segment = Segment(shm, key, nbytes)
            with _lock:
                _segments[segment.name] = segment
            return segment
    if _registry_ok:
        payload = frozen if extras is None else (frozen,) + tuple(extras)
        with _lock:
            _fork_registry[key] = payload
            _registry_owned.add(key)
        return _RegistrySlot(key, 0)
    return None


# ----------------------------------------------------------------------
# worker side: attach
# ----------------------------------------------------------------------
def _attach_shm(name):
    """Open an existing segment without taking unlink responsibility.

    Before Python 3.13 every ``SharedMemory`` attach registers with
    the caller's ``resource_tracker`` (bpo-39959), which would unlink
    the parent's segment when a worker exits.  Forked workers share
    the parent's tracker process, so even register-then-unregister is
    wrong (the worker's unregister would strip the *parent's* claim
    and its eventual unlink would then trip the tracker); instead the
    registration is suppressed entirely for the duration of the
    attach.
    """
    try:
        return _QuietSharedMemory(name=name, track=False)
    except TypeError:
        pass
    if _resource_tracker is None:  # pragma: no cover - fallback
        return _QuietSharedMemory(name=name)
    original = _resource_tracker.register
    _resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _QuietSharedMemory(name=name)
    finally:
        _resource_tracker.register = original


def attach(ref):
    """Resolve a payload ref to the payload object, zero-copy.

    Any failure -- corrupted ref, unlinked segment, registry miss --
    raises :class:`PayloadCorruptionError` carrying the payload key,
    which the engine's quarantine/retry ladder turns into a fresh
    payload on the next attempt.
    """
    global _attach_failures, _registry_ok
    if getattr(ref, "corrupted", False):
        with _lock:
            _attach_failures += 1
        raise PayloadCorruptionError(
            "payload ref corrupted in flight", key=ref.key)
    if isinstance(ref, RegistryPayloadRef):
        with _lock:
            payload = _fork_registry.get(ref.key)
        if payload is None:
            with _lock:
                _attach_failures += 1
                _registry_ok = False
            raise PayloadCorruptionError(
                "payload missing from fork registry (worker forked "
                "before publish)", key=ref.key)
        return payload
    with _lock:
        cached = _decoded.get(ref.segment)
        if cached is not None:
            _decoded.move_to_end(ref.segment)
            return cached
        owner = _segments.get(ref.segment)
        shm = _attached.get(ref.segment)
    if owner is not None and owner._shm is not None:
        # In-process resolution (inline fallback, thread backend): the
        # segment is our own -- decode straight from the live mapping.
        return _memo_decoded(ref.segment, unpack_payload(
            owner._shm.buf, key=ref.key))
    if shm is None:
        try:
            shm = _attach_shm(ref.segment)
        except Exception as exc:
            with _lock:
                _attach_failures += 1
            raise PayloadCorruptionError(
                "shared-memory attach failed: {}".format(exc),
                key=ref.key)
        with _lock:
            # Keep the mapping alive for the worker's lifetime: the
            # decoded FrozenGraph holds memoryviews into it, and a
            # parent-side unlink leaves attached mappings valid.
            _attached.setdefault(ref.segment, shm)
    return _memo_decoded(ref.segment, unpack_payload(shm.buf,
                                                     key=ref.key))


def _memo_decoded(name, payload):
    """Memoize the decoded payload per (never-reused) segment name:
    repeat jobs against the same immutable snapshot skip the sidecar
    decode entirely -- the amortisation that makes attach cost
    per-segment, not per-dispatch."""
    with _lock:
        _decoded[name] = payload
        _decoded.move_to_end(name)
        while len(_decoded) > _DECODED_CAP:
            _decoded.popitem(last=False)
    return payload


def lose_segment(ref):
    """Destroy the backing of ``ref`` in place (the ``segment_loss``
    chaos fault: a torn attachment).  The ref itself still travels, so
    the worker's attach fails exactly like a real loss."""
    if isinstance(ref, ShmPayloadRef):
        with _lock:
            owner = _segments.get(ref.segment)
        if owner is not None:
            owner.destroy()
        elif _shared_memory is not None:
            try:
                shm = _attach_shm(ref.segment)
                shm.close()
                shm.unlink()
            except Exception:
                pass
    else:
        with _lock:
            _fork_registry.pop(ref.key, None)


def note_attach_failure(key):
    """Parent-side hook: a worker reported a failed attach for
    ``key``.  If the key rode the fork registry, the rung is poisoned
    (later forks will not inherit later payloads either)."""
    global _registry_ok
    with _lock:
        if key in _registry_owned:
            _registry_ok = False


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def live_segments():
    """Count of shared-memory segments this process currently owns."""
    pid = os.getpid()
    with _lock:
        return sum(1 for seg in _segments.values()
                   if seg._pid == pid and seg._shm is not None)


def live_bytes():
    """Total payload bytes resident in owned segments."""
    pid = os.getpid()
    with _lock:
        return sum(seg.nbytes for seg in _segments.values()
                   if seg._pid == pid and seg._shm is not None)


def plane_stats():
    """The payload-plane block of the engine metrics document."""
    with _lock:
        registry_entries = len(_fork_registry)
        failures = _attach_failures
    return {
        "transport": _transport(),
        "shm_available": bool(_shared_memory is not None and _shm_ok),
        "shm_segments": live_segments(),
        "payload_bytes": live_bytes(),
        "registry_entries": registry_entries,
        "attach_failures": failures,
    }


@atexit.register
def _sweep():
    """Backstop: unlink every still-owned segment at interpreter exit
    so no run -- even one that skipped engine shutdown -- leaves
    ``resource_tracker`` warnings or orphaned ``/dev/shm`` files.
    Guarded per-segment by owner pid: forked workers inherit the
    registry but must never unlink the parent's segments."""
    pid = os.getpid()
    with _lock:
        owned = [seg for seg in _segments.values() if seg._pid == pid]
    for seg in owned:
        seg.destroy()


# ----------------------------------------------------------------------
# the persistent warm store
# ----------------------------------------------------------------------
STORE_FORMAT = "c-explorer-store"
STORE_VERSION = 2  # 2: RPP2 split-sidecar frozen.bin layout
ENV_STORE = "REPRO_STORE_DIR"


def _atomic_write(path, data):
    tmp = "{}.tmp.{}".format(path, os.getpid())
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _stable(value):
    """A deterministic, order-independent form of a cache key part
    (frozenset iteration order varies across interpreter runs)."""
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted(_stable(v) for v in value))
    if isinstance(value, (list, tuple)):
        return tuple(_stable(v) for v in value)
    return value


def fingerprint(frozen):
    """A restart-stable identity for a frozen graph: CSR bytes plus a
    canonical rendering of labels and keyword sets.  Pickle bytes are
    *not* stable across runs (hash-randomised set ordering), so the
    sidecar is hashed in sorted form instead."""
    digest = hashlib.sha256()
    digest.update(_array_bytes(frozen.indptr))
    digest.update(b"|")
    digest.update(_array_bytes(frozen.indices))
    digest.update(b"|")
    for v in range(frozen.vertex_count):
        digest.update(repr((frozen.label(v),
                            sorted(frozen.keywords(v)))).encode("utf-8"))
    return digest.hexdigest()


def load_frozen_mmap(path, key=None):
    """Memory-map a packed payload file and decode it zero-copy (the
    warm-restart twin of a shm attach).  The mapping is pinned for the
    process lifetime -- the returned graph's CSR arrays are views into
    it."""
    handle = open(path, "rb")
    try:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except Exception:
        handle.close()
        raise
    with _lock:
        _mmaps.append((mapping, handle))
    return unpack_payload(memoryview(mapping), key=key)


class GraphStore:
    """Per-graph on-disk store: packed frozen payload, serialized
    CL-tree (the :mod:`repro.core.persistence` JSON format), metadata
    with a content fingerprint, and the result-spill directory.

    Layout::

        <root>/<slug>/meta.json      identity + fingerprint
        <root>/<slug>/frozen.bin     packed payload (mmap-loaded)
        <root>/<slug>/cltree.json    c-explorer-cltree document
        <root>/<slug>/results/<version>/<keyhash>.pkl
    """

    def __init__(self, root):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # -- paths ---------------------------------------------------------
    def _slug(self, name):
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)[:48]
        tag = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
        return "{}-{}".format(safe, tag)

    def graph_dir(self, name, create=False):
        path = os.path.join(self.root, self._slug(name))
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def results_dir(self, name, version, create=False):
        path = os.path.join(self.graph_dir(name), "results", str(version))
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    # -- save / load ---------------------------------------------------
    def save(self, name, frozen, cltree=None):
        """Persist ``name``'s frozen payload (and CL-tree, when built)
        with its fingerprint.  Atomic per file: a crashed save leaves
        the previous generation readable."""
        from repro.core import persistence

        base = self.graph_dir(name, create=True)
        _atomic_write(os.path.join(base, "frozen.bin"),
                      b"".join(pack_payload(frozen)))
        if cltree is not None:
            doc = json.dumps(persistence.cltree_to_dict(cltree),
                             indent=0, sort_keys=True)
            _atomic_write(os.path.join(base, "cltree.json"),
                          doc.encode("utf-8"))
        meta = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "graph": name,
            "fingerprint": fingerprint(frozen),
            "vertex_count": frozen.vertex_count,
            "edge_count": frozen.edge_count,
            "has_cltree": cltree is not None or self.has_cltree(name),
        }
        _atomic_write(os.path.join(base, "meta.json"),
                      json.dumps(meta, indent=2).encode("utf-8"))
        return meta

    def meta(self, name):
        """The stored metadata for ``name`` or ``None``."""
        path = os.path.join(self.graph_dir(name), "meta.json")
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return None
        if doc.get("format") != STORE_FORMAT:
            return None
        return doc

    def has_cltree(self, name):
        return os.path.exists(os.path.join(self.graph_dir(name),
                                           "cltree.json"))

    def matches(self, name, frozen):
        """Whether the stored snapshot is byte-identical to
        ``frozen`` (the warm-restart admission check)."""
        meta = self.meta(name)
        return (meta is not None
                and meta.get("fingerprint") == fingerprint(frozen))

    def load_frozen(self, name):
        """The stored payload as an mmap-backed frozen graph."""
        return load_frozen_mmap(
            os.path.join(self.graph_dir(name), "frozen.bin"))

    def load_cltree(self, name, graph):
        """Deserialize the stored CL-tree bound to ``graph``."""
        from repro.core import persistence

        return persistence.load_cltree(
            os.path.join(self.graph_dir(name), "cltree.json"), graph)

    # -- inspection / maintenance (the ``repro cache`` CLI) ------------
    def describe(self):
        """Occupancy report: per-graph payload/CL-tree/result bytes."""
        graphs = []
        total_bytes = 0
        for entry in sorted(os.listdir(self.root)):
            base = os.path.join(self.root, entry)
            meta_path = os.path.join(base, "meta.json")
            if not os.path.isfile(meta_path):
                continue
            try:
                with open(meta_path, encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, ValueError):
                continue
            sizes = {}
            for fname in ("frozen.bin", "cltree.json"):
                path = os.path.join(base, fname)
                sizes[fname] = (os.path.getsize(path)
                                if os.path.exists(path) else 0)
            result_entries = 0
            result_bytes = 0
            results = os.path.join(base, "results")
            if os.path.isdir(results):
                for dirpath, _dirs, files in os.walk(results):
                    for fname in files:
                        result_entries += 1
                        result_bytes += os.path.getsize(
                            os.path.join(dirpath, fname))
            doc = {
                "graph": meta.get("graph", entry),
                "fingerprint": meta.get("fingerprint"),
                "payload_bytes": sizes["frozen.bin"],
                "cltree_bytes": sizes["cltree.json"],
                "result_entries": result_entries,
                "result_bytes": result_bytes,
            }
            total_bytes += (sizes["frozen.bin"] + sizes["cltree.json"]
                            + result_bytes)
            graphs.append(doc)
        return {"path": self.root, "graphs": graphs,
                "total_bytes": total_bytes}

    def clear(self):
        """Delete every stored graph.  Returns the number removed."""
        removed = 0
        for entry in list(os.listdir(self.root)):
            base = os.path.join(self.root, entry)
            if os.path.isdir(base) and os.path.isfile(
                    os.path.join(base, "meta.json")):
                shutil.rmtree(base, ignore_errors=True)
                removed += 1
        return removed


class ResultSpill:
    """Disk spill for the result cache, keyed ``(graph, version,
    query)``.

    Entries are written in the graph-free :meth:`Community.to_wire`
    form (values that are not community lists stay memory-only), so
    readmission just rebinds to the live graph.  Version is part of
    the path: a maintenance bump orphans old entries instead of
    requiring coordinated invalidation, and a warm restart readmits
    only results for the exact stored snapshot.
    """

    def __init__(self, store, version_of, rebind):
        self._store = store
        self._version_of = version_of
        self._rebind = rebind
        self._io_lock = threading.Lock()
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.bytes_written = 0

    def _path(self, key, version, create=False):
        token = repr(_stable(key)).encode("utf-8")
        digest = hashlib.sha256(token).hexdigest()
        directory = self._store.results_dir(key[0], version, create=create)
        return os.path.join(directory, digest + ".pkl")

    def _encode(self, value):
        if not isinstance(value, list) or not value:
            return None
        wires = []
        for item in value:
            to_wire = getattr(item, "to_wire", None)
            if to_wire is None:
                return None
            wires.append(to_wire())
        return wires

    def offer(self, key, value, vertices):
        """Spill one evicted/flushed entry; silently skips values with
        no wire form and graphs with no known version."""
        wires = self._encode(value)
        if wires is None:
            return False
        version = self._version_of(key[0])
        if version is None:
            return False
        blob = pickle.dumps(
            {"wires": wires,
             "vertices": sorted(vertices) if vertices else None},
            protocol=pickle.HIGHEST_PROTOCOL)
        try:
            with self._io_lock:
                _atomic_write(self._path(key, version, create=True), blob)
        except OSError:
            self.errors += 1
            return False
        self.writes += 1
        self.bytes_written += len(blob)
        return True

    def fetch(self, key):
        """Readmit a spilled entry for the graph's *current* version,
        or ``None``.  Returns ``(value, vertices)``."""
        version = self._version_of(key[0])
        if version is None:
            self.misses += 1
            return None
        path = self._path(key, version)
        try:
            with open(path, "rb") as handle:
                doc = pickle.loads(handle.read())
            value = self._rebind(key[0], doc["wires"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.errors += 1
            return None
        self.hits += 1
        vertices = doc.get("vertices")
        return value, (set(vertices) if vertices is not None else None)

    def stats(self):
        return {
            "enabled": True,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "bytes_written": self.bytes_written,
        }
