"""``repro.engine`` -- the query execution engine.

Why this layer exists
=====================

C-Explorer (Fang et al., PVLDB 2017) is an *interactive service*: many
concurrent users issue ACQ / k-core / k-truss searches against shared
graphs while uploads and edge edits mutate those graphs underneath.
The seed reproduction ran every ``/api/search`` inline on its HTTP
handler thread with no result reuse and ad-hoc lazy index builds --
fine for one user, hopeless for the ROADMAP's "heavy traffic from
millions of users".  This package is the execution layer between the
server and the algorithms; every later scaling step (sharded graphs,
an async server, a persistent cache) plugs into it.

The modules
===========

``executor``
    :class:`~repro.engine.executor.QueryEngine`: a bounded worker pool
    with an admission-controlled request queue (full queue -> immediate
    :class:`~repro.util.errors.EngineBusyError`, surfaced as HTTP 429),
    per-query deadlines, best-effort cancellation, and a synchronous
    ``execute`` path for library callers.

``cache``
    :class:`~repro.engine.cache.ResultCache`: an LRU over
    ``(graph, algorithm, normalized query params)`` with
    hit/miss/eviction/invalidation counters and footprint-based
    *selective* invalidation, plus
    :class:`~repro.engine.cache.SubproblemMemo` for intermediates
    (core decompositions, CL-tree keyword lookups) shared across
    overlapping queries.

``index_manager``
    :class:`~repro.engine.index_manager.IndexManager`: explicit
    CL-tree/k-core/truss lifecycle -- build on upload, eagerly, or in
    the background; versioned immutable snapshots (the truss index is
    versioned independently); invalidation hooks wired into
    :class:`~repro.core.maintenance.CoreMaintainer` and
    :class:`~repro.core.truss_maintenance.TrussMaintainer` so
    incremental edge updates bump the versions and selectively evict
    cached results -- with both maintainers attached, even k-truss/ATC
    entries survive updates disjoint from their footprint.

``plans``
    :func:`~repro.engine.plans.plan_search`: picks the CS strategy
    (CL-tree-backed ACQ vs. index-free local expansion) from graph
    size, index readiness, and keyword constraints; powers the
    ``"algorithm": "auto"`` API.

``stats``
    :class:`~repro.engine.stats.EngineStats`: latency histograms
    (p50/p95) and throughput counters behind ``/api/metrics``, plus
    per-shard fan-out latency and skew.

``sharding``
    Partition-parallel execution for large graphs:
    :class:`~repro.engine.sharding.GraphPartitioner` (deterministic
    hash or greedy edge-cut placement),
    :class:`~repro.engine.sharding.ShardedIndexManager` (one versioned
    CL-tree/k-core/truss index per shard, maintenance routed to the
    owning shard only), and the exact fan-out/merge query paths behind
    :meth:`~repro.engine.executor.QueryEngine.search_sharded` -- the
    k-core family merges certified vertices, the truss family merges
    certified edges and peels only the uncertain/cut remainder.

``backends``
    Execution backends.  :class:`~repro.engine.backends.ProcessBackend`
    plus the picklable job functions that let shard subqueries and
    CL-tree builds run in a ``multiprocessing`` pool over frozen CSR
    snapshots (:class:`~repro.graph.frozen.FrozenGraph`).

Choosing a backend
==================

``QueryEngine(backend="thread")`` (default) keeps everything
in-process: shared memory, no serialisation, lowest latency -- the
right choice for small graphs, warm-cache interactive traffic, and
single-core hosts, and exactly the pre-backend behaviour.
``backend="process"`` ships CPU-bound structural work (per-shard
certification scans, core decompositions, CL-tree builds) to worker
processes fed by pickled :class:`~repro.graph.frozen.FrozenGraph`
snapshots, dodging the GIL where the ROADMAP says it hurts most --
pick it for sharded graphs on multi-core hosts where cold structural
queries and index builds dominate.  Results are identical either way
(a property-tested invariant); the process backend transparently
falls back in-process on any pool failure, and its overheads are
observable as ``snapshot_build`` / ``shard_ipc`` /
``index_build_ipc`` latency ops in ``/api/metrics``::

    explorer = CExplorer(workers=4, backend="process")
    explorer.add_graph("dblp", generate_dblp_graph(),
                       shards=4, partitioner="greedy")
    explorer.search("acq", "Jim Gray", k=4)   # fan-out in the pool
    explorer.engine.snapshot()["backend"]     # "process"

Sharded graphs
==============

A graph registered with ``shards > 1`` is partitioned once; each
shard gets its own versioned index entry, and shardable searches
(``global`` and the ACQ family) fan their structural phase out over
the worker pool -- each shard scans only its own vertices, certifying
survivors with its shard-local core numbers -- then the engine merges,
re-verifies boundary-crossing vertices, and caches the merged result
under the same key the unsharded path uses.  ``shards=1`` keeps the
exact pre-sharding execution path, and sharded results are identical
to unsharded ones by construction (a tested invariant)::

    from repro import CExplorer
    from repro.datasets import generate_dblp_graph

    explorer = CExplorer(workers=4)
    explorer.add_graph("dblp", generate_dblp_graph(),
                       shards=4, partitioner="greedy")

    explorer.search("acq", "Jim Gray", k=4)   # fans out over 4 shards
    explorer.engine.snapshot()["partitions"]  # balance, cut, versions
    explorer.engine.stats.snapshot()["sharding"]   # per-shard latency

    maintainer = explorer.maintainer()
    maintainer.insert_edge(u, v)    # bumps the owning shard's index
                                    # version; other shards keep their
                                    # cached decompositions

Quickstart
==========

::

    from repro import CExplorer
    from repro.datasets import generate_dblp_graph

    explorer = CExplorer(workers=4)
    explorer.add_graph("dblp", generate_dblp_graph())

    future = explorer.engine.search("acq", "Jim Gray", k=4)
    communities = future.result(timeout=5.0)

    explorer.engine.snapshot()      # queue depth, hit rate, p50/p95

Mutations route through a maintainer so caches stay honest::

    maintainer = explorer.maintainer()      # wired CoreMaintainer
    maintainer.insert_edge(u, v)            # bumps the index version,
                                            # selectively evicts
"""

from repro.engine.backends import (
    BACKENDS,
    ProcessBackend,
    ProcessBackendError,
)
from repro.engine.cache import ResultCache, SubproblemMemo, query_key
from repro.engine.executor import EngineFuture, QueryEngine
from repro.engine.faults import FaultPlan, FaultRule
from repro.engine.index_manager import IndexManager, IndexSnapshot
from repro.engine.plans import QueryPlan, plan_search
from repro.engine.retry import (
    CircuitBreaker,
    ResiliencePlane,
    RetryPolicy,
)
from repro.engine.sharding import (
    GraphPartitioner,
    Partition,
    ShardedIndexManager,
    ShardMergeError,
    ShardPayload,
)
from repro.engine.stats import EngineStats, LatencyHistogram
from repro.engine.tracing import QueryTrace, TraceRecorder

__all__ = [
    "BACKENDS",
    "CircuitBreaker",
    "EngineFuture",
    "EngineStats",
    "FaultPlan",
    "FaultRule",
    "GraphPartitioner",
    "IndexManager",
    "IndexSnapshot",
    "LatencyHistogram",
    "Partition",
    "ProcessBackend",
    "ProcessBackendError",
    "QueryEngine",
    "QueryPlan",
    "QueryTrace",
    "ResiliencePlane",
    "ResultCache",
    "RetryPolicy",
    "ShardMergeError",
    "ShardPayload",
    "ShardedIndexManager",
    "SubproblemMemo",
    "TraceRecorder",
    "plan_search",
    "query_key",
]
