"""Engine observability: latency histograms and throughput counters.

The paper pitches C-Explorer as an *online* system ("the communities
will be returned instantly"); once queries run through a shared worker
pool, "instantly" has to be measured, not assumed.  This module is the
measurement substrate the engine reports through ``/api/metrics``:

* :class:`LatencyHistogram` -- per-operation latency distribution with
  log-scale buckets (for the shape) and a bounded reservoir of recent
  samples (for accurate p50/p95 over the live window);
* :class:`EngineStats` -- named counters plus one histogram per
  operation kind (``search``, ``detect``, ``compare``, ``batch``),
  thread-safe, snapshotted as one JSON-friendly dict;
* per-graph **fan-out/skew counters** for sharded execution
  (:meth:`EngineStats.observe_fanout`) -- partition skew is the
  classic hazard of hash-partitioned parallel operators, so each
  fan-out records its per-shard durations and the skew ratio
  (slowest shard over mean), exposed under ``sharding`` in the
  snapshot.

Counters are monotonic; histograms age out naturally as the reservoir
rolls, so percentiles describe recent traffic rather than boot-time
behaviour.
"""

import threading
import time
from collections import deque

# Completion timestamps are kept for this long to compute the
# recent-window throughput: the lifetime completions/uptime ratio
# decays toward zero on an idle server, which is useless for alerting.
RECENT_WINDOW_SECONDS = 60.0

# Bucket upper bounds in seconds; the last bucket is open-ended.  A
# decade-per-3-buckets geometric ladder from 100us to 100s covers both
# cache hits and the slowest whole-graph detections.
BUCKET_EDGES = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


class LatencyHistogram:
    """Latency distribution for one operation kind.

    Not thread-safe on its own; :class:`EngineStats` provides the lock.
    """

    __slots__ = ("count", "total", "max", "buckets", "_reservoir",
                 "_reservoir_size", "_next")

    def __init__(self, reservoir_size=512):
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets = [0] * (len(BUCKET_EDGES) + 1)
        self._reservoir = []
        self._reservoir_size = reservoir_size
        self._next = 0

    def record(self, seconds):
        """Fold one observation into the buckets and the reservoir."""
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        for i, edge in enumerate(BUCKET_EDGES):
            if seconds <= edge:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        # Ring-buffer reservoir: percentiles reflect the last N samples.
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(seconds)
        else:
            self._reservoir[self._next] = seconds
            self._next = (self._next + 1) % self._reservoir_size

    @staticmethod
    def _rank(ordered, p):
        """The ``p``-th percentile from an already-sorted sample list
        (rank clamped into the list, so p<=0 is the min and p>=100 the
        max)."""
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def percentile(self, p):
        """The ``p``-th percentile (0..100) over the sample window."""
        if not self._reservoir:
            return 0.0
        return self._rank(sorted(self._reservoir), p)

    def snapshot(self):
        """Count, mean, p50/p95/max (ms) and the log-scale buckets.

        The reservoir is sorted once and both percentiles are read
        from the same ordered list.  ``buckets`` pairs each upper
        bound in seconds with its (non-cumulative) count; the final
        open-ended bucket has bound ``None`` -- exactly what the
        Prometheus exposition needs to build cumulative ``le`` series.
        """
        mean = self.total / self.count if self.count else 0.0
        if self._reservoir:
            ordered = sorted(self._reservoir)
            p50 = self._rank(ordered, 50)
            p95 = self._rank(ordered, 95)
        else:
            p50 = p95 = 0.0
        edges = list(BUCKET_EDGES) + [None]
        return {
            "count": self.count,
            "mean_ms": round(mean * 1000, 3),
            "p50_ms": round(p50 * 1000, 3),
            "p95_ms": round(p95 * 1000, 3),
            "max_ms": round(self.max * 1000, 3),
            "total_seconds": round(self.total, 6),
            "buckets": [[edge, count]
                        for edge, count in zip(edges, self.buckets)],
        }


class EngineStats:
    """Thread-safe counters + per-operation latency histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._histograms = {}
        self._fanouts = {}
        self._completions = deque()
        self.started_at = time.time()

    def count(self, name, n=1):
        """Bump counter ``name`` by ``n``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def get(self, name):
        """Current value of counter ``name`` (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, op, seconds):
        """Record one ``op`` execution that took ``seconds``."""
        now = time.time()
        with self._lock:
            hist = self._histograms.get(op)
            if hist is None:
                hist = self._histograms[op] = LatencyHistogram()
            hist.record(seconds)
            self._completions.append(now)
            self._prune(now)

    def _prune(self, now):
        """Drop completion timestamps older than the recent window
        (caller holds the lock)."""
        horizon = now - RECENT_WINDOW_SECONDS
        while self._completions and self._completions[0] < horizon:
            self._completions.popleft()

    def latency_probe(self, op):
        """``(sample count, p95 seconds)`` for one operation -- the
        cheap read the hedging policy makes before calling a running
        job a straggler (see :mod:`repro.engine.retry`)."""
        with self._lock:
            hist = self._histograms.get(op)
            if hist is None:
                return 0, 0.0
            return hist.count, hist.percentile(95)

    def observe_fanout(self, graph, seconds):
        """Record one sharded fan-out over ``graph``: ``seconds[i]``
        is shard ``i``'s execution time.  Keeps cumulative per-shard
        totals, the latest per-shard durations, and the worst skew
        ratio seen (max shard time over mean) -- the number that says
        the partitioner is feeding one shard too much."""
        if not seconds:
            return
        mean = sum(seconds) / len(seconds)
        skew = (max(seconds) / mean) if mean > 0 else 1.0
        with self._lock:
            rec = self._fanouts.get(graph)
            if rec is None or len(rec["total_seconds"]) != len(seconds):
                rec = self._fanouts[graph] = {
                    "fanouts": 0,
                    "total_seconds": [0.0] * len(seconds),
                    "last_ms": [0.0] * len(seconds),
                    "last_skew": 1.0,
                    "max_skew": 1.0,
                }
            rec["fanouts"] += 1
            for i, s in enumerate(seconds):
                rec["total_seconds"][i] += s
            rec["last_ms"] = [round(s * 1000, 3) for s in seconds]
            rec["last_skew"] = round(skew, 4)
            rec["max_skew"] = max(rec["max_skew"], round(skew, 4))

    def snapshot(self):
        """One JSON-friendly dict: counters, latency, throughput."""
        with self._lock:
            now = time.time()
            elapsed = max(now - self.started_at, 1e-9)
            completed = sum(h.count for h in self._histograms.values())
            self._prune(now)
            window = max(min(elapsed, RECENT_WINDOW_SECONDS), 1e-9)
            doc = {
                "uptime_seconds": round(elapsed, 3),
                "throughput_per_second": round(completed / elapsed, 4),
                "throughput_recent_per_second": round(
                    len(self._completions) / window, 4),
                "counters": dict(self._counters),
                "latency": {op: hist.snapshot()
                            for op, hist in self._histograms.items()},
            }
            if self._fanouts:
                doc["sharding"] = {
                    graph: {
                        "fanouts": rec["fanouts"],
                        "shards": len(rec["total_seconds"]),
                        "total_seconds": [round(s, 6)
                                          for s in rec["total_seconds"]],
                        "last_ms": list(rec["last_ms"]),
                        "last_skew": rec["last_skew"],
                        "max_skew": rec["max_skew"],
                    }
                    for graph, rec in self._fanouts.items()
                }
            return doc
