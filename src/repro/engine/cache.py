"""The engine's result cache and memoized subproblem store.

Interactive exploration repeats itself: every ``display`` click
re-runs its search, compare screens re-run each method, and many users
probe the same hub authors.  FDB-style sharing of computation across
overlapping queries (PAPERS.md) is the win this module captures:

* :class:`ResultCache` -- an LRU over ``(graph, algorithm, normalized
  query params)`` with hit/miss/eviction/invalidation counters and
  *selective* invalidation: entries record the vertex footprint of
  their result, so a maintenance update only evicts entries whose
  footprint touches the affected region (for algorithm families where
  that is sound; everything else is dropped conservatively).

* :class:`SubproblemMemo` -- memoized shared subproblems (core
  decompositions, CL-tree keyword candidate lists, k-core membership
  sets) keyed by ``(graph, index version, kind, key)``, so overlapping
  queries rebuild none of the expensive intermediates.

Keys are produced by :func:`query_key`, which canonicalises parameter
order (multi-vertex queries and keyword sets are order-insensitive).
"""

import threading
import time
from collections import OrderedDict

from repro.engine import tracing

# Algorithm families for which footprint-based selective invalidation
# is sound.  Their communities are minimum-degree subgraphs: an edge
# update can only change results whose vertex set touches the edge's
# endpoints, the promoted/demoted vertices, or those vertices'
# neighbourhoods (component merges/splits pass through a changed
# vertex's neighbours).
SELECTIVE_SAFE_ALGORITHMS = frozenset(
    {"acq", "acq-inc-s", "acq-inc-t", "global"})

# Triangle-based families.  Their results cascade along triangle
# connectivity, which only a
# :class:`~repro.core.truss_maintenance.TrussMaintainer` tracks: when
# an invalidation event carries the truss-affected vertex set, entries
# whose footprint is disjoint from it survive; without one (core-only
# maintenance) they are dropped conservatively, exactly as before.
TRUSS_SELECTIVE_ALGORITHMS = frozenset({"k-truss", "atc"})

# Invalidation reason labels reported by :meth:`ResultCache.stats` --
# the metrics endpoint surfaces these so a deployment can see whether
# evictions are precise cascades or blind evict-alls.
INVALIDATION_REASONS = ("core-cascade", "truss-cascade", "evict-all")

# Memo kinds holding *truss* intermediates.  Their entries are keyed
# on the graph's independent ``truss_version`` (not the CL-tree/k-core
# index version), so a version-aware invalidation drops them exactly
# when the truss index moved -- core-only rebuilds leave them warm.
TRUSS_MEMO_KINDS = frozenset({"ktruss-strong", "truss"})


def _canonical(value):
    """A hashable canonical form for one parameter value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted(value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


def query_key(graph_name, algorithm, q, k, keywords=None, params=None):
    """Build the canonical cache key for one search.

    Multi-vertex queries and keyword sets are order-insensitive; extra
    ``params`` are normalised recursively (dicts by sorted key).
    """
    if isinstance(q, (list, tuple, set, frozenset)):
        q = tuple(sorted(q))
    kw = frozenset(keywords) if keywords is not None else None
    extras = _canonical(params) if params else ()
    return (graph_name, algorithm, q, k, kw, extras)


class _Entry:
    __slots__ = ("value", "vertices")

    def __init__(self, value, vertices):
        self.value = value
        self.vertices = vertices


class ResultCache:
    """Thread-safe LRU result cache with selective invalidation.

    ``put`` may record the result's vertex footprint (a set of vertex
    ids); :meth:`invalidate` with an ``affected`` set then keeps
    entries provably untouched by the update.  Entries stored without
    a footprint are always dropped on invalidation.
    """

    key = staticmethod(query_key)

    def __init__(self, capacity=512):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidations_by_reason = {
            reason: 0 for reason in INVALIDATION_REASONS}
        # Optional second tier: a
        # :class:`repro.engine.payloads.ResultSpill` the engine wires
        # in when it has a persistent store.  LRU evictees spill to
        # disk instead of vanishing; misses probe the spill and
        # readmit lazily.  ``None`` keeps the cache purely in-memory.
        self.spill = None
        self.spill_hits = 0

    def get(self, key, record_miss=True):
        """The cached value or ``None``; refreshes LRU recency.

        ``record_miss=False`` keeps a speculative probe (the engine's
        fast-path peek, which falls through to a real lookup) from
        double-counting misses.

        When a query trace is active on this thread the lookup is
        recorded as a ``cache_lookup`` span tagged with the outcome
        (timing is only measured while traced -- the warm fast path
        pays one thread-local read otherwise).
        """
        trace = tracing.current_trace()
        start = time.perf_counter() if trace is not None else 0.0
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                if record_miss:
                    self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
        spilled = False
        if entry is None and self.spill is not None:
            found = self.spill.fetch(key)
            if found is not None:
                value, vertices = found
                entry = _Entry(value, vertices)
                spilled = True
                with self._lock:
                    self.spill_hits += 1
                    self._data[key] = entry
                    self._data.move_to_end(key)
                    evicted = self._evict_over_capacity()
                self._spill_entries(evicted)
        if trace is not None:
            trace.add_span("cache_lookup",
                           time.perf_counter() - start,
                           tags={"hit": entry is not None,
                                 "spill": spilled,
                                 "algorithm": key[1]})
        return entry.value if entry is not None else None

    def put(self, key, value, vertices=None):
        """Insert ``value``; ``vertices`` is the optional footprint
        that enables selective invalidation for this entry.  Recorded
        as a ``cache_store`` span when a query trace is active."""
        trace = tracing.current_trace()
        start = time.perf_counter() if trace is not None else 0.0
        with self._lock:
            self._data[key] = _Entry(value, vertices)
            self._data.move_to_end(key)
            evicted = self._evict_over_capacity()
        self._spill_entries(evicted)
        if trace is not None:
            trace.add_span("cache_store",
                           time.perf_counter() - start,
                           tags={"algorithm": key[1],
                                 "footprint": len(vertices)
                                 if vertices else 0})

    def _evict_over_capacity(self):
        """Pop LRU entries past capacity (lock held by the caller);
        returns the evicted ``(key, entry)`` pairs so they can spill
        to disk outside the lock."""
        evicted = []
        while len(self._data) > self.capacity:
            evicted.append(self._data.popitem(last=False))
            self.evictions += 1
        return evicted

    def _spill_entries(self, pairs):
        """Offer evicted entries to the spill tier (no-op without
        one).  Runs outside the cache lock: spill writes hit disk."""
        if self.spill is None or not pairs:
            return
        for key, entry in pairs:
            self.spill.offer(key, entry.value, entry.vertices)

    def flush_spill(self):
        """Write every live entry through to the spill tier (engine
        shutdown: the next process readmits the warm set lazily).
        Returns the number of entries offered."""
        if self.spill is None:
            return 0
        with self._lock:
            pairs = list(self._data.items())
        self._spill_entries(pairs)
        return len(pairs)

    def invalidate(self, graph_name=None, affected=None,
                   truss_affected=None):
        """Evict entries made stale by an update to ``graph_name``.

        ``graph_name=None`` clears everything.  ``affected`` is the
        core-cascade vertex region: entries of the minimum-degree
        families survive when their recorded footprint is disjoint
        from it.  ``truss_affected`` is the triangle-support cascade
        region a :class:`~repro.core.truss_maintenance.TrussMaintainer`
        reports: k-truss/ATC entries survive when their footprint is
        disjoint from *it*.  A family whose region was not supplied is
        dropped conservatively (the ``evict-all`` fallback, counted
        per reason in :meth:`stats`).  Returns the eviction count.
        """
        with self._lock:
            stale = []
            reasons = []
            for key, entry in self._data.items():
                if graph_name is not None and key[0] != graph_name:
                    continue
                algorithm = key[1]
                if algorithm in TRUSS_SELECTIVE_ALGORITHMS:
                    region, reason = truss_affected, "truss-cascade"
                elif algorithm in SELECTIVE_SAFE_ALGORITHMS:
                    region, reason = affected, "core-cascade"
                else:
                    region, reason = None, "evict-all"
                # An *empty* footprint (a cached "no community"
                # answer) must not count as disjoint: the update may
                # be exactly what makes the query answerable.
                if (region is not None and entry.vertices
                        and entry.vertices.isdisjoint(region)):
                    continue
                stale.append(key)
                reasons.append(reason if region is not None
                               else "evict-all")
            for key, reason in zip(stale, reasons):
                del self._data[key]
                self.invalidations_by_reason[reason] += 1
            self.invalidations += len(stale)
            evicted = len(stale)
            reason_counts = {}
            for reason in reasons:
                reason_counts[reason] = reason_counts.get(reason, 0) + 1
        # Attributable in traces too: a maintenance event landing
        # inside a traced request shows up with its eviction reasons.
        tracing.add_span("cache_invalidate", 0.0, evicted=evicted,
                         reasons=reason_counts)
        return evicted

    def __len__(self):
        with self._lock:
            return len(self._data)

    def entries_by_graph(self):
        """``{graph_name: entry count}`` -- the per-graph occupancy
        the metrics endpoint reports next to shard/partition stats, so
        a sharded deployment can see which graph owns the warm set."""
        with self._lock:
            counts = {}
            for key in self._data:
                counts[key[0]] = counts.get(key[0], 0) + 1
            return counts

    def stats(self):
        """Hit/miss/eviction counters for the metrics endpoint,
        including per-reason invalidation counts."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "invalidations_by_reason":
                    dict(self.invalidations_by_reason),
                "spill_hits": self.spill_hits,
                "spill": self.spill.stats() if self.spill is not None
                else {"enabled": False},
            }


class SubproblemMemo:
    """LRU memo for expensive intermediates shared across queries.

    Keys carry the owning graph and its index *version*, so a
    maintenance update orphans old entries without any coordination;
    :meth:`invalidate` reclaims the memory eagerly.
    """

    def __init__(self, capacity=128):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, graph_name, version, kind, key, compute):
        """Return the memoized value, computing (and storing) on miss.

        ``compute`` runs outside the lock; concurrent first callers may
        compute twice but the result is consistent (last write wins).
        """
        full_key = (graph_name, version, kind, _canonical(key))
        with self._lock:
            if full_key in self._data:
                self._data.move_to_end(full_key)
                self.hits += 1
                return self._data[full_key]
            self.misses += 1
        value = compute()
        with self._lock:
            self._data[full_key] = value
            self._data.move_to_end(full_key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
        return value

    def invalidate(self, graph_name=None, version=None,
                   truss_version=None):
        """Drop stale entries (or everything, when nothing is known).

        ``graph_name=None`` clears the whole memo.  With only a graph
        name, every entry of that graph goes (the conservative
        pre-truss behaviour).  With the graph's *current* versions
        supplied, the invalidation is version-aware: an entry survives
        when it is keyed at the current version *for its kind* --
        truss intermediates (:data:`TRUSS_MEMO_KINDS`) check
        ``truss_version``, everything else checks ``version``.  That
        is what lets truss intermediates outlive core-only rebuilds:
        their keys move with the independent truss index, not with
        the CL-tree snapshot lifecycle.
        """
        with self._lock:
            if graph_name is None:
                self._data.clear()
                return
            stale = []
            for key in self._data:
                if key[0] != graph_name:
                    continue
                if version is None and truss_version is None:
                    stale.append(key)
                    continue
                current = truss_version if key[2] in TRUSS_MEMO_KINDS \
                    else version
                if key[1] != current:
                    stale.append(key)
            for key in stale:
                del self._data[key]

    def __len__(self):
        with self._lock:
            return len(self._data)

    def stats(self):
        """Occupancy and hit-rate counters for the metrics endpoint."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
