"""Cross-query batching: the admission layer between the serving
front-end and the :class:`~repro.engine.executor.QueryEngine`.

A server handling concurrent traffic sees the same expensive work many
times in flight at once: eight users probing the same hub author all
miss the cache (none of them has finished yet, so none has filled it)
and all eight pay the full search -- the classic thundering herd.  And
even distinct queries repeat most of their cost: same graph, same
frozen payload round-trip, same core/CL-tree/truss decompositions in
the worker.  This module makes that concurrency *pay* instead of
multiplying work:

* an **admission window** -- a submitted query waits a few
  milliseconds for companions; everything that arrives inside the
  window is dispatched as one batch, so one cached
  :class:`~repro.engine.index_manager.GraphPayload` round-trip serves
  the whole batch;

* **single-flight dedup** -- queries with the same cache key share one
  execution: the first becomes the *leader*, the rest are *followers*
  resolved from the leader's result (counted as ``shared_answers``);

* a **query-intersection-graph (QIG) grouper** -- remaining distinct
  queries are clustered by overlapping ``(graph, version, algorithm
  family, k, keywords)`` signatures, litmus-style (SNIPPETS.md): two
  queries are QIG-adjacent when every component of their signatures is
  compatible, and a greedy clique cover turns the QIG into execution
  groups.  A group is answered from **one** engine job -- one queue
  hop, one payload ship, shared worker-side decompositions -- plus
  per-query finishing, generalising the same-``k`` sharing the
  ``ktruss-strong`` merge memo already proved out.

Batched execution is byte-identical to serial execution: each query in
a group still runs the exact whole-query pipeline
(:func:`~repro.engine.backends.batch_full_query_job`, which is
:func:`~repro.engine.backends.shard_full_query_job` per spec) or the
plain :meth:`~repro.explorer.cexplorer.CExplorer.search` path --
grouping changes *where* the work runs and how often shared state is
rebuilt, never the per-query result (property-tested across shard
counts and backends).

The batcher is front-end-agnostic: the async server awaits the
returned :class:`~repro.engine.executor.EngineFuture` through its
poll bridge, the sync server blocks a handler thread on it, and
library callers may use it directly for client-side batching.
"""

import threading
import time

from repro.engine.executor import EngineFuture
from repro.engine.plans import (
    ACQ_FAMILY,
    FULL_QUERY_ALGORITHMS,
    TRUSS_FAMILY,
    plan_search,
)
from repro.util.errors import (
    BatchMemberError,
    CExplorerError,
    EngineBusyError,
)

__all__ = ["QueryBatcher", "QueryIntersectionGraph", "signature_family"]


def signature_family(algorithm):
    """The sharing family of a concrete algorithm name.

    The ACQ variants share CL-tree/core structure, the triangle
    family shares truss structure; every other algorithm only shares
    with itself.
    """
    if algorithm in ACQ_FAMILY:
        return "acq"
    if algorithm in TRUSS_FAMILY:
        return "truss"
    return algorithm


class _BatchRequest:
    """One submitted query waiting in the admission window."""

    __slots__ = ("graph", "algorithm", "vertex", "k", "keywords",
                 "timeout", "future", "submitted_at",
                 # filled in at dispatch time
                 "plan", "q", "cache_key", "signature")

    def __init__(self, graph, algorithm, vertex, k, keywords, timeout):
        self.graph = graph
        self.algorithm = algorithm
        self.vertex = vertex
        self.k = k
        self.keywords = keywords
        self.timeout = timeout
        self.future = EngineFuture()
        self.submitted_at = time.perf_counter()
        self.plan = None
        self.q = None
        self.cache_key = None
        self.signature = None


class QueryIntersectionGraph:
    """The QIG over one batch: vertices are (leader) requests, edges
    connect requests whose signatures overlap.

    A signature is ``(graph, version, family, k, keywords)``; two
    signatures overlap when graph/version/family/k agree exactly and
    the keyword constraints are compatible (either side unconstrained,
    or a non-empty intersection).  :meth:`groups` covers the QIG with
    greedy cliques -- every member of a group is pairwise adjacent, so
    one fan-out's shared state (payload, decompositions, postings) is
    relevant to the whole group.
    """

    def __init__(self, requests):
        self.requests = list(requests)
        self._adjacent = {i: set() for i in range(len(self.requests))}
        for i, a in enumerate(self.requests):
            for j in range(i + 1, len(self.requests)):
                if self._overlap(a, self.requests[j]):
                    self._adjacent[i].add(j)
                    self._adjacent[j].add(i)

    @staticmethod
    def _overlap(a, b):
        """Whether two requests' signatures intersect."""
        (graph_a, version_a, family_a, k_a, kw_a) = a.signature
        (graph_b, version_b, family_b, k_b, kw_b) = b.signature
        if (graph_a, version_a, family_a, k_a) != \
                (graph_b, version_b, family_b, k_b):
            return False
        if kw_a is None or kw_b is None:
            return True
        return bool(kw_a & kw_b)

    def groups(self, max_size=16):
        """A greedy clique cover in submission order.

        Each request joins the first group it is adjacent to *every*
        member of (the clique constraint keeps a group's shared
        signature meaningful); otherwise it opens a new group.
        ``max_size`` caps a group so one giant clique cannot serialise
        the whole batch behind a single worker job.
        """
        groups = []
        for i in range(len(self.requests)):
            placed = False
            for group in groups:
                if len(group) >= max_size:
                    continue
                if all(j in self._adjacent[i] for j in group):
                    group.append(i)
                    placed = True
                    break
            if not placed:
                groups.append([i])
        return [[self.requests[i] for i in group] for group in groups]


class QueryBatcher:
    """Admission-window batching front for one explorer's engine.

    :meth:`submit` returns an :class:`~repro.engine.executor.
    EngineFuture` immediately; a background flusher collects everything
    that arrives within ``window`` seconds (or until ``max_batch``
    queued) and dispatches the batch: cache hits resolve inline,
    duplicates share a leader's execution, and the remaining distinct
    queries are QIG-grouped into one engine job per group.

    ``window=0`` still batches whatever is *concurrently* queued (the
    flusher takes the pending list whole) without adding latency.
    """

    def __init__(self, explorer, window=0.005, max_batch=64,
                 max_group=16):
        if window < 0:
            raise ValueError("window must be >= 0")
        self.explorer = explorer
        self.engine = explorer.engine
        self.window = window
        self.max_batch = max(1, int(max_batch))
        self.max_group = max(1, int(max_group))
        self._pending = []
        self._cond = threading.Condition()
        self._thread = None
        self._closed = False
        # Occupancy gauges the engine counters cannot express.
        self._lock = threading.Lock()
        self.last_batch_size = 0
        self.max_batch_size = 0
        self.last_group_sizes = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, algorithm, vertex, k=4, keywords=None,
               timeout=None):
        """Queue one search; returns a future resolving to its
        communities.

        Cache hits resolve immediately (no window latency, exactly
        like :meth:`~repro.engine.executor.QueryEngine.search`); a
        closed batcher degrades to the engine's unbatched path rather
        than failing the query.
        """
        explorer = self.explorer
        name = explorer._require_current()
        cached = explorer.peek_cached(algorithm, vertex, k=k,
                                     keywords=keywords)
        if cached is not None:
            return EngineFuture.resolved(cached)
        if self._closed:
            return self.engine.search(algorithm, vertex, k=k,
                                      keywords=keywords, timeout=timeout)
        request = _BatchRequest(name, algorithm, vertex, k, keywords,
                                timeout)
        with self._cond:
            if self._closed:
                return self.engine.search(algorithm, vertex, k=k,
                                          keywords=keywords,
                                          timeout=timeout)
            self._ensure_flusher()
            self._pending.append(request)
            self._cond.notify_all()
        return request.future

    def _ensure_flusher(self):
        """Start the window flusher on first use (caller holds the
        condition lock)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._flush_loop,
                                            name="query-batcher",
                                            daemon=True)
            self._thread.start()

    def close(self):
        """Stop the flusher; pending requests are still dispatched."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # the flusher
    # ------------------------------------------------------------------
    def _flush_loop(self):
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # The admission window opens when the first query of
                # the batch arrived; late arrivals join but never
                # extend it, so worst-case added latency is `window`.
                deadline = self._pending[0].submitted_at + self.window
                while not self._closed \
                        and len(self._pending) < self.max_batch:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch, self._pending = self._pending, []
            try:
                self._dispatch(batch)
            except BaseException as exc:  # never kill the flusher
                for request in batch:
                    request.future.set_exception(exc)

    # ------------------------------------------------------------------
    # dispatch: plan, dedup, group, submit
    # ------------------------------------------------------------------
    def _dispatch(self, batch):
        engine = self.engine
        stats = engine.stats
        stats.count("batches")
        stats.count("batched_queries", len(batch))
        with self._lock:
            self.last_batch_size = len(batch)
            self.max_batch_size = max(self.max_batch_size, len(batch))
        now = time.perf_counter()
        for request in batch:
            stats.observe("batch_wait", now - request.submitted_at)
        leaders = {}
        followers = {}
        for request in batch:
            try:
                self._prepare(request)
            except Exception as exc:
                # Bad vertex / unknown algorithm / removed graph:
                # fail this request alone, keep the batch going.
                request.future.set_exception(exc)
                continue
            cached = self.explorer.cache.get(request.cache_key,
                                            record_miss=False)
            if cached is not None:
                # Filled since the window opened (by an earlier batch
                # or a direct library call).
                request.future.set_result(cached)
                continue
            leader = leaders.get(request.cache_key)
            if leader is None:
                leaders[request.cache_key] = request
            else:
                followers.setdefault(leader, []).append(request)
        if not leaders:
            return
        groups = QueryIntersectionGraph(
            leaders.values()).groups(self.max_group)
        stats.count("batch_groups", len(groups))
        with self._lock:
            self.last_group_sizes = [len(g) for g in groups]
        for group in groups:
            self._submit_group(group, followers)

    def _prepare(self, request):
        """Resolve the request against current graph/index state:
        concrete plan, canonical query, cache key, QIG signature."""
        from repro.algorithms.registry import get_cs_algorithm

        explorer = self.explorer
        name = request.graph
        graph = explorer.indexes.graph(name)
        if request.algorithm != "auto":
            # Fail unknown names here, in the flusher, instead of
            # spending a worker job to discover them.
            get_cs_algorithm(request.algorithm)
        request.q = explorer._resolve_query(request.vertex)
        request.plan = plan_search(
            request.algorithm, graph,
            index_ready=explorer.indexes.built(name),
            keywords=request.keywords,
            shards=explorer.indexes.shards(name),
            full_payload=self.engine.full_query_capable(name))
        algorithm = request.plan.algorithm
        request.cache_key = explorer.cache.key(
            name, algorithm, request.q, request.k, request.keywords)
        keywords = (frozenset(request.keywords)
                    if request.keywords else None)
        request.signature = (name, explorer.indexes.version(name),
                             signature_family(algorithm), request.k,
                             keywords)

    def _submit_group(self, group, followers):
        """One engine job for one QIG group (admission-controlled:
        a full queue fails the whole group fast, never hangs it)."""
        engine = self.engine
        timeouts = [r.timeout for r in group if r.timeout is not None]
        timeout = max(timeouts) if timeouts else engine.default_timeout
        trace = engine.tracer.begin(
            "batch", graph=group[0].graph,
            family=group[0].signature[2], queries=len(group),
            shared=sum(len(followers.get(r, ())) for r in group))
        for request in group:
            request.future.trace = trace
            for follower in followers.get(request, ()):
                follower.future.trace = trace
        try:
            engine.submit(self._execute_group, group, followers,
                          op="batch", timeout=timeout, trace=trace)
        except EngineBusyError as exc:
            engine.stats.count("batch_rejected", len(group))
            for request in group:
                request.future.set_exception(exc)
                for follower in followers.get(request, ()):
                    follower.future.set_exception(exc)

    # ------------------------------------------------------------------
    # group execution (runs on an engine worker)
    # ------------------------------------------------------------------
    def _execute_group(self, group, followers):
        """Answer every query of one group, sharing one payload
        round-trip when the whole-query pipeline is eligible.

        Every member future is guaranteed to resolve: a per-query
        failure (bad parameters surviving planning, an algorithm
        erroring at run time) fails that query and its followers
        alone, and an unexpected group-level failure fails whatever
        is still unresolved -- a batched client never hangs until the
        deadline on someone else's error.
        """
        try:
            return self._run_group(group, followers)
        except BaseException as exc:
            for request in group:
                self._fail(request, followers, exc)
            raise

    def _run_group(self, group, followers):
        from repro.engine import tracing

        engine = self.engine
        name = group[0].graph
        eligible = [r for r in group if self._batch_job_eligible(r)]
        results = {}
        if len(eligible) == len(group) and len(group) > 1 \
                and engine.full_query_capable(name):
            specs = [(r.plan.algorithm, r.q, r.k,
                      tuple(sorted(r.keywords))
                      if r.keywords else None) for r in group]
            try:
                with tracing.span("batch_execute", queries=len(group)):
                    answers = engine.search_full_query_batch(name, specs)
            except (CExplorerError, IndexError, KeyError, RuntimeError):
                # Unregistered-name race or torn snapshot: fall back
                # to the serial per-query path, visibly.
                engine.stats.count("batch_fallbacks")
            else:
                for request, answer in zip(group, answers):
                    if isinstance(answer, BatchMemberError):
                        # One member failed inside the worker: leave
                        # it out of ``results`` so the serial loop
                        # below retries it solo -- the rest of the
                        # group keeps its shared-round-trip answer.
                        engine.stats.count("batch_member_retries")
                        continue
                    footprint = {v for c in answer for v in c}
                    self.explorer.cache.put(request.cache_key, answer,
                                            vertices=footprint)
                    results[request] = answer
        for request in group:
            if request in results:
                continue
            try:
                with tracing.span("batch_query",
                                  algorithm=request.plan.algorithm,
                                  k=request.k):
                    results[request] = self.explorer.search(
                        request.algorithm, request.vertex,
                        k=request.k, keywords=request.keywords)
            except Exception as exc:
                self._fail(request, followers, exc)
        shared = 0
        for request in group:
            if request not in results:
                continue  # failed above; future already resolved
            answer = results[request]
            request.future.set_result(answer)
            for follower in followers.get(request, ()):
                follower.future.set_result(answer)
                shared += 1
        if shared:
            engine.stats.count("shared_answers", shared)
        return len(group)

    @staticmethod
    def _fail(request, followers, exc):
        """Resolve one request's (and its followers') still-pending
        futures with ``exc``."""
        for future in [request.future] + \
                [f.future for f in followers.get(request, ())]:
            if not future.done():
                future.set_exception(exc)

    def _batch_job_eligible(self, request):
        """Whether one request may ride the single batch worker job.

        Sharded fan-out plans and algorithms outside the whole-query
        protocol keep the plain search path (results are identical
        either way; this only picks the substrate).
        """
        plan = request.plan
        return (not plan.fanout
                and plan.algorithm in FULL_QUERY_ALGORITHMS)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self):
        """Occupancy and configuration for the metrics endpoint.

        Counters (``batches``, ``batched_queries``, ``batch_groups``,
        ``shared_answers``, ``batch_rejected``, ``batch_fallbacks``)
        live in the engine's shared :class:`~repro.engine.stats.
        EngineStats`; this document carries what only the batcher
        knows.
        """
        engine_stats = self.engine.stats
        with self._lock:
            doc = {
                "window_seconds": self.window,
                "max_batch": self.max_batch,
                "max_group": self.max_group,
                "last_batch_size": self.last_batch_size,
                "max_batch_size": self.max_batch_size,
                "last_group_sizes": list(self.last_group_sizes),
            }
        with self._cond:
            doc["pending"] = len(self._pending)
        doc["batches"] = engine_stats.get("batches")
        doc["batched_queries"] = engine_stats.get("batched_queries")
        doc["groups"] = engine_stats.get("batch_groups")
        doc["shared_answers"] = engine_stats.get("shared_answers")
        return doc
