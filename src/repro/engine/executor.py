"""The :class:`QueryEngine`: a bounded worker pool with admission
control, per-query deadlines, and an integrated result cache.

The seed server ran every search inline on its HTTP handler thread:
one slow whole-graph detection could stack unbounded threads behind
the GIL, and nothing bounded the damage a traffic spike could do.
This engine is the dedicated execution path between the server and the
algorithms (the Polynesia argument in PAPERS.md):

* a **bounded worker pool** (threads are started lazily on first use);
* an **admission-controlled queue** -- when ``max_queue`` requests are
  already waiting, new work is rejected *immediately* with
  :class:`~repro.util.errors.EngineBusyError`, which the HTTP layer
  maps to a fast 429 instead of letting latency collapse;
* **per-query deadlines** -- a queued request past its deadline is
  dropped without running; a caller waiting on a future gets
  :class:`~repro.util.errors.QueryTimeoutError`;
* **cancellation** -- best-effort: a request still in the queue is
  dropped, a running one finishes but its result is discarded (Python
  threads cannot be killed);
* the engine-level :class:`~repro.engine.cache.ResultCache` and
  :class:`~repro.engine.cache.SubproblemMemo`, wired to the
  :class:`~repro.engine.index_manager.IndexManager` so maintenance
  updates selectively evict stale entries;
* **sharded fan-out** -- :meth:`QueryEngine.map_shards` pushes
  per-shard subqueries onto the same pool with *work stealing*: the
  coordinating thread claims any subjob no worker has started (via the
  future's run-once CAS) and executes it inline, so a fan-out makes
  progress even when every worker is busy -- including when the
  coordinator *is* the only worker (no nested-submission deadlock).
  :meth:`QueryEngine.search_sharded` is the full partition-parallel
  search path (see :mod:`repro.engine.sharding`);
* an **execution backend** (``backend="thread" | "process"``, see
  :mod:`repro.engine.backends`) -- with the process backend,
  :meth:`QueryEngine.map_shard_jobs` ships per-shard subqueries (and
  the index manager's CL-tree builds) to a ``multiprocessing`` pool
  as pickled frozen-graph payloads, dodging the GIL for CPU-bound
  structural work; any pool failure falls back to in-process
  execution with identical results;
* :class:`~repro.engine.stats.EngineStats` latency histograms behind
  ``/api/metrics``, including per-shard fan-out latency/skew and the
  process backend's ``snapshot_build`` / ``shard_ipc`` overheads.

Synchronous callers (library users, the batch harness) use
:meth:`QueryEngine.execute`; the server uses :meth:`submit` /
:meth:`search` and waits with a timeout.
"""

import queue
import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as _futures_wait

from repro.core.community import Community
from repro.engine import faults as fault_injection
from repro.engine.backends import (
    ProcessBackend,
    ProcessBackendError,
    set_job_deadline,
    validate_backend,
)
from repro.engine.cache import ResultCache, SubproblemMemo
from repro.engine.faults import FaultPlan
from repro.engine.index_manager import IndexManager
from repro.engine import payloads as payload_plane
from repro.engine.retry import RETRYABLE, ResiliencePlane
from repro.engine.stats import EngineStats
from repro.engine import tracing
from repro.engine.tracing import TraceRecorder
from repro.util.errors import (
    BatchMemberError,
    CExplorerError,
    EngineBusyError,
    JobPayloadError,
    PayloadCorruptionError,
    QueryCancelledError,
    QueryTimeoutError,
)

# The deadline of the engine job the current thread is executing
# (perf_counter based); fan-outs read it so retries, hedges and
# shipped worker deadlines never outlive the caller's budget.
_job_context = threading.local()

_PENDING, _RUNNING, _DONE, _CANCELLED = range(4)


class EngineFuture:
    """A minimal future for engine jobs (stdlib-free by design: the
    queue needs admission control ``concurrent.futures`` lacks)."""

    __slots__ = ("_event", "_lock", "_state", "_value", "_exception",
                 "trace")

    def __init__(self):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._state = _PENDING
        self._value = None
        self._exception = None
        # The QueryTrace attached by the search path (None for plain
        # submissions or when tracing is disabled); the HTTP layer
        # reads it back to add the request-level span and return the
        # query id to the client.
        self.trace = None

    @classmethod
    def resolved(cls, value):
        """An already-completed future (the cache-hit fast path)."""
        future = cls()
        future.set_result(value)
        return future

    # -- state transitions (engine side) --------------------------------
    def set_running(self):
        """Claim the job (run-once CAS); False when already claimed,
        cancelled or done -- the work-stealing fan-out races workers
        on exactly this call."""
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _RUNNING
            return True

    def set_result(self, value):
        """Resolve the future with ``value`` (no-op when cancelled)."""
        with self._lock:
            if self._state == _CANCELLED:
                return
            self._value = value
            self._state = _DONE
        self._event.set()

    def set_exception(self, exc):
        """Resolve the future with an exception (no-op when
        cancelled)."""
        with self._lock:
            if self._state == _CANCELLED:
                return
            self._exception = exc
            self._state = _DONE
        self._event.set()

    # -- caller side ----------------------------------------------------
    def cancel(self):
        """Cancel if not yet running; returns whether it worked."""
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _CANCELLED
        self._event.set()
        return True

    def cancelled(self):
        """Whether the job was cancelled before it ran."""
        return self._state == _CANCELLED

    def done(self):
        """Whether the job finished (result, exception or cancel)."""
        return self._state in (_DONE, _CANCELLED)

    def result(self, timeout=None):
        """Block for the value; raises the job's exception, or
        :class:`QueryTimeoutError` when ``timeout`` elapses first."""
        if not self._event.wait(timeout):
            raise QueryTimeoutError(
                "query did not finish within {:.3f}s".format(timeout))
        if self._state == _CANCELLED:
            raise QueryCancelledError("query was cancelled")
        if self._exception is not None:
            raise self._exception
        return self._value


class _Job:
    __slots__ = ("fn", "args", "kwargs", "future", "op", "deadline",
                 "submitted_at", "trace")

    def __init__(self, fn, args, kwargs, op, deadline, trace=None):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future = EngineFuture()
        self.future.trace = trace
        self.op = op
        self.deadline = deadline
        self.submitted_at = time.perf_counter()
        self.trace = trace


_SHUTDOWN = object()

# How long an idle admission worker blocks on the queue before
# re-checking that its engine still exists (see _engine_worker).
_WORKER_IDLE_POLL = 0.5


def _engine_worker(engine_ref, work_queue):
    """Admission-worker loop, deliberately *outside* the engine.

    Running threads are GC roots, so a ``target=self._worker`` thread
    would pin its engine (and therefore every published shared-memory
    segment) for the life of the process.  The loop instead holds only
    a weakref plus the queue: an engine dropped without ``shutdown()``
    becomes collectable, its index manager's finalizer releases the
    payload segments, and the orphaned workers notice on their next
    idle poll and exit."""
    while True:
        try:
            job = work_queue.get(timeout=_WORKER_IDLE_POLL)
        except queue.Empty:
            if engine_ref() is None:
                return
            continue
        if job is _SHUTDOWN:
            return
        engine = engine_ref()
        if engine is None:
            job.future.set_exception(CExplorerError(
                "query engine was discarded with jobs still queued"))
            return
        try:
            engine._run_job(job)
        finally:
            # Unbind before blocking on the next get(): a job whose
            # fn is a bound method (batch groups) would otherwise
            # keep the engine strongly reachable from this frame.
            del engine, job


class QueryEngine:
    """Bounded-concurrency execution front-end for a CExplorer.

    ``explorer`` may be ``None`` for a bare worker pool (the batch
    harness hands it plain callables); with an explorer attached,
    :meth:`search` adds planning, result caching, and index reuse.
    """

    def __init__(self, explorer=None, workers=2, max_queue=64,
                 default_timeout=None, cache_size=512,
                 index_manager=None, memo_size=128, backend="thread",
                 trace_capacity=256, slow_query_seconds=1.0,
                 tracing_enabled=True, faults=None, store=None):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self.explorer = explorer
        self.workers = workers
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        self.backend = validate_backend(backend)
        self.indexes = index_manager if index_manager is not None \
            else IndexManager()
        self.cache = ResultCache(cache_size)
        self.memo = SubproblemMemo(memo_size)
        # Optional persistent warm store: result-cache entries spill
        # to disk on eviction/shutdown and readmit lazily, keyed
        # ``(graph, version, query)`` -- see repro.engine.payloads.
        self.store = store
        if store is not None:
            self.cache.spill = payload_plane.ResultSpill(
                store, self._graph_version, self._rebind_wires)
        self.stats = EngineStats()
        # Fault injection (None in production unless REPRO_FAULT_PLAN
        # is set -- the CI chaos job's hook) and the resilience plane:
        # retry policies, substrate breakers, payload quarantine.
        self.faults = faults if faults is not None \
            else FaultPlan.from_env()
        self.resilience = ResiliencePlane(self.stats)
        self._span_hook = None
        if self.faults is not None and self.faults.has_span_rules():
            self._span_hook = self.faults.span_fault
            tracing.set_fault_hook(self._span_hook)
        self.tracer = TraceRecorder(capacity=trace_capacity,
                                    slow_seconds=slow_query_seconds,
                                    enabled=tracing_enabled)
        self._queue = queue.Queue(max_queue)
        self._threads = []
        self._in_flight = 0
        self._lifecycle = threading.Lock()
        self._shutdown = False
        self._process = None
        self._last_detect_parallelism = 0
        if self.backend == "process":
            self._process = ProcessBackend(workers)
            # Index builds (including every per-shard CL-tree) route
            # through the pool: an upload of a sharded graph builds
            # all shard trees genuinely in parallel.
            self.indexes.build_executor = self._build_in_process
        self.indexes.subscribe(self._on_index_event)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def configure(self, workers=None, max_queue=None,
                  default_timeout=None, backend=None):
        """Adjust pool sizing / backend before the first submission."""
        with self._lifecycle:
            if self._threads:
                raise RuntimeError(
                    "cannot reconfigure a started engine")
            if workers is not None:
                if workers < 1:
                    raise ValueError("workers must be positive")
                self.workers = workers
            if max_queue is not None:
                if max_queue < 1:
                    raise ValueError("max_queue must be positive")
                self.max_queue = max_queue
                self._queue = queue.Queue(max_queue)
            if default_timeout is not None:
                self.default_timeout = default_timeout
            if backend is not None and backend != self.backend:
                self.backend = validate_backend(backend)
                if self._process is not None:
                    self._process.close()
                    self._process = None
                    self.indexes.build_executor = None
                if self.backend == "process":
                    self._process = ProcessBackend(self.workers)
                    self.indexes.build_executor = self._build_in_process
        return self

    def _ensure_started(self):
        if self._threads:
            return
        with self._lifecycle:
            if self._threads or self._shutdown:
                return
            engine_ref = weakref.ref(self)
            for i in range(self.workers):
                thread = threading.Thread(
                    target=_engine_worker, args=(engine_ref, self._queue),
                    name="query-engine-{}".format(i), daemon=True)
                thread.start()
                self._threads.append(thread)

    def shutdown(self, wait=True):
        """Stop accepting work and (optionally) join the workers.

        Also flushes warm state out and zero-copy state away: cached
        results spill to the store (so a restarted server readmits
        them), and every payload segment is released -- a clean
        shutdown leaves zero shared-memory segments behind.
        """
        if self._span_hook is not None:
            tracing.clear_fault_hook(self._span_hook)
        with self._lifecycle:
            if self._shutdown:
                return
            self._shutdown = True
            threads = list(self._threads)
            process, self._process = self._process, None
        if process is not None:
            process.close()
            # Detach the build delegate (if it is still ours): a
            # post-shutdown index build must run locally, not
            # resurrect a pool nothing would ever close.
            if self.indexes.build_executor == self._build_in_process:
                self.indexes.build_executor = None
        self.cache.flush_spill()
        release = getattr(self.indexes, "release_payloads", None)
        if release is not None:
            release()
        for _ in threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in threads:
                thread.join()

    # ------------------------------------------------------------------
    # generic submission
    # ------------------------------------------------------------------
    def submit(self, fn, *args, **kwargs):
        """Queue ``fn(*args, **kwargs)``; returns an
        :class:`EngineFuture`.

        Keyword-only extras: ``op`` labels the latency histogram,
        ``timeout`` sets the deadline (falls back to
        ``default_timeout``), ``trace`` attaches a
        :class:`~repro.engine.tracing.QueryTrace` that the executing
        worker will activate and finish.  Raises
        :class:`EngineBusyError` at once when the queue is full.
        """
        op = kwargs.pop("op", "job")
        timeout = kwargs.pop("timeout", self.default_timeout)
        trace = kwargs.pop("trace", None)
        if self._shutdown:
            self.tracer.finish(trace, "rejected")
            raise EngineBusyError("engine is shut down")
        self._ensure_started()
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        job = _Job(fn, args, kwargs, op, deadline, trace=trace)
        self.stats.count("submitted")
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self.stats.count("rejected")
            self.tracer.finish(trace, "rejected")
            raise EngineBusyError(
                "engine queue full ({} waiting); retry later"
                .format(self.max_queue)) from None
        return job.future

    def execute(self, fn, *args, **kwargs):
        """Synchronous :meth:`submit`: block for the result, honouring
        the same deadline while waiting."""
        timeout = kwargs.get("timeout", self.default_timeout)
        future = self.submit(fn, *args, **kwargs)
        try:
            return future.result(timeout)
        except QueryTimeoutError:
            future.cancel()
            self.stats.count("timeouts")
            raise

    def run_batch(self, calls, op="batch", timeout=None):
        """Submit many ``(fn, args, kwargs)`` triples and gather.

        Returns results in submission order; a call that raised yields
        its exception object instead (the batch harness decides how to
        aggregate failures).  Jobs the queue rejects are executed
        inline -- the batch caller wants throughput, not load shedding.
        """
        futures = []
        for fn, args, kwargs in calls:
            try:
                futures.append(self.submit(fn, *args, op=op,
                                           timeout=timeout, **kwargs))
            except EngineBusyError:
                try:
                    futures.append(EngineFuture.resolved(
                        fn(*args, **kwargs)))
                except Exception as exc:
                    failed = EngineFuture()
                    failed.set_exception(exc)
                    futures.append(failed)
        results = []
        for future in futures:
            try:
                results.append(future.result(timeout))
            except Exception as exc:
                results.append(exc)
        return results

    # ------------------------------------------------------------------
    # the search path
    # ------------------------------------------------------------------
    def search(self, algorithm, vertex, k=4, keywords=None,
               timeout=None, **params):
        """Plan + cache + submit one community search.

        Cache hits resolve immediately without touching the queue, so
        a warm interactive workload is never throttled by admission
        control.  Requires an attached explorer.

        Cache misses record a :class:`~repro.engine.tracing.
        QueryTrace` (unless the recorder is disabled), attached to the
        returned future as ``future.trace`` and handed to the
        executing worker through the job.  Cache *hits* deliberately
        skip tracing: a hit is answered in microseconds and the full
        trace lifecycle (allocation, locks, ring publish) would
        multiply its cost -- and traces exist to attribute slow
        queries, which a warm hit never is.  ``future.trace`` is
        ``None`` on the hit path.
        """
        explorer = self._require_explorer()
        probe_started = time.perf_counter()
        cached = explorer.peek_cached(algorithm, vertex, k=k,
                                      keywords=keywords, **params)
        if cached is not None:
            return EngineFuture.resolved(cached)
        trace = self.tracer.begin("search", algorithm=algorithm,
                                  vertex=str(vertex), k=k)
        if trace is not None:
            trace.tag(cache="miss")
            # The pre-submit plan + cache probe, measured cheaply
            # outside any trace context and attached post hoc.
            trace.add_span("cache_lookup",
                           time.perf_counter() - probe_started,
                           parent=None, tags={"hit": False})
        return self.submit(explorer.search, algorithm, vertex, k=k,
                           keywords=keywords, op="search",
                           timeout=timeout, trace=trace, **params)

    def search_sync(self, algorithm, vertex, k=4, keywords=None,
                    timeout=None, **params):
        """Blocking :meth:`search` with deadline enforcement."""
        timeout = timeout if timeout is not None else self.default_timeout
        future = self.search(algorithm, vertex, k=k, keywords=keywords,
                             timeout=timeout, **params)
        try:
            return future.result(timeout)
        except QueryTimeoutError:
            future.cancel()
            self.stats.count("timeouts")
            raise

    def _require_explorer(self):
        if self.explorer is None:
            raise RuntimeError(
                "this QueryEngine has no attached explorer; "
                "use submit()/execute() with explicit callables")
        return self.explorer

    # ------------------------------------------------------------------
    # sharded fan-out
    # ------------------------------------------------------------------
    def map_shards(self, fns, graph=None, op="shard", resilient=True):
        """Run per-shard callables on the pool with work stealing.

        Every ``fn`` is submitted as a pool job; the calling thread
        then walks its futures in order and *claims* any job no worker
        has started yet (the future's ``set_running`` CAS), executing
        it inline.  Free workers therefore supply parallelism, but the
        fan-out never waits on a saturated pool -- in the worst case
        the coordinator runs every shard itself, which is exactly the
        unsharded serial cost.  Jobs rejected by admission control run
        inline immediately (internal subqueries must not 429).

        Returns ``(results, seconds)`` in submission order, where
        ``seconds[i]`` is shard ``i``'s execution time.  ``graph``
        names the graph being fanned over; when given, the per-shard
        durations are recorded as that graph's fan-out/skew stats.

        With ``resilient=True`` (default) each callable is wrapped in
        the per-job retry/fault policy for ``op``: a transient failure
        (injected kill, corrupt payload) retries that shard alone with
        backoff before the fan-out fails -- blast-radius isolation for
        the thread substrate.  A shard that exhausts its retries (or
        raises a non-retryable error) still propagates to the caller.
        """
        if resilient:
            deadline = self._fanout_deadline()
            fns = [self._resilient_call(fn, None, op, i, deadline,
                                        substrate="thread")
                   for i, fn in enumerate(fns)]
        futures = []
        for fn in fns:
            wrapped = self._timed(fn)
            try:
                futures.append((self.submit(wrapped, op=op), wrapped))
            except EngineBusyError:
                futures.append((None, wrapped))
        results = []
        seconds = []
        for i, (future, wrapped) in enumerate(futures):
            try:
                if future is None or future.set_running():
                    # Rejected at admission, or claimed before any
                    # worker got to it: run inline on the
                    # coordinating thread.
                    if future is not None:
                        self.stats.count("shards_inline")
                    try:
                        with tracing.span("worker_execute", shard=i,
                                          backend="inline"):
                            elapsed, value = wrapped()
                    except BaseException as exc:
                        if future is not None:
                            future.set_exception(exc)
                        raise
                    if future is not None:
                        future.set_result((elapsed, value))
                    self.stats.observe(op, elapsed)
                else:
                    elapsed, value = future.result(self.default_timeout)
                    # The shard ran on another worker thread (outside
                    # this trace's context); record its measured span
                    # from here so the fan-out is still attributable.
                    tracing.add_span("worker_execute", elapsed,
                                     shard=i, backend="thread")
            except BaseException:
                # Don't orphan the rest of the fan-out in the shared
                # queue: unclaimed siblings are cancelled (running
                # ones finish and are discarded).
                for later, _ in futures[i + 1:]:
                    if later is not None:
                        later.cancel()
                raise
            results.append(value)
            seconds.append(elapsed)
        if graph is not None:
            self.stats.observe_fanout(graph, seconds)
        return results, seconds

    @staticmethod
    def _timed(fn):
        def run():
            """Execute ``fn`` and return ``(seconds, value)``."""
            start = time.perf_counter()
            value = fn()
            return time.perf_counter() - start, value
        return run

    def map_shard_jobs(self, jobs, graph=None, op="shard"):
        """Run picklable ``(fn, args)`` per-shard jobs on the process
        backend; the GIL-free counterpart of :meth:`map_shards`.

        The fault-tolerant fan-out.  The substrate is chosen by the
        resilience plane's degradation ladder (``process`` ->
        ``thread`` -> ``inline``): an open process breaker skips the
        pool entirely, a pool death mid fan-out records a breaker
        failure and falls back in-process -- results are identical,
        only the parallelism differs.  On the process path each job
        individually retries transient failures with backoff (capped
        by the caller's remaining deadline, which also ships into the
        worker for cooperative self-cancellation), a straggler past
        p95 x alpha gets one hedged duplicate, an unpicklable job runs
        inline without disturbing siblings, and a corrupt payload is
        quarantined.  Per-shard child compute times feed the same
        fan-out/skew stats as the thread path; transport overhead is
        recorded under the ``shard_ipc`` latency op.
        """
        jobs = list(jobs)
        deadline = self._fanout_deadline()
        # One fault draw per job for the whole dispatch -- however the
        # substrate ladder reroutes it, the injection stream stays
        # aligned with the (op, invocation) counter, so a plan replays
        # identically whatever the breakers are doing.
        faults = [self.faults.draw(op) if self.faults is not None
                  else None for _ in jobs]
        if self._process is not None:
            level, _ = self.resilience.substrate("process")
        else:
            level, _ = self.resilience.substrate("thread")
        if level == "process":
            try:
                results = self._map_jobs_process(jobs, faults, graph,
                                                 op, deadline)
            except ProcessBackendError:
                self.stats.count("process_fallbacks")
                self.resilience.record("process", False)
                level, _ = self.resilience.substrate("thread")
            else:
                self.resilience.record("process", True)
                return results
        return self._map_jobs_fallback(jobs, faults, graph, op,
                                       deadline, level)

    # -- the process substrate ------------------------------------------
    def _map_jobs_process(self, jobs, faults, graph, op, deadline):
        pool = self._process
        policy = self.resilience.policy(op)
        trace = tracing.current_trace()
        wall = self._wall_deadline(deadline)
        submitted = []
        for i, (fn, args) in enumerate(jobs):
            actions = faults[i]
            try:
                future = pool.submit_job(
                    fn, self._apply_parent_faults(actions, args),
                    fault=fault_injection.worker_actions(actions),
                    deadline=wall)
            except JobPayloadError:
                # This job cannot ship; run it inline later, leave
                # the pool (and every sibling) alone.
                future = None
            done_at = []
            if future is not None:
                # Timestamp completion on the parent's clock (the
                # callback runs in the pool's result-handler thread):
                # the fan-out is collected serially, so "collection
                # time minus child" would charge sibling compute skew
                # to ``shard_ipc``; the done timestamp does not.
                future.add_done_callback(
                    lambda _f, _box=done_at:
                        _box.append(time.perf_counter()))
            submitted.append((time.perf_counter(), future, done_at))
        results = []
        child_seconds = []
        try:
            for i, (started, future, done_at) in enumerate(submitted):
                fn, args = jobs[i]
                if future is None:
                    child, spans, value = self._run_job_inline(
                        fn, args, op, i, deadline)
                    ipc = 0.0
                else:
                    try:
                        child, spans, value, started = \
                            self._collect_with_retries(
                                pool, future, fn, args, op, i, started,
                                deadline, wall, policy)
                        # Prefer the done-callback timestamp; a retry
                        # or hedge that won on a different future (its
                        # completion predates the winning submission,
                        # or never fired) falls back to now.
                        now = time.perf_counter()
                        done = next((t for t in done_at
                                     if t >= started), now)
                        ipc = max(done - started - child, 0.0)
                    except JobPayloadError:
                        # Pickling failed in the pool's feeder thread
                        # (surfaces on the future, not at submit):
                        # same escape hatch, pool and siblings intact.
                        child, spans, value = self._run_job_inline(
                            fn, args, op, i, deadline)
                        ipc = 0.0
                # Payload resolution inside the worker (the
                # ``index_thaw`` spans: unpickling a shipped blob, or
                # attaching a shared segment) is transport cost, not
                # query compute -- fold it into ``shard_ipc`` so the
                # stat honestly prices what the chosen transport pays
                # and the op histogram prices only the algorithm.
                thaw = min(child, sum(
                    s[2] for s in spans if s[0] == "index_thaw"))
                self.stats.observe(op, child - thaw)
                self.stats.observe("shard_ipc", ipc + thaw)
                if trace is not None:
                    index = trace.add_span(
                        "worker_execute", child,
                        tags={"shard": i, "backend": "process"})
                    trace.graft(index, spans)
                    trace.add_span("shard_ipc", ipc + thaw,
                                   tags={"shard": i})
                results.append(value)
                child_seconds.append(child)
        except BaseException:
            # Don't leave the rest of the fan-out running for nobody:
            # cancel what has not started (running jobs self-cancel
            # at their next cooperative deadline check).
            for _, later, _ in submitted[len(results):]:
                if later is not None:
                    later.cancel()
            raise
        if graph is not None:
            self.stats.observe_fanout(graph, child_seconds)
        return results

    def _collect_with_retries(self, pool, future, fn, args, op, index,
                              started, deadline, wall, policy):
        """One process job's result, absorbing transient failures up
        to the policy's budget (and never past the deadline).  Returns
        ``(child_seconds, spans, value, started)`` where ``started``
        is the winning attempt's submission time."""
        attempt = 1
        while True:
            try:
                child, spans, value = self._job_result_hedged(
                    pool, future, fn, args, op, started, deadline,
                    wall, policy)
                return child, spans, value, started
            except RETRYABLE as exc:
                self._quarantine_if_corrupt(exc)
                delay = policy.backoff(
                    attempt, token="{}:{}".format(op, index))
                if attempt >= policy.attempts or (
                        deadline is not None
                        and time.perf_counter() + delay >= deadline):
                    self.stats.count("retry_exhausted")
                    raise
                self.stats.count("retries")
                tracing.add_span("retry", delay, op=op, shard=index,
                                 attempt=attempt,
                                 error=type(exc).__name__)
                time.sleep(delay)
                attempt += 1
                started = time.perf_counter()
                # Retry with the *original* args: parent-side fault
                # mutations (corruption) were one-shot on the copy.
                future = pool.submit_job(fn, args, deadline=wall)

    def _job_result_hedged(self, pool, future, fn, args, op, started,
                           deadline, wall, policy):
        """Await one job, hedging a straggler: past the p95-based
        threshold a duplicate is submitted, the first to finish wins,
        and the loser is cancelled (cooperatively, in the worker, via
        the shipped deadline)."""
        budget = self._remaining(deadline)
        threshold = self.resilience.hedge_threshold(op)
        if threshold is None:
            return pool.job_result(future, budget)
        elapsed = time.perf_counter() - started
        first_wait = max(threshold - elapsed, 0.0)
        if budget is not None:
            first_wait = min(first_wait, budget)
        try:
            return pool.job_result(future, first_wait)
        except QueryTimeoutError:
            if future.done():
                # The *worker* reported a deadline expiry; that is
                # the job's result, not a straggler signal.
                raise
            if deadline is not None \
                    and time.perf_counter() >= deadline:
                raise
        try:
            hedge = pool.submit_job(fn, args, deadline=wall)
        except (ProcessBackendError, JobPayloadError):
            # No capacity for a duplicate; keep waiting on the
            # primary within the remaining budget.
            return pool.job_result(future, self._remaining(deadline))
        self.stats.count("hedges")
        hedge_started = time.perf_counter()
        done, _ = _futures_wait({future, hedge},
                                timeout=self._remaining(deadline),
                                return_when=FIRST_COMPLETED)
        if not done:
            hedge.cancel()
            future.cancel()
            raise QueryTimeoutError(
                "hedged job pair missed the deadline")
        winner = future if future in done else hedge
        loser = hedge if winner is future else future
        loser.cancel()
        won = winner is hedge
        self.stats.count("hedges_won" if won else "hedges_lost")
        tracing.add_span("hedge",
                         time.perf_counter() - hedge_started, op=op,
                         won=won)
        return pool.job_result(winner, self._remaining(deadline))

    # -- the thread / inline substrates ---------------------------------
    def _map_jobs_fallback(self, jobs, faults, graph, op, deadline,
                           level):
        """Run fan-out jobs in-process: through the work-stealing
        thread fan-out normally, serially on the coordinating thread
        when the thread breaker is open (the ladder's floor)."""
        if len(jobs) == 1 or level != "thread":
            # One job (the queue round-trip buys nothing) or inline
            # degradation: run on the calling thread, keep the stats.
            results = []
            seconds = []
            for i, (fn, args) in enumerate(jobs):
                call = self._resilient_call(fn, args, op, i, deadline,
                                            substrate=level,
                                            actions=faults[i])
                start = time.perf_counter()
                with tracing.span("worker_execute", shard=i,
                                  backend="inline"):
                    results.append(call())
                elapsed = time.perf_counter() - start
                seconds.append(elapsed)
                self.stats.observe(op, elapsed)
            if graph is not None and len(jobs) > 1:
                self.stats.observe_fanout(graph, seconds)
            return results
        fns = [self._resilient_call(fn, args, op, i, deadline,
                                    substrate="thread",
                                    actions=faults[i])
               for i, (fn, args) in enumerate(jobs)]
        return self.map_shards(fns, graph=graph, op=op,
                               resilient=False)[0]

    #: sentinel: "no pre-drawn actions -- draw at wrap time"
    _DRAW = object()

    def _resilient_call(self, fn, args, op, index, deadline,
                        substrate="thread", actions=_DRAW):
        """A zero-arg callable running ``fn`` under the in-process
        fault/retry policy: drawn faults fire as they would in a
        worker (corruption and pool-break are serialisation/pool
        faults and do not apply in-process), the caller's deadline is
        visible through the cooperative check, and transient failures
        retry with backoff within the deadline.  ``args=None`` wraps
        an already-bound callable; ``actions`` carries the dispatch's
        pre-drawn faults (the default draws fresh -- the
        :meth:`map_shards` direct path, which is its own dispatch)."""
        policy = self.resilience.policy(op)
        if actions is QueryEngine._DRAW:
            actions = self.faults.draw(op) \
                if self.faults is not None else None
        shipped = fault_injection.worker_actions(actions)
        wall = self._wall_deadline(deadline)
        breaker = substrate == "thread"

        def call():
            attempt = 1
            fault = shipped
            while True:
                set_job_deadline(wall)
                try:
                    fault_injection.apply_worker_actions(fault)
                    value = fn(*args) if args is not None else fn()
                    if fault_injection.wants_duplicate(fault):
                        value = fn(*args) if args is not None else fn()
                except RETRYABLE as exc:
                    self._quarantine_if_corrupt(exc)
                    if breaker:
                        self.resilience.record("thread", False)
                    delay = policy.backoff(
                        attempt, token="{}:{}".format(op, index))
                    if attempt >= policy.attempts or (
                            deadline is not None
                            and time.perf_counter() + delay
                            >= deadline):
                        self.stats.count("retry_exhausted")
                        raise
                    self.stats.count("retries")
                    tracing.add_span("retry", delay, op=op,
                                     shard=index, attempt=attempt,
                                     error=type(exc).__name__)
                    time.sleep(delay)
                    attempt += 1
                    fault = None  # injected faults are one-shot
                else:
                    if breaker:
                        self.resilience.record("thread", True)
                    return value
                finally:
                    set_job_deadline(None)

        return call

    # -- shared fan-out plumbing ----------------------------------------
    def _fanout_deadline(self):
        """The executing job's deadline (perf_counter based), falling
        back to ``default_timeout`` from now -- the budget every
        retry, hedge and shipped worker deadline lives within."""
        deadline = getattr(_job_context, "deadline", None)
        if deadline is not None:
            return deadline
        if self.default_timeout is not None:
            return time.perf_counter() + self.default_timeout
        return None

    @staticmethod
    def _remaining(deadline):
        if deadline is None:
            return None
        return max(deadline - time.perf_counter(), 0.0)

    @staticmethod
    def _wall_deadline(deadline):
        """Translate a perf_counter deadline to the wall clock (what
        crosses the process boundary)."""
        if deadline is None:
            return None
        return time.time() + max(deadline - time.perf_counter(), 0.0)

    def _apply_parent_faults(self, actions, args):
        """Fire parent-side fault actions at the dispatch site:
        ``pool_break`` fails the submission as a dead pool would,
        ``corrupt`` poisons each shipped payload -- a flipped byte in
        a pickled blob, a detectably-corrupted locator for a
        zero-copy ref (both on copies: retries resubmit the pristine
        original) -- and ``segment_loss`` unlinks the shared-memory
        segment a ref points at *in place*, simulating a torn
        attachment the worker only discovers at attach time."""
        if not actions:
            return args
        for kind, _ in actions:
            if kind == "pool_break":
                raise ProcessBackendError(
                    "fault injection broke the process pool")
            if kind == "corrupt":
                args = tuple(
                    fault_injection.corrupt_blob(value)
                    if isinstance(value, (bytes, bytearray))
                    else payload_plane.corrupt_ref(value)
                    if payload_plane.is_ref(value) else value
                    for value in args)
            if kind == "segment_loss":
                for value in args:
                    if payload_plane.is_ref(value):
                        payload_plane.lose_segment(value)
        return args

    def _run_job_inline(self, fn, args, op, index, deadline):
        """One job on the coordinating thread (the unpicklable-job
        escape hatch): same timing/span contract as a worker."""
        self.stats.count("job_inline_fallbacks")
        call = self._resilient_call(fn, args, op, index, deadline,
                                    substrate="inline")
        start = time.perf_counter()
        with tracing.collect_worker_spans() as log:
            value = call()
        return time.perf_counter() - start, log.wire(), value

    def _graph_version(self, name):
        """Current index-manager version of ``name``, or ``None`` when
        the graph is not registered (spill entries for it are then
        unaddressable and simply skipped)."""
        try:
            return self.indexes.version(name)
        except CExplorerError:
            return None

    def _rebind_wires(self, name, wires):
        """Rebind wire-format communities spilled to disk back onto
        the live registered graph object."""
        graph = self.indexes.graph(name)
        return [Community.from_wire(graph, wire) for wire in wires]

    def _quarantine_if_corrupt(self, exc):
        """Quarantine the payload a corruption error names: the
        resilience plane remembers the identity (so the event is
        visible) and the index manager drops its cached copy (so the
        next query re-freezes from the live graph).  Corruption never
        feeds the breaker -- one poisoned payload must not condemn
        the backend for every other graph."""
        if not isinstance(exc, PayloadCorruptionError):
            return
        key = exc.key
        if key is None:
            return
        payload_plane.note_attach_failure(key)
        if self.resilience.quarantine(key):
            discard = getattr(self.indexes, "discard_payload", None)
            if discard is not None:
                discard(key)

    def _build_in_process(self, graph, core=None):
        """Index-build executor wired into the
        :class:`~repro.engine.index_manager.IndexManager` when the
        process backend is active: freeze the graph, build core
        numbers + CL-tree in a worker process, rebind the tree to the
        live graph object.  Raises on any pool failure; the manager
        falls back to the in-process build."""
        from repro.graph.frozen import FrozenGraph

        start = time.perf_counter()
        frozen = FrozenGraph.from_graph(graph)
        freeze_seconds = time.perf_counter() - start
        self.stats.observe("snapshot_build", freeze_seconds)
        core, cltree, child_seconds = self._process.run_build(
            frozen, core)
        cltree.graph = graph
        total = time.perf_counter() - start
        self.stats.observe(
            "index_build_ipc",
            max(total - freeze_seconds - child_seconds, 0.0))
        return core, cltree

    def search_sharded(self, name, algorithm, q, k, keywords=None):
        """Partition-parallel execution of one shardable search:
        fan per-shard structural subqueries out over the pool, merge
        and re-verify at the engine layer.  Results are identical to
        unsharded execution (see :mod:`repro.engine.sharding`)."""
        from repro.engine.sharding import sharded_search
        return sharded_search(self, name, algorithm, q, k,
                              keywords=keywords)

    # ------------------------------------------------------------------
    # whole-query worker execution
    # ------------------------------------------------------------------
    def full_query_capable(self, name):
        """Whether whole-query worker execution pays for ``name``.

        True under the process backend (the pipeline is what lets a
        query escape the GIL entirely) and whenever a current frozen
        payload is already cached (the snapshot cost is sunk, so even
        the thread backend profits from the CSR fast paths).
        """
        if self.backend == "process":
            return True
        ready = getattr(self.indexes, "full_payload_ready", None)
        return bool(ready is not None and ready(name))

    def _with_fresh_payload_retry(self, run):
        """Run a payload-backed fan-out, retrying once from a freshly
        frozen payload when corruption escaped the per-job retries.
        The quarantine hook already discarded the cached copy, so the
        inner ``run`` re-freezes from the live graph -- the one
        recovery that helps when the cached bytes themselves (not a
        transient transport) are what is poisoned."""
        try:
            return run()
        except PayloadCorruptionError:
            self.stats.count("payload_retries")
            return run()

    def _full_payload_job_arg(self, name):
        """``(payload, job payload argument)`` for graph ``name``:
        a zero-copy locator (or pickled blob, if the payload plane
        fell back) when jobs ship to worker processes, the snapshot
        object itself when they run in-process (no serialisation hop
        to pay)."""
        payload, fresh = self.indexes.full_payload(name)
        if fresh:
            self.stats.observe("snapshot_build", payload.build_seconds)
        arg = payload.job_arg() if self._process is not None \
            else payload.frozen
        return payload, arg

    def search_full_query(self, name, algorithm, q, k, keywords=None,
                          base=None):
        """Run one whole community search against the cached frozen
        payload of graph ``name`` -- in a worker process under the
        process backend, in-process (same pipeline, same results)
        otherwise.

        ``base`` optionally carries a structural phase the sharded
        merge already reconciled (see :func:`~repro.engine.backends.
        shard_full_query_job`).  Returns live
        :class:`~repro.core.community.Community` objects bound to the
        registered graph.
        """
        from repro.engine.backends import shard_full_query_job

        def run():
            payload, arg = self._full_payload_job_arg(name)
            return self.map_shard_jobs(
                [(shard_full_query_job,
                  (payload.key, arg, algorithm, q, k, keywords,
                   base))],
                op="full_query")
        wires = self._with_fresh_payload_retry(run)
        self.stats.count("worker_full_query")
        graph = self.indexes.graph(name)
        return [Community.from_wire(graph, wire) for wire in wires[0]]

    def search_full_query_batch(self, name, specs):
        """Run a group of whole community searches against **one**
        cached frozen payload round-trip of graph ``name``.

        ``specs`` is a sequence of ``(algorithm, q, k, keywords)``
        tuples; the group ships as a single
        :func:`~repro.engine.backends.batch_full_query_job`, so the
        payload is transferred (and every worker-side derived
        structure built) once for the whole group instead of once per
        query.  Returns one community list per spec, in spec order --
        each byte-identical to what :meth:`search_full_query` would
        return for that spec (the batching layer's tested invariant).
        """
        from repro.engine.backends import batch_full_query_job

        def run():
            payload, arg = self._full_payload_job_arg(name)
            member_faults = None
            if self.faults is not None:
                drawn = [fault_injection.worker_actions(
                            self.faults.draw("batch_member"))
                         for _ in specs]
                member_faults = drawn if any(drawn) else None
            return self.map_shard_jobs(
                [(batch_full_query_job,
                  (payload.key, arg, tuple(specs), member_faults))],
                op="full_query_batch")
        wires = self._with_fresh_payload_retry(run)
        self.stats.count("worker_full_query", len(specs))
        graph = self.indexes.graph(name)
        results = []
        for outcome in wires[0]:
            status, value = outcome
            if status == "ok":
                results.append([Community.from_wire(graph, wire)
                                for wire in value])
            else:
                # One member's failure stays that member's failure:
                # the batching layer retries it solo outside the
                # group (blast-radius isolation).
                results.append(BatchMemberError(value))
        return results

    def detect(self, name, algorithm, params=None, per_component=False):
        """Run one whole-graph CD detection on the frozen payload.

        With ``per_component=True`` the detection fans out as one
        worker job per connected component (each carves its induced
        frozen subgraph from the cached payload); results are the
        concatenation in component order.  Connected graphs degrade
        to the single whole-graph job, whose result is byte-identical
        to inline detection (the frozen equivalence the protocol
        suite proves).  Per-component execution is a *different,
        deterministic plan*: component-local algorithm state (RNG
        sweeps, TF-IDF document frequencies) sees one component
        instead of the union, which only coincides with whole-graph
        output when the graph is connected.
        """
        from repro.engine.backends import component_detect_job

        graph = self.indexes.graph(name)
        wire_params = tuple(sorted(dict(params or {}).items()))
        components = [None]
        if per_component:
            components = sorted(
                tuple(sorted(component))
                for component in graph.connected_components())
            if len(components) == 1:
                components = [None]
        self.stats.count("detect_runs")
        self.stats.count("detect_jobs", len(components))
        self._last_detect_parallelism = len(components)

        def run():
            payload, arg = self._full_payload_job_arg(name)
            jobs = [(component_detect_job,
                     (payload.key, arg, algorithm, component,
                      wire_params))
                    for component in components]
            return self.map_shard_jobs(jobs, op="detect")
        wires = self._with_fresh_payload_retry(run)
        communities = []
        for wire_list in wires:
            communities.extend(Community.from_wire(graph, wire)
                               for wire in wire_list)
        return communities

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _on_index_event(self, name, version, affected,
                        truss_affected=None):
        """Index version bump: evict stale results and memo entries.

        ``affected`` scopes eviction for the minimum-degree families,
        ``truss_affected`` (reported by an attached truss maintainer)
        for the triangle families; either being ``None`` makes its
        families' eviction conservative.  Memo eviction is
        version-aware: truss intermediates are keyed on (and checked
        against) the independent ``truss_version``, so they survive
        events that only moved the CL-tree/k-core index.
        """
        self.cache.invalidate(name, affected=affected,
                              truss_affected=truss_affected)
        if version is None:
            self.memo.invalidate(name)
            return
        try:
            truss_version = self.indexes.truss_version(name)
        except CExplorerError:
            truss_version = None
        self.memo.invalidate(name, version=version,
                             truss_version=truss_version)

    def _run_job(self, job):
        """Claim and execute one admitted job (called from the
        weakref-holding :func:`_engine_worker` loop)."""
        future = job.future
        trace = job.trace
        if not future.set_running():
            # Either cancelled by the caller, or a fan-out
            # coordinator claimed (stole) the job and ran it
            # inline before this worker got to it.
            if future.cancelled():
                self.stats.count("cancelled")
                self.tracer.finish(trace, "cancelled")
            else:
                self.stats.count("stolen")
            return
        queue_wait = time.perf_counter() - job.submitted_at
        # Deadline check only after winning the claim: a stolen
        # job already completed elsewhere and must not be counted
        # (or marked) as timed out.
        if (job.deadline is not None
                and time.perf_counter() > job.deadline):
            self.stats.count("timeouts")
            if trace is not None:
                trace.add_span("queue_wait", queue_wait,
                               parent=None)
                self.tracer.finish(trace, "timeout")
            future.set_exception(QueryTimeoutError(
                "query spent its deadline waiting in the queue"))
            return
        if trace is not None:
            trace.add_span("queue_wait", queue_wait, parent=None)
        with self._lifecycle:
            self._in_flight += 1
        start = time.perf_counter()
        _job_context.deadline = job.deadline
        try:
            with tracing.activate(trace), \
                    tracing.span("execute", op=job.op):
                result = job.fn(*job.args, **job.kwargs)
        except BaseException as exc:
            self.stats.count("errors")
            self.tracer.finish(trace, "error")
            future.set_exception(exc)
        else:
            self.stats.count("completed")
            self.tracer.finish(trace, "ok")
            future.set_result(result)
        finally:
            _job_context.deadline = None
            elapsed = time.perf_counter() - start
            self.stats.observe(job.op, elapsed)
            with self._lifecycle:
                self._in_flight -= 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def queue_depth(self):
        """How many submitted jobs are waiting for a worker."""
        return self._queue.qsize()

    @property
    def accepting(self):
        """Whether :meth:`submit` would admit a query right now --
        the readiness probe's signal (not shut down, queue not at the
        admission-control ceiling)."""
        if self._shutdown:
            return False
        return self._queue.qsize() < self.max_queue

    def snapshot(self):
        """Everything ``/api/metrics`` reports about the engine."""
        doc = self.stats.snapshot()
        doc.update({
            "backend": self.backend,
            # Whole-query worker execution: how many searches ran
            # end-to-end on a frozen payload, and how wide the last
            # CD detection fanned out per component.
            "worker_full_query": self.stats.get("worker_full_query"),
            "detect_parallelism": {
                "last_jobs": self._last_detect_parallelism,
                "runs": self.stats.get("detect_runs"),
                "jobs": self.stats.get("detect_jobs"),
            },
            "index_build_fallbacks": getattr(self.indexes,
                                             "build_fallbacks", 0),
            "workers": self.workers,
            "started": bool(self._threads),
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "in_flight": self._in_flight,
            "cache": self.cache.stats(),
            "memo": self.memo.stats(),
            "truss": self.indexes.truss_stats(),
            "traces": self.tracer.stats(),
            "resilience": self.resilience.snapshot(faults=self.faults),
            "payloads": payload_plane.plane_stats(),
        })
        if self.explorer is not None:
            names = self.indexes.names()
            shard_entries = set()
            for name in names:
                shard_entries.update(self.indexes.shard_names(name))
            # Top-level indexes: user-registered graphs only; the
            # per-shard entries report under "partitions" instead.
            doc["indexes"] = {
                name: self.indexes.stats(name)
                for name in names if name not in shard_entries
            }
            partitions = {}
            for name in names:
                info = self.indexes.shard_stats(name)
                if info is not None:
                    partitions[name] = info
            if partitions:
                doc["partitions"] = partitions
        return doc
