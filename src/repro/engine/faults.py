"""Deterministic fault injection: the testable half of resilience.

A fault-tolerant execution plane is unfalsifiable without a way to
*cause* the faults it claims to survive.  This module provides the
seeded :class:`FaultPlan` that the chaos suite, the CI ``chaos`` job
and the resilience benchmark all drive: a plan can kill worker jobs,
delay/duplicate/drop shard jobs, corrupt pickled payloads, break the
process pool, and raise inside named tracing spans -- each with a
deterministic, seed-derived decision per injection site, so a failing
chaos run replays bit-for-bit.

Determinism is the design constraint.  Every decision is drawn
**parent-side at dispatch time** from a counter-indexed PRNG stream
(``seed : rule index : op : invocation``), never from worker-side
state: the same plan against the same query sequence injects the same
faults regardless of scheduling, pool size, or which worker picks a
job up.  The drawn actions ship *with* the job (see
:func:`~repro.engine.backends._timed_job`) and fire inside the worker.

Plans are installable three ways, all equivalent:

* ``QueryEngine(faults=FaultPlan.from_spec("seed=7;kill:shard@0.05"))``
* the CLI: ``--fault-plan "seed=7;kill:shard@0.05"``
* the environment: ``REPRO_FAULT_PLAN=...`` (what the CI chaos job
  sets; every engine constructed without an explicit plan picks it
  up).

Spec grammar (``;``-separated tokens)::

    seed=<int>
    <kind>:<target>@<rate>[=<param>][#<limit>]

``kind`` is one of :data:`FAULT_KINDS`; ``target`` is an
``fnmatch``-style pattern over job-class names (``shard``,
``full_query``, ``full_query_batch``, ``detect``, ``batch_member``)
or ``span:<name>`` for span-level ``error`` rules; ``rate`` is the
injection probability; ``param`` is kind-specific (sleep seconds for
``delay``, message for ``error``); ``#limit`` caps total injections
from that rule (how tests let a breaker's probe eventually succeed).
"""

import json
import os
import random
import threading
from fnmatch import fnmatchcase

from repro.util.errors import (
    EngineError,
    FaultInjectedError,
    WorkerKilledError,
)

ENV_VAR = "REPRO_FAULT_PLAN"

#: kinds a rule may inject.  ``kill`` and ``drop`` abort the job with a
#: retryable :class:`~repro.util.errors.WorkerKilledError` (``drop``
#: models a lost result, ``kill`` a dead worker -- distinguished only
#: in counters); ``delay`` sleeps; ``duplicate`` runs the (idempotent)
#: job twice; ``corrupt`` poisons the shipped payload parent-side (a
#: flipped byte of a pickled blob, a corrupted locator for a
#: zero-copy payload ref); ``segment_loss`` unlinks the shared-memory
#: segment behind a payload ref at the dispatch site, so the worker
#: discovers the loss at attach time (exercises the re-pickle
#: fallback); ``pool_break`` fails dispatch as if the process pool
#: died; ``error`` raises a :class:`FaultInjectedError` (inside a span
#: for ``span:*`` targets, at job start otherwise).
FAULT_KINDS = ("kill", "drop", "delay", "duplicate", "corrupt",
               "segment_loss", "pool_break", "error")

# Kinds that execute inside the worker (shipped with the job); the
# rest act at the parent's dispatch site.
WORKER_KINDS = ("kill", "drop", "delay", "duplicate", "error")


class FaultSpecError(EngineError):
    """A fault-plan spec string did not parse."""


class FaultRule:
    """One injection rule: *kind*, applied to ops matching *target*,
    with probability *rate*."""

    __slots__ = ("kind", "target", "rate", "param", "limit")

    def __init__(self, kind, target, rate, param=None, limit=None):
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind {!r}; choose from {}".format(
                    kind, FAULT_KINDS))
        if not 0.0 <= float(rate) <= 1.0:
            raise FaultSpecError(
                "fault rate must be in [0, 1], got {!r}".format(rate))
        self.kind = kind
        self.target = target
        self.rate = float(rate)
        self.param = param
        self.limit = int(limit) if limit is not None else None

    def matches(self, op):
        return fnmatchcase(op, self.target)

    def to_spec(self):
        token = "{}:{}@{}".format(self.kind, self.target, self.rate)
        if self.param is not None:
            token += "={}".format(self.param)
        if self.limit is not None:
            token += "#{}".format(self.limit)
        return token


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with deterministic,
    counter-indexed draws.

    Thread-safe: draws from concurrent queries serialise on one lock,
    and the (rule, op) invocation counters -- the only mutable state --
    advance one injection site at a time.  ``snapshot()`` reports what
    actually fired, per kind, for the metrics plane.
    """

    def __init__(self, seed=0, rules=()):
        self.seed = int(seed)
        self.rules = tuple(rules)
        self._lock = threading.Lock()
        self._counters = {}
        self._injected = {}
        self._per_rule = [0] * len(self.rules)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec):
        """Parse the compact ``seed=...;kind:target@rate`` grammar (or
        its JSON object equivalent).  Returns ``None`` for an
        empty/blank spec."""
        if spec is None:
            return None
        spec = spec.strip()
        if not spec:
            return None
        if spec.startswith("{"):
            return cls._from_json(spec)
        seed = 0
        rules = []
        for token in spec.split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[len("seed="):])
                except ValueError:
                    raise FaultSpecError(
                        "bad seed in fault spec: {!r}".format(token)
                    ) from None
                continue
            rules.append(cls._parse_rule(token))
        return cls(seed=seed, rules=rules)

    @classmethod
    def _from_json(cls, spec):
        try:
            doc = json.loads(spec)
        except ValueError as exc:
            raise FaultSpecError(
                "fault spec is not valid JSON: {}".format(exc)
            ) from None
        rules = [FaultRule(r["kind"], r.get("target", "*"),
                           r.get("rate", 1.0), r.get("param"),
                           r.get("limit"))
                 for r in doc.get("rules", ())]
        return cls(seed=doc.get("seed", 0), rules=rules)

    @staticmethod
    def _parse_rule(token):
        try:
            kind, rest = token.split(":", 1)
            target, rest = rest.rsplit("@", 1)
        except ValueError:
            raise FaultSpecError(
                "bad fault rule {!r}; expected kind:target@rate"
                "[=param][#limit]".format(token)) from None
        limit = None
        if "#" in rest:
            rest, limit = rest.split("#", 1)
        param = None
        if "=" in rest:
            rest, param = rest.split("=", 1)
            try:
                param = float(param)
            except ValueError:
                pass  # non-numeric params (error messages) stay strings
        try:
            rate = float(rest)
        except ValueError:
            raise FaultSpecError(
                "bad fault rate in {!r}".format(token)) from None
        return FaultRule(kind.strip(), target.strip(), rate,
                         param=param, limit=limit)

    @classmethod
    def from_env(cls, environ=None):
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None``."""
        environ = environ if environ is not None else os.environ
        return cls.from_spec(environ.get(ENV_VAR))

    def to_spec(self):
        """The compact spec string round-tripping this plan."""
        tokens = ["seed={}".format(self.seed)]
        tokens.extend(rule.to_spec() for rule in self.rules)
        return ";".join(tokens)

    # ------------------------------------------------------------------
    # drawing
    # ------------------------------------------------------------------
    def draw(self, op):
        """The fault actions (``(kind, param)`` pairs) to inject into
        this invocation of job class ``op`` -- deterministic in
        ``(seed, op, how many times op was drawn before)``.  Returns
        ``None`` when nothing fires (the overwhelmingly common case,
        kept allocation-free)."""
        actions = None
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind == "error" and \
                        rule.target.startswith("span:"):
                    continue  # span rules fire via the span hook
                if not rule.matches(op):
                    continue
                n = self._counters.get((i, op), 0)
                self._counters[(i, op)] = n + 1
                if rule.limit is not None and \
                        self._per_rule[i] >= rule.limit:
                    continue
                if self._roll(i, op, n) >= rule.rate:
                    continue
                self._per_rule[i] += 1
                self._injected[rule.kind] = \
                    self._injected.get(rule.kind, 0) + 1
                if actions is None:
                    actions = []
                actions.append((rule.kind, rule.param))
        return actions

    def span_fault(self, name):
        """Raise :class:`FaultInjectedError` when a ``span:<name>``
        rule fires for this span entry (the hook
        :func:`~repro.engine.tracing.set_fault_hook` installs)."""
        op = "span:" + name
        message = None
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind != "error" or not rule.matches(op):
                    continue
                n = self._counters.get((i, op), 0)
                self._counters[(i, op)] = n + 1
                if rule.limit is not None and \
                        self._per_rule[i] >= rule.limit:
                    continue
                if self._roll(i, op, n) >= rule.rate:
                    continue
                self._per_rule[i] += 1
                self._injected["error"] = \
                    self._injected.get("error", 0) + 1
                message = (rule.param if isinstance(rule.param, str)
                           else "injected fault in span {!r}".format(
                               name))
                break
        if message is not None:
            raise FaultInjectedError(message)

    def has_span_rules(self):
        return any(rule.kind == "error"
                   and rule.target.startswith("span:")
                   for rule in self.rules)

    def _roll(self, rule_index, op, n):
        """One U(0,1) draw for injection site ``(rule, op, n)`` --
        a fresh PRNG per site, so sites are independent and order
        of evaluation never matters."""
        return random.Random(
            "{}:{}:{}:{}".format(self.seed, rule_index, op, n)).random()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def injected(self, kind=None):
        """Total injections, optionally for one kind."""
        with self._lock:
            if kind is not None:
                return self._injected.get(kind, 0)
            return sum(self._injected.values())

    def snapshot(self):
        with self._lock:
            return {"seed": self.seed,
                    "rules": [rule.to_spec() for rule in self.rules],
                    "injected": dict(self._injected)}


def worker_actions(actions):
    """The subset of drawn ``actions`` that execute inside the worker
    (shipped with the job); parent-side kinds are filtered out."""
    if not actions:
        return None
    shipped = [a for a in actions if a[0] in WORKER_KINDS]
    return shipped or None


def apply_worker_actions(actions):
    """Fire worker-side fault actions (except ``duplicate``, which the
    job wrapper handles because it needs the job callable)."""
    import time as _time

    for kind, param in actions or ():
        if kind == "kill":
            raise WorkerKilledError(
                "fault injection killed this worker job")
        if kind == "drop":
            raise WorkerKilledError(
                "fault injection dropped this job's result")
        if kind == "delay":
            _time.sleep(float(param) if param is not None else 0.01)
        elif kind == "error":
            raise FaultInjectedError(
                param if isinstance(param, str)
                else "injected job error")


def wants_duplicate(actions):
    return any(kind == "duplicate" for kind, _ in actions or ())


def corrupt_blob(blob, seed=0):
    """A copy of ``blob`` with its pickle header byte flipped.

    Flipping a *random* byte could land inside string data and yield a
    blob that still unpickles -- to silently wrong values, which the
    corruption-detection path could never catch.  Flipping the
    protocol opcode makes every unpickle fail loudly, which is the
    failure mode quarantine exists for.  ``seed`` is accepted for
    signature stability but the corruption is always detectable.
    """
    del seed
    if not isinstance(blob, (bytes, bytearray)) or not blob:
        return blob
    corrupted = bytearray(blob)
    corrupted[0] ^= 0xFF
    return bytes(corrupted)
