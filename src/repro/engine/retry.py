"""Retry, hedging and circuit-breaking policy: how the engine reacts
to failure instead of propagating it.

Three mechanisms, composed by the executor's fan-out paths:

* :class:`RetryPolicy` -- per-job-class retry budgets.  Every engine
  job class (``shard``, ``full_query``, ``full_query_batch``,
  ``detect``) is a pure function of an immutable frozen payload, so
  retries are always safe; the policy only decides *how many* and *how
  spaced* (capped exponential backoff with deterministic jitter), and
  the remaining-deadline budget always wins -- a retry whose backoff
  would outlive the caller's deadline is not attempted.

* **Hedging** -- a straggler job past the observed p95 of its class
  (times :data:`HEDGE_ALPHA`) gets one duplicate submission; the first
  result wins and the loser is cancelled (best-effort parent-side,
  cooperatively in the worker via the shipped deadline).  Hedging is
  the standard tail-latency answer when a worker stalls rather than
  dies; idempotent jobs make it free of semantic risk.

* :class:`CircuitBreaker` / :class:`ResiliencePlane` -- per-substrate
  breakers implementing the degradation ladder
  ``process -> thread -> inline``.  Consecutive infrastructure
  failures (pool death, submission failure) open the breaker; while
  open, fan-outs skip the substrate entirely (no doomed submissions,
  no fallback latency); after a cooldown one *probe* fan-out is let
  through (half-open), and its success promotes the substrate back.
  Payload corruption deliberately does **not** count against the
  breaker -- a poisoned ``(graph, version)`` payload is quarantined
  individually (see ``QueryEngine._quarantine``) so one bad graph
  cannot condemn an otherwise healthy backend.
"""

import threading
import time
import zlib

from repro.util.errors import (
    FaultInjectedError,
    PayloadCorruptionError,
    WorkerKilledError,
)

#: exceptions a per-job retry may absorb: transient worker failures
#: and injected faults.  Pool death is *not* here -- that is a
#: substrate failure handled by the breaker/fallback ladder, and
#: deadline/cancellation signals always propagate untouched.
RETRYABLE = (WorkerKilledError, FaultInjectedError,
             PayloadCorruptionError)

#: hedge a job once it has run longer than p95 * alpha of its class.
HEDGE_ALPHA = 4.0

#: observed samples of a job class before its p95 is trusted for
#: hedging decisions (a cold histogram hedges everything or nothing).
HEDGE_MIN_SAMPLES = 20

#: never hedge before this many seconds, whatever the p95 says --
#: duplicating microsecond jobs buys nothing and doubles pool load.
HEDGE_MIN_SECONDS = 0.05

#: the degradation ladder, most- to least-parallel.
SUBSTRATES = ("process", "thread", "inline")


class RetryPolicy:
    """Retry budget and backoff schedule for one job class."""

    __slots__ = ("attempts", "base_delay", "max_delay", "hedge")

    def __init__(self, attempts=3, base_delay=0.005, max_delay=0.1,
                 hedge=True):
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.hedge = bool(hedge)

    def backoff(self, attempt, token=""):
        """Sleep before retry number ``attempt`` (1-based): capped
        exponential with deterministic jitter in [0, 50%] derived from
        ``token`` -- reproducible under a seeded fault plan, yet
        decorrelated across jobs so a killed fan-out does not retry in
        lockstep."""
        base = min(self.max_delay,
                   self.base_delay * (2 ** (attempt - 1)))
        jitter = (zlib.crc32("{}:{}".format(token, attempt)
                             .encode("utf-8")) % 1000) / 2000.0
        return base * (1.0 + jitter)


#: per-job-class policies; job classes not named here use DEFAULT.
#: ``full_query_batch`` does not hedge: duplicating a whole group's
#: job doubles the largest unit of work in the system for one
#: straggling member -- the batching layer's solo-retry is the better
#: tool there.
POLICIES = {
    "shard": RetryPolicy(attempts=3, hedge=True),
    "full_query": RetryPolicy(attempts=3, hedge=True),
    "full_query_batch": RetryPolicy(attempts=3, hedge=False),
    "detect": RetryPolicy(attempts=2, hedge=False),
}

DEFAULT_POLICY = RetryPolicy(attempts=2, hedge=False)


class CircuitBreaker:
    """Closed / open / half-open breaker for one execution substrate.

    Opens after ``failure_threshold`` consecutive failures *or* when
    the error rate over the last ``window`` outcomes exceeds
    ``error_rate`` (with at least ``failure_threshold`` failures seen),
    stays open for ``cooldown`` seconds, then admits exactly one probe
    (half-open).  The probe's outcome decides: success closes the
    breaker (promotion), failure re-opens it for another cooldown.
    Thread-safe; all timing uses a monotonic clock.
    """

    def __init__(self, name, failure_threshold=3, window=16,
                 error_rate=0.5, cooldown=5.0):
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.window = int(window)
        self.error_rate = float(error_rate)
        self.cooldown = float(cooldown)
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._recent = []          # ring of recent outcomes (bools)
        self._next = 0
        self._opened_at = None
        self._probe_inflight = False
        self.opens = 0
        self.probes = 0
        self.promotions = 0
        self._degraded_seconds = 0.0

    @property
    def state(self):
        with self._lock:
            return self._state

    def allow(self):
        """Whether a fan-out may use this substrate right now:
        ``True`` (closed), ``"probe"`` (half-open, this caller is the
        probe), or ``False`` (open / probe already in flight)."""
        now = time.monotonic()
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if now - self._opened_at < self.cooldown:
                    return False
                self._state = "half_open"
                self._probe_inflight = False
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            self.probes += 1
            return "probe"

    def record_success(self):
        with self._lock:
            self._record(True)
            if self._state == "half_open":
                self._degraded_seconds += \
                    time.monotonic() - self._opened_at
                self._opened_at = None
                self._state = "closed"
                self._probe_inflight = False
                self.promotions += 1
            self._consecutive = 0

    def record_failure(self):
        with self._lock:
            self._record(False)
            self._consecutive += 1
            if self._state == "half_open":
                # The probe failed: back to open, clock restarts.
                self._state = "open"
                self._probe_inflight = False
                self._opened_at = time.monotonic()
                return
            if self._state == "closed" and self._should_open():
                self._state = "open"
                self._opened_at = time.monotonic()
                self.opens += 1

    def _record(self, ok):
        if len(self._recent) < self.window:
            self._recent.append(ok)
        else:
            self._recent[self._next] = ok
            self._next = (self._next + 1) % self.window
        return ok

    def _should_open(self):
        if self._consecutive >= self.failure_threshold:
            return True
        failures = sum(1 for ok in self._recent if not ok)
        return (failures >= self.failure_threshold
                and failures / len(self._recent) >= self.error_rate)

    def degraded_seconds(self):
        """Cumulative seconds spent open/half-open (live-inclusive)."""
        with self._lock:
            total = self._degraded_seconds
            if self._opened_at is not None:
                total += time.monotonic() - self._opened_at
            return total

    def snapshot(self):
        with self._lock:
            live = self._degraded_seconds
            if self._opened_at is not None:
                live += time.monotonic() - self._opened_at
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "opens": self.opens,
                "probes": self.probes,
                "promotions": self.promotions,
                "degraded_seconds": round(live, 6),
            }


class ResiliencePlane:
    """The engine's failure-handling state, gathered in one object:
    substrate breakers, the payload quarantine set, hedging
    thresholds, and the resilience counters the metrics plane
    exports.  One per :class:`~repro.engine.executor.QueryEngine`.
    """

    COUNTER_KEYS = ("retries", "retry_exhausted", "hedges",
                    "hedges_won", "hedges_lost", "quarantines",
                    "breaker_rejections", "payload_retries",
                    "batch_member_retries", "faults_injected")

    def __init__(self, stats, breaker_cooldown=5.0,
                 hedge_alpha=HEDGE_ALPHA,
                 hedge_min_samples=HEDGE_MIN_SAMPLES):
        self.stats = stats
        self.hedge_alpha = float(hedge_alpha)
        self.hedge_min_samples = int(hedge_min_samples)
        self.breakers = {
            "process": CircuitBreaker("process",
                                      cooldown=breaker_cooldown),
            "thread": CircuitBreaker("thread",
                                     cooldown=breaker_cooldown),
        }
        self._lock = threading.Lock()
        self._quarantined = set()

    # ------------------------------------------------------------------
    # policies
    # ------------------------------------------------------------------
    @staticmethod
    def policy(op):
        return POLICIES.get(op, DEFAULT_POLICY)

    def substrate(self, preferred):
        """Walk the degradation ladder from ``preferred`` down to the
        first substrate whose breaker admits work.  Returns
        ``(substrate, probe)`` -- ``probe`` flags a half-open trial
        whose outcome the caller must report.  ``inline`` has no
        breaker: serial execution on the coordinating thread is the
        floor that always works."""
        start = SUBSTRATES.index(preferred)
        for level in SUBSTRATES[start:]:
            breaker = self.breakers.get(level)
            if breaker is None:
                return level, False
            verdict = breaker.allow()
            if verdict:
                return level, verdict == "probe"
            self.stats.count("breaker_rejections")
        return "inline", False

    def record(self, level, ok):
        """Report a substrate outcome to its breaker (no-op for
        ``inline``)."""
        breaker = self.breakers.get(level)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    # ------------------------------------------------------------------
    # hedging
    # ------------------------------------------------------------------
    def hedge_threshold(self, op):
        """Seconds after which a running ``op`` job deserves a hedged
        duplicate, or ``None`` while the latency history is too cold
        to call anything a straggler."""
        if not self.policy(op).hedge:
            return None
        probe = getattr(self.stats, "latency_probe", None)
        if probe is None:
            return None
        count, p95 = probe(op)
        if count < self.hedge_min_samples or p95 <= 0.0:
            return None
        return max(p95 * self.hedge_alpha, HEDGE_MIN_SECONDS)

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def quarantine(self, key):
        """Mark one payload identity as poisoned; returns whether it
        was newly quarantined."""
        with self._lock:
            if key in self._quarantined:
                return False
            self._quarantined.add(key)
        self.stats.count("quarantines")
        return True

    def is_quarantined(self, key):
        with self._lock:
            return key in self._quarantined

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self, faults=None):
        counters = {key: self.stats.get(key)
                    for key in self.COUNTER_KEYS}
        if faults is not None:
            counters["faults_injected"] = faults.injected()
        doc = {
            "counters": counters,
            "breakers": {name: breaker.snapshot()
                         for name, breaker in self.breakers.items()},
            "quarantined": len(self._quarantined),
            "degraded": any(b.state != "closed"
                            for b in self.breakers.values()),
        }
        if faults is not None:
            doc["fault_plan"] = faults.snapshot()
        return doc
