"""Explicit index lifecycle: versioned CL-tree/k-core snapshots.

The seed system built indexes lazily and ad hoc: whichever request
first touched a graph paid the CL-tree build on its own thread, and
nothing noticed when maintenance mutated the graph underneath.  The
:class:`IndexManager` makes the lifecycle explicit, the way Polynesia
(PAPERS.md) separates index maintenance from the query path:

* **register** a graph with a build policy -- ``lazy`` (first query
  pays), ``eager`` (build-on-upload, synchronously), or
  ``background`` (a builder thread runs while queries fall back to
  index-free execution);
* **snapshot** returns an immutable :class:`IndexSnapshot` (core
  numbers + CL-tree) at a specific *version*;
* **invalidate** bumps the version, marks the snapshot stale, and
  notifies subscribers (the engine's result cache selectively evicts);
* **attach_maintainer** wires a
  :class:`~repro.core.maintenance.CoreMaintainer` so that every
  incremental edge update bumps the version automatically, hands the
  patched core numbers to the next rebuild for free, and reports the
  affected region (changed vertices + their neighbourhoods) for
  selective cache eviction;
* **attach_truss_maintainer** additionally wires a
  :class:`~repro.core.truss_maintenance.TrussMaintainer` behind the
  same mutation gateway: each applied update patches per-edge support
  and trussness incrementally and reports the *truss-affected* region,
  so cached k-truss/ATC results survive unrelated updates instead of
  being evicted wholesale.

Versions are per-graph monotonic integers; anything keyed by
``(graph, version)`` is immune to stale reads by construction.  The
**truss index** (the ``{edge: truss}`` map behind the triangle
families) is versioned independently of the CL-tree snapshot: it has
its own monotonic ``truss_version``, and with a truss maintainer
attached it never goes stale under maintenance -- updates patch it in
place while the CL-tree snapshot is rebuilt lazily.
"""

import itertools
import pickle
import threading
import time
import weakref

from repro.core.cltree import build_cltree
from repro.core.kcore import core_decomposition
from repro.core.ktruss import truss_decomposition
from repro.core.maintenance import CoreMaintainer
from repro.core.truss_maintenance import (
    TrussMaintainer,
    truss_affected_vertices,
)
from repro.engine import payloads, tracing
from repro.graph.frozen import FrozenGraph
from repro.util.errors import CExplorerError


class IndexSnapshot:
    """One immutable build of a graph's derived index structures."""

    __slots__ = ("name", "version", "core", "cltree", "built_at",
                 "build_seconds")

    def __init__(self, name, version, core, cltree, build_seconds):
        self.name = name
        self.version = version
        self.core = core
        self.cltree = cltree
        self.built_at = time.time()
        self.build_seconds = build_seconds


class _IndexEntry:
    __slots__ = ("name", "graph", "version", "snapshot", "core",
                 "maintainer", "builder", "build_count",
                 "truss_maintainer", "truss", "truss_version",
                 "truss_built_version")

    def __init__(self, name, graph):
        self.name = name
        self.graph = graph
        self.version = 1
        self.snapshot = None
        self.core = None            # core numbers, possibly sans cltree
        self.maintainer = None
        self.builder = None         # in-flight background build thread
        self.build_count = 0
        self.truss_maintainer = None
        self.truss = None           # cached {edge: truss} map
        self.truss_version = 1      # independent truss-index version
        self.truss_built_version = 0


class GraphPayload:
    """A whole graph, frozen and ready to ship to a worker process.

    ``frozen`` is the CSR snapshot (what an in-process job consumes
    directly); ``blob`` lazily pickles it once for process shipping,
    and :meth:`job_arg` prefers the zero-copy payload plane
    (:mod:`repro.engine.payloads`): the snapshot is published once
    into a shared-memory segment and jobs carry a tiny ref instead of
    the blob.  ``key`` is the ``(manager epoch, graph, "full",
    version)`` identity workers cache their attached/unpickled copy
    -- and every derived structure (core numbers, CL-tree, truss map)
    -- under, so repeated whole-query jobs against an unchanged graph
    pay neither the transfer nor the decompositions.
    """

    __slots__ = ("key", "version", "frozen", "_blob", "_segment",
                 "_transport_lock", "build_seconds")

    def __init__(self, key, version, frozen, build_seconds):
        self.key = key
        self.version = version
        self.frozen = frozen
        self._blob = None
        self._segment = None
        self._transport_lock = threading.Lock()
        self.build_seconds = build_seconds

    @property
    def blob(self):
        """The pickled snapshot (serialised once, on first use)."""
        if self._blob is None:
            with tracing.span("payload_pickle"):
                self._blob = pickle.dumps(
                    self.frozen, protocol=pickle.HIGHEST_PROTOCOL)
        return self._blob

    def _extras(self):
        """Sidecar tuple published next to the CSR (none for a whole
        graph; shard payloads override)."""
        return None

    def ref(self):
        """The payload-plane locator, publishing on first use (one
        segment per payload, guarded against concurrent queries).
        ``None`` when every zero-copy rung is unavailable."""
        with self._transport_lock:
            if self._segment is None:
                self._segment = payloads.publish(
                    self.key, self.frozen, self._extras())
            return self._segment.ref if self._segment is not None \
                else None

    def job_arg(self):
        """What a process-shipped job should carry: the zero-copy ref
        when the plane is up, else the pickled blob."""
        ref = self.ref()
        return ref if ref is not None else self.blob

    def release(self):
        """Drop this payload's segment reference (unlinks at zero).
        Idempotent; called on version bump, eviction, quarantine
        discard, unregister, and engine shutdown."""
        with self._transport_lock:
            segment, self._segment = self._segment, None
        if segment is not None:
            segment.release()


def _release_orphaned(lock, stores):
    """GC finalizer for a manager dropped without ``shutdown()``: its
    cached payloads must not pin shared-memory segments until the
    atexit sweep.  ``stores`` is the manager's list of payload dicts
    (subclasses append their own), captured without a reference to
    the manager itself."""
    stale = []
    with lock:
        for store in stores:
            stale.extend(store.values())
            store.clear()
    for payload in stale:
        payload.release()


class IndexManager:
    """Versioned, invalidation-aware index store for many graphs."""

    BUILD_MODES = ("lazy", "eager", "background")

    # Distinguishes payloads of same-named graphs held by *different*
    # managers: worker-side caches key on the payload identity, and an
    # in-process (fallback) execution shares one cache across every
    # engine in the parent, so (name, version) alone could collide.
    _payload_epochs = itertools.count(1)

    def __init__(self):
        self._entries = {}
        self._lock = threading.RLock()
        self._subscribers = []
        # name -> GraphPayload, valid while the entry's version
        # matches; one latest payload per graph, so the cache is
        # bounded by the number of registered graphs.
        self._full_payloads = {}
        self._payload_epoch = next(self._payload_epochs)
        # Payload dicts to drain when this manager is collected
        # without an explicit ``release_payloads`` (an engine dropped
        # without shutdown); subclasses append theirs.
        self._payload_stores = [self._full_payloads]
        self._payload_finalizer = weakref.finalize(
            self, _release_orphaned, self._lock, self._payload_stores)
        # Optional build delegate ``(graph, core=None) -> (core,
        # cltree)``; the engine's process backend installs one so
        # CL-tree builds (every graph *and* every shard entry, so an
        # upload builds all shard trees concurrently) run in worker
        # processes instead of under the GIL.  Any executor failure
        # falls back to the in-process build below.
        self.build_executor = None
        # How many delegated builds failed and fell back locally --
        # surfaced through the engine snapshot so a permanently broken
        # process-backend build path cannot degrade silently.
        self.build_fallbacks = 0
        # Size of the most recent truss cascade across *all* maintained
        # graphs (per-maintainer counters cannot say which update was
        # last when several graphs are maintained).
        self.last_truss_cascade_size = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name, graph, build="lazy"):
        """Register (or replace) ``name``; returns the new version.

        Replacing a graph bumps the version and notifies subscribers,
        so every cache keyed on this graph is invalidated.
        """
        if build not in self.BUILD_MODES:
            raise CExplorerError(
                "unknown build mode {!r}; choose from {}".format(
                    build, self.BUILD_MODES))
        with self._lock:
            old = self._entries.get(name)
            entry = _IndexEntry(name, graph)
            if old is not None:
                entry.version = old.version + 1
                entry.truss_version = old.truss_version + 1
            self._entries[name] = entry
            version = entry.version
        self._notify(name, version, None)
        if build == "eager":
            self.snapshot(name)
        elif build == "background":
            self.build_async(name)
        return version

    def unregister(self, name):
        """Drop ``name`` and notify subscribers (caches evict)."""
        with self._lock:
            self._entries.pop(name, None)
            stale = self._full_payloads.pop(name, None)
        if stale is not None:
            stale.release()
        self._notify(name, None, None)

    def names(self):
        """Sorted names of every registered index entry."""
        with self._lock:
            return sorted(self._entries)

    def _entry(self, name):
        try:
            return self._entries[name]
        except KeyError:
            raise CExplorerError(
                "no graph named {!r} registered".format(name)) from None

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def version(self, name):
        """The current (monotonic) index version of ``name``."""
        with self._lock:
            return self._entry(name).version

    def graph(self, name):
        """The registered graph object for ``name``."""
        with self._lock:
            return self._entry(name).graph

    def built(self, name):
        """Whether a current-version snapshot exists right now."""
        with self._lock:
            entry = self._entry(name)
            return (entry.snapshot is not None
                    and entry.snapshot.version == entry.version)

    def core(self, name):
        """Current core numbers (cheap path: no CL-tree build).

        With a maintainer attached this is the incrementally patched
        array; otherwise it is computed once per version and cached.
        The decomposition itself runs outside the manager lock so
        version/built probes (every request's cache fast path) never
        stall behind a cold build.
        """
        with self._lock:
            entry = self._entry(name)
            if entry.core is not None:
                return entry.core
            maintainer = entry.maintainer
            graph = entry.graph
            version = entry.version
        if maintainer is not None:
            core = maintainer.core_numbers()
        else:
            core = core_decomposition(graph)
        with self._lock:
            fresh = self._entries.get(name)
            if fresh is entry and entry.version == version:
                if entry.core is None:
                    entry.core = core
                return entry.core
        return core

    def truss(self, name):
        """Current truss numbers ``{(u, v): t}`` of graph ``name``.

        The triangle-family counterpart of :meth:`core`: with a truss
        maintainer attached this is the incrementally patched map;
        otherwise it is recomputed once per truss version and cached.
        Callers must treat the returned map as read-only.  The
        decomposition runs outside the manager lock so version probes
        never stall behind a cold build.
        """
        with self._lock:
            entry = self._entry(name)
            if (entry.truss is not None
                    and entry.truss_built_version == entry.truss_version):
                return entry.truss
            maintainer = entry.truss_maintainer
            graph = entry.graph
            tversion = entry.truss_version
        if maintainer is not None:
            truss = maintainer.truss_numbers()
        else:
            truss = truss_decomposition(graph)
        with self._lock:
            fresh = self._entries.get(name)
            if fresh is entry and entry.truss_version == tversion:
                entry.truss = truss
                entry.truss_built_version = tversion
                return entry.truss
        return truss

    def truss_version(self, name):
        """The independent truss-index version of ``name``."""
        with self._lock:
            return self._entry(name).truss_version

    def full_payload(self, name):
        """The whole-graph frozen payload, cached per
        ``(graph, version)``.

        Returns ``(payload, fresh)`` where ``fresh`` says the snapshot
        was (re)built by this call (the engine records the build time
        under the ``snapshot_build`` latency op).  This is what the
        whole-query execution path ships to workers: one immutable CSR
        snapshot per graph version, against which a worker runs an
        entire search or detection and caches every derived structure
        (core numbers, CL-tree, truss map) under the payload's
        identity.  Maintenance invalidates it exactly when it bumps
        the graph's version.
        """
        start = time.perf_counter()
        with self._lock:
            entry = self._entry(name)
            version = entry.version
            graph = entry.graph
            cached = self._full_payloads.get(name)
            if cached is not None and cached.version == version:
                return cached, False
        # Freeze outside the lock: an O(V + E) snapshot must not
        # stall every concurrent version/built probe.  The manager
        # lock would not serialise graph mutations anyway (the
        # maintainer gateway mutates the parent graph before its
        # listeners take this lock); the version-checked publish
        # below keeps the cache coherent, and a racing bump simply
        # leaves the payload unpublished -- the in-flight query may
        # still use its consistent snapshot of the prior state.
        with tracing.span("payload_freeze", graph=name):
            frozen = FrozenGraph.from_graph(graph)
        payload = GraphPayload(
            (self._payload_epoch, name, "full", version), version,
            frozen, 0.0)
        payload.build_seconds = time.perf_counter() - start
        replaced = None
        with self._lock:
            fresh = self._entries.get(name)
            if fresh is not None and fresh.graph is graph \
                    and fresh.version == version:
                replaced = self._full_payloads.get(name)
                self._full_payloads[name] = payload
        if replaced is not None:
            replaced.release()
        return payload, True

    def seed_payload(self, name, frozen):
        """Adopt ``frozen`` (e.g. an mmap-loaded store snapshot) as
        the current whole-graph payload -- the warm-restart path that
        skips the freeze.  Returns the seeded :class:`GraphPayload`.
        """
        with self._lock:
            entry = self._entry(name)
            payload = GraphPayload(
                (self._payload_epoch, name, "full", entry.version),
                entry.version, frozen, 0.0)
            replaced = self._full_payloads.get(name)
            self._full_payloads[name] = payload
        if replaced is not None:
            replaced.release()
        return payload

    def discard_payload(self, key):
        """Drop any cached payload whose identity is ``key``.

        The corruption-quarantine hook: when a worker reports a
        payload that failed to attach or unpickle, the engine discards
        exactly that ``(epoch, graph, ..., version)`` entry -- and
        unlinks its shared-memory segment -- so the next query
        re-freezes and re-publishes from the live graph instead of
        re-shipping poisoned bytes.  Returns whether anything was
        dropped.
        """
        with self._lock:
            stale = None
            for name, payload in list(self._full_payloads.items()):
                if payload.key == key:
                    stale = self._full_payloads.pop(name)
                    break
        if stale is not None:
            stale.release()
            return True
        return False

    def release_payloads(self):
        """Drop every cached payload and unlink its segment (engine
        shutdown: nothing may leak into ``/dev/shm``)."""
        with self._lock:
            stale = list(self._full_payloads.values())
            self._full_payloads.clear()
        for payload in stale:
            payload.release()

    def full_payload_ready(self, name):
        """Whether a current-version whole-graph payload is cached."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return False
            cached = self._full_payloads.get(name)
            return cached is not None and cached.version == entry.version

    def snapshot(self, name, rebuild=False):
        """The current :class:`IndexSnapshot`, building when needed.

        ``rebuild=True`` forces a fresh build at the same version (the
        explorer's ``index(rebuild=True)``).  Lazy builds are
        deduplicated: concurrent first queries share one builder
        thread instead of each constructing the same CL-tree.
        """
        with self._lock:
            entry = self._entry(name)
            snap = entry.snapshot
            if (snap is not None and snap.version == entry.version
                    and not rebuild):
                return snap
        if rebuild:
            return self._build(name)
        self.build_async(name).join()
        with self._lock:
            fresh = self._entries.get(name)
            if fresh is not None:
                snap = fresh.snapshot
                if snap is not None and snap.version == fresh.version:
                    return snap
        # The build raced a version bump; build at the new version.
        return self._build(name)

    def cltree(self, name, rebuild=False):
        """The current CL-tree (building the snapshot when needed)."""
        return self.snapshot(name, rebuild=rebuild).cltree

    def stats(self, name):
        """Lifecycle stats for the metrics endpoint."""
        with self._lock:
            entry = self._entry(name)
            snap = entry.snapshot
            current = snap is not None and snap.version == entry.version
            tm = entry.truss_maintainer
            truss = {
                "version": entry.truss_version,
                "built": (entry.truss is not None
                          and entry.truss_built_version
                          == entry.truss_version),
                "maintained": tm is not None,
            }
            if tm is not None:
                truss["cascades"] = tm.updates
                truss["last_cascade_size"] = tm.last_cascade_size
                truss["max_cascade_size"] = tm.max_cascade_size
            return {
                "version": entry.version,
                "built": current,
                "building": entry.builder is not None,
                "builds": entry.build_count,
                "build_seconds": round(snap.build_seconds, 6)
                if snap else None,
                "maintained": entry.maintainer is not None,
                "truss": truss,
            }

    def truss_stats(self):
        """Aggregate truss-maintenance counters across every graph.

        Feeds the server's ``truss_cascade_size`` metric: how many
        updates the attached truss maintainers absorbed and how large
        their trussness cascades were.
        """
        with self._lock:
            maintainers = [entry.truss_maintainer
                           for entry in self._entries.values()
                           if entry.truss_maintainer is not None]
        doc = {"maintained_graphs": len(maintainers), "updates": 0,
               "changed_edges": 0,
               "last_cascade_size": self.last_truss_cascade_size,
               "max_cascade_size": 0}
        for tm in maintainers:
            doc["updates"] += tm.updates
            doc["changed_edges"] += tm.total_cascade_size
            doc["max_cascade_size"] = max(doc["max_cascade_size"],
                                          tm.max_cascade_size)
        return doc

    # ------------------------------------------------------------------
    # sharding interface -- unsharded defaults, overridden by
    # :class:`~repro.engine.sharding.ShardedIndexManager` so the
    # engine can stay polymorphic over both managers.
    # ------------------------------------------------------------------
    def shards(self, name):
        """How many shards ``name`` is held as (always 1 here)."""
        return 1

    def shard_names(self, name):
        """Index-entry names of ``name``'s shards (none here)."""
        return []

    def shard_stats(self, name):
        """Partition/per-shard stats for ``name`` (``None`` when
        unsharded)."""
        return None

    # ------------------------------------------------------------------
    # builds
    # ------------------------------------------------------------------
    def _build(self, name):
        with self._lock:
            entry = self._entry(name)
            graph = entry.graph
            version = entry.version
            cached_core = entry.core
        start = time.perf_counter()
        core = cltree = None
        executor = self.build_executor
        if executor is not None:
            try:
                # Delegated (process-backend) build: core numbers are
                # computed in the worker too when not already cached,
                # so a cold build pays nothing GIL-bound here.
                core, cltree = executor(graph, core=cached_core)
            except Exception:
                # Deliberately broad: whatever broke the delegate
                # (pool death, pickling, timeout), the build must
                # still succeed locally -- but visibly.
                self.build_fallbacks += 1
                core = cltree = None
        if cltree is None:
            core = self.core(name)
            cltree = build_cltree(graph, core=core)
        build_seconds = time.perf_counter() - start
        tracing.add_span("index_build", build_seconds, graph=name)
        # Compatibility: callers historically read build time off the
        # tree itself.
        cltree.build_seconds = build_seconds
        snap = IndexSnapshot(name, version, core, cltree, build_seconds)
        with self._lock:
            entry = self._entries.get(name)
            # Only publish when nothing newer happened while building.
            if entry is not None and entry.version == version:
                entry.snapshot = snap
                entry.build_count += 1
                if entry.core is None:
                    entry.core = core
        return snap

    def install(self, name, cltree, core=None, build_seconds=0.0):
        """Install a prebuilt CL-tree (e.g. loaded from disk) as the
        current snapshot, skipping the build."""
        with self._lock:
            entry = self._entry(name)
            if core is None:
                core = getattr(cltree, "core", None) \
                    or core_decomposition(entry.graph)
            snap = IndexSnapshot(name, entry.version, core, cltree,
                                 build_seconds)
            entry.snapshot = snap
            entry.core = core
            return snap

    def build_async(self, name):
        """Kick off (or join onto) a background build; returns the
        builder thread."""
        with self._lock:
            entry = self._entry(name)
            if entry.builder is not None:
                return entry.builder

            def run():
                """Builder-thread body: build, then clear the slot."""
                try:
                    self._build(name)
                finally:
                    with self._lock:
                        fresh = self._entries.get(name)
                        if fresh is entry:
                            fresh.builder = None

            thread = threading.Thread(
                target=run, name="cltree-build-{}".format(name),
                daemon=True)
            entry.builder = thread
            # Start before publishing (i.e. before releasing the
            # lock): a concurrent caller must never receive a thread
            # it cannot join yet.
            thread.start()
        return thread

    def wait(self, name, timeout=None):
        """Block until any in-flight background build finishes."""
        with self._lock:
            builder = self._entry(name).builder
        if builder is not None:
            builder.join(timeout)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, name, affected=None, core=None,
                   truss_affected=None, truss=None):
        """Bump ``name``'s version after a mutation.

        ``affected`` is the vertex region the mutation could have
        touched (forwarded to subscribers for selective eviction);
        ``core`` optionally carries already-patched core numbers so the
        next snapshot build skips the decomposition.  ``truss_affected``
        is the triangle-support cascade region a truss maintainer
        reported (``None`` means unknown: subscribers must evict
        triangle-family entries conservatively), and ``truss``
        optionally carries the already-patched truss map so the truss
        index stays built across the bump.
        """
        with self._lock:
            entry = self._entry(name)
            entry.version += 1
            entry.core = core
            entry.truss_version += 1
            entry.truss = truss
            if truss is not None:
                entry.truss_built_version = entry.truss_version
            version = entry.version
            # The cached payload is now one version behind: release
            # it (and its shared-memory segment) eagerly instead of
            # leaving the unlink to the next full_payload replacement.
            stale = self._full_payloads.pop(name, None)
        if stale is not None:
            stale.release()
        self._notify(name, version, affected, truss_affected)
        return version

    def attach_maintainer(self, name, maintainer=None):
        """Route ``name``'s mutations through a
        :class:`CoreMaintainer` wired into version bumps.

        Every edge insert/delete bumps the version, reuses the
        maintainer's patched core numbers, and reports the affected
        region: the edge's endpoints, every promoted/demoted vertex,
        and the changed vertices' neighbourhoods (a component merge or
        split must pass through one of those).
        """
        with self._lock:
            entry = self._entry(name)
            if entry.maintainer is not None and \
                    maintainer in (None, entry.maintainer):
                # Re-attaching (implicitly or with the already-wired
                # maintainer) is a no-op: a second listener would bump
                # versions twice per update.
                return entry.maintainer
            if maintainer is None:
                maintainer = CoreMaintainer(entry.graph)
            entry.maintainer = maintainer
            entry.core = maintainer.core_numbers()

        def on_update(event):
            """Per-update hook: patch truss state, then invalidate."""
            graph = maintainer.graph
            affected = set(event["edge"])
            for w in event["changed"]:
                affected.add(w)
                affected.update(graph.neighbors(w))
            truss_affected = None
            tm = self._truss_maintainer_for(name, graph)
            if tm is not None:
                # The core maintainer already applied the edge update
                # to the graph; patch the truss structures for it and
                # collect the support cascade's vertex footprint.  The
                # patched map itself is *not* copied here -- the next
                # :meth:`truss` read refetches it from the maintainer
                # lazily, so an update costs its cascade, not O(m).
                truss_event = tm.apply(event["kind"], *event["edge"])
                truss_affected = truss_affected_vertices(graph,
                                                         truss_event)
                self.last_truss_cascade_size = len(
                    truss_event["changed"])
            self.invalidate(name, affected=affected,
                            core=maintainer.core_numbers(),
                            truss_affected=truss_affected)

        maintainer.add_listener(on_update)
        return maintainer

    def attach_truss_maintainer(self, name, maintainer=None):
        """Track ``name``'s triangle support and trussness incrementally.

        Attaches (or creates) a
        :class:`~repro.core.truss_maintenance.TrussMaintainer` behind
        the graph's :class:`CoreMaintainer` mutation gateway -- one is
        attached automatically when missing.  Every edge update through
        the gateway then additionally patches per-edge support and
        truss numbers and reports the truss-affected vertex region, so
        cached k-truss/ATC results survive updates that provably cannot
        touch them.  Returns the (idempotently attached) truss
        maintainer; mutations must keep flowing through the core
        gateway, never through ``TrussMaintainer.add_edge`` directly.
        """
        with self._lock:
            entry = self._entry(name)
            current = entry.truss_maintainer
            if current is not None and maintainer in (None, current):
                return current
            graph = entry.graph
        # The core maintainer is the single mutation gateway; its
        # listener drives the truss patching (see on_update above).
        self.attach_maintainer(name)
        if maintainer is None:
            maintainer = TrussMaintainer(graph)
        with self._lock:
            entry = self._entry(name)
            entry.truss_maintainer = maintainer
            entry.truss = maintainer.truss_numbers()
            entry.truss_built_version = entry.truss_version
        return maintainer

    def _truss_maintainer_for(self, name, graph):
        """The attached truss maintainer, if it still tracks ``graph``."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return None
            tm = entry.truss_maintainer
        if tm is not None and tm.graph is graph:
            return tm
        return None

    def subscribe(self, callback):
        """``callback(name, version, affected, truss_affected)`` runs
        after every version bump (``version=None`` means unregistered;
        ``truss_affected=None`` means triangle-family caches must be
        evicted conservatively)."""
        self._subscribers.append(callback)

    def _notify(self, name, version, affected, truss_affected=None):
        for callback in list(self._subscribers):
            callback(name, version, affected, truss_affected)
