"""Execution backends: where engine work actually runs.

The :class:`~repro.engine.executor.QueryEngine` always owns a bounded
*thread* pool -- admission control, deadlines and cancellation live
there, and for I/O-light interactive traffic (cache hits, planning,
small searches) threads are the right tool.  But the CPU-heavy
structural kernels (core decomposition, per-shard certification,
CL-tree builds) serialise behind the GIL: a thread fan-out buys
concurrency, not parallelism.  This module adds the **process
backend** that the ROADMAP's "process-pool workers are now per-shard"
follow-on asks for:

* :class:`ProcessBackend` -- a lazily started
  ``concurrent.futures.ProcessPoolExecutor`` (``fork`` context where
  available, so workers start fast and inherit the interpreter state)
  with per-job child-side timing, so fan-out skew stats stay exact and
  the parent can report IPC overhead (round-trip minus child compute)
  separately;
* module-level **job functions** -- process jobs must be picklable,
  so the work units ship as top-level functions fed by pickled
  :class:`~repro.graph.frozen.FrozenGraph` payloads:
  :func:`shard_candidates_job` (one shard's certify/drop/classify
  scan, the sharded query fan-out) and :func:`build_index_job` (a
  full core + CL-tree build, the shard-parallel index construction);
* a small **worker-side payload cache** keyed by
  ``(graph, shard, version)`` -- repeated queries against an unchanged
  shard skip both the unpickle and the shard-local core decomposition
  in the worker.

Choosing a backend
==================

``backend="thread"`` (default): lowest latency, shared memory, exact
pre-PR behaviour.  Right for small graphs, cache-heavy interactive
traffic, or single-core hosts.  ``backend="process"``: per-shard
subqueries and CL-tree builds run in separate processes on frozen CSR
snapshots -- real parallelism for CPU-bound structural work on
multi-core hosts, at the cost of payload shipping (measured and
reported as ``snapshot_build`` / ``shard_ipc`` in ``/api/metrics``).
Results are identical either way (a tested invariant); every process
failure falls back to in-process execution rather than failing the
query.
"""

import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.core.cltree import build_cltree
from repro.core.kcore import connected_k_core, core_decomposition
from repro.core.ktruss import truss_decomposition
from repro.engine import faults as fault_injection
from repro.engine import payloads as payload_plane
from repro.engine import tracing
from repro.util.errors import (
    EngineError,
    JobPayloadError,
    PayloadCorruptionError,
    QueryTimeoutError,
)

BACKENDS = ("thread", "process")

# Worker-side cache: payload key (manager epoch, name, shard, version)
# -> (old_ids, global_degree, shard-local core numbers).  Bounded:
# version churn on long-lived workers must not grow it without limit.
_WORKER_CACHE = {}
_WORKER_CACHE_MAX = 64


class ProcessBackendError(EngineError):
    """The process pool could not run a job (broken pool, unpicklable
    payload); callers fall back to in-process execution."""


def validate_backend(backend):
    """Normalise and validate a backend name."""
    if backend not in BACKENDS:
        raise EngineError(
            "unknown backend {!r}; choose from {}".format(
                backend, BACKENDS))
    return backend


# ----------------------------------------------------------------------
# cooperative deadlines (the worker side of deadline propagation)
# ----------------------------------------------------------------------

# Per-execution-context job environment.  In a worker process jobs run
# one at a time so this is effectively process-global; in the parent
# (thread backend / inline fallback) it is per-thread, which is
# exactly the job granularity there.  Wall-clock based: the deadline
# crosses a process boundary, where perf_counter epochs differ.
_job_env = threading.local()


def set_job_deadline(wall_deadline):
    """Install the caller's remaining deadline (``time.time()``-based,
    or ``None``) for jobs running in this context."""
    _job_env.deadline = wall_deadline


def check_deadline():
    """Cooperative deadline check inside job functions.

    Raises :class:`~repro.util.errors.QueryTimeoutError` once the
    caller's deadline has passed -- so an orphaned job (its parent
    already timed out, or it lost a hedge race) self-cancels at the
    next phase boundary instead of burning a worker to completion.
    """
    deadline = getattr(_job_env, "deadline", None)
    if deadline is not None and time.time() > deadline:
        raise QueryTimeoutError(
            "worker job exceeded the caller's deadline")


# ----------------------------------------------------------------------
# job functions (top-level: process jobs must pickle by reference)
# ----------------------------------------------------------------------

def _timed_job(fn, args, fault=None, deadline=None):
    """Run ``fn(*args)`` and return ``(child_seconds, spans,
    result)``.

    ``spans`` is the wire-format list of tracing spans the job
    recorded (index thaw, lazy decomposition builds, algorithm run --
    see :func:`~repro.engine.tracing.collect_worker_spans`); the
    parent grafts them under the query's per-shard ``worker_execute``
    span.  ``fault`` carries worker-side fault actions the parent's
    :class:`~repro.engine.faults.FaultPlan` drew for this job;
    ``deadline`` is the caller's remaining wall-clock deadline, made
    visible to the job through :func:`check_deadline`.
    """
    start = time.perf_counter()
    set_job_deadline(deadline)
    try:
        with tracing.collect_worker_spans() as log:
            fault_injection.apply_worker_actions(fault)
            check_deadline()
            result = fn(*args)
            if fault_injection.wants_duplicate(fault):
                # The "duplicate" fault: run the (idempotent) job
                # again, as a duplicated queue delivery would.
                result = fn(*args)
    finally:
        set_job_deadline(None)
    return time.perf_counter() - start, log.wire(), result


def _loads_payload(key, blob):
    """Resolve a shipped payload to its object form.

    ``blob`` is either a payload-plane ref (shared-memory segment or
    fork-registry locator, resolved zero-copy by
    :func:`repro.engine.payloads.attach`) or the pickled bytes of the
    fallback rung.  Any failure -- torn segment, registry miss,
    undecodable bytes -- becomes
    :class:`~repro.util.errors.PayloadCorruptionError` carrying the
    payload identity, the signal the engine's quarantine keys on."""
    if payload_plane.is_ref(blob):
        return payload_plane.attach(blob)
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise PayloadCorruptionError(
            "payload {!r} failed to unpickle: {}".format(key, exc),
            key=key) from exc


def shard_candidates_job(key, blob, k):
    """One shard's certify/drop/classify scan, in a worker process.

    ``blob`` is the pickled ``(FrozenGraph, old_ids, global_degree)``
    payload built by
    :meth:`~repro.engine.sharding.ShardedIndexManager.shard_payload`;
    ``key`` is its ``(manager epoch, graph, shard, version)`` identity,
    so an unchanged shard is unpickled (and its shard-local core
    numbers computed) once per worker, not once per query.  Returns plain
    ``(certified, uncertain, dropped)`` containers in *global* vertex
    ids -- the merge step rebuilds its
    :class:`~repro.engine.sharding.ShardReport` from them.
    """
    check_deadline()
    entry = _WORKER_CACHE.get(key)
    if entry is None:
        with tracing.span("index_thaw"):
            frozen, old_ids, global_degree = _loads_payload(key, blob)
        with tracing.span("core_build"):
            entry = (old_ids, global_degree,
                     core_decomposition(frozen))
        if len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.clear()
        _WORKER_CACHE[key] = entry
    old_ids, global_degree, local_core = entry
    certified = []
    uncertain = {}
    dropped = []
    for new, old in enumerate(old_ids):
        if local_core[new] >= k:
            certified.append(old)
            continue
        degree = global_degree[new]
        if degree < k:
            dropped.append(old)
        else:
            uncertain[old] = degree
    return certified, uncertain, dropped


def shard_truss_job(key, blob, k):
    """One shard's truss certify/classify scan, in a worker process.

    ``blob`` is the same pre-pickled ``(FrozenGraph, old_ids,
    global_degree)`` payload the core path ships; the worker runs the
    CSR support-counting kernel plus a truss decomposition over the
    frozen shard (cached per payload identity, so an unchanged shard
    pays once per worker).  Returns ``(certified, uncertain)`` edge
    lists in *global* vertex ids: ``certified`` edges have shard-local
    truss >= k (hence global truss >= k by subgraph monotonicity);
    ``uncertain`` are the shard's remaining edges, which the engine's
    merge peels with exact global supports.
    """
    check_deadline()
    cache_key = (key, "truss")
    entry = _WORKER_CACHE.get(cache_key)
    if entry is None:
        with tracing.span("index_thaw"):
            frozen, old_ids, _ = _loads_payload(key, blob)
        with tracing.span("truss_build"):
            entry = (old_ids, truss_decomposition(frozen),
                     list(frozen.edges()))
        if len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.clear()
        _WORKER_CACHE[cache_key] = entry
    old_ids, local_truss, local_edges = entry
    certified = []
    uncertain = []
    for u, v in local_edges:
        a, b = old_ids[u], old_ids[v]
        edge = (a, b) if a < b else (b, a)
        if local_truss.get((u, v), 0) >= k:
            certified.append(edge)
        else:
            uncertain.append(edge)
    return certified, uncertain


def _full_graph_entry(key, payload):
    """The worker's cached state for one whole-graph payload.

    ``payload`` is either the pickled :class:`~repro.graph.frozen.
    FrozenGraph` blob (process shipping) or the snapshot object itself
    (in-process fallback, where no serialisation hop exists).  The
    returned dict caches the snapshot and, lazily, every derived
    structure a whole query may need -- core numbers, the CL-tree, the
    truss map -- so an unchanged graph pays each decomposition once
    per worker, not once per query.
    """
    entry = _WORKER_CACHE.get(key)
    if entry is None:
        if isinstance(payload, (bytes, bytearray)):
            with tracing.span("index_thaw", bytes=len(payload)):
                frozen = _loads_payload(key, payload)
        elif payload_plane.is_ref(payload):
            # Zero-copy rung: attach the shared segment (or registry
            # snapshot) instead of unpickling -- near-free, but still
            # spanned so traces show which rung served the query.
            with tracing.span("index_thaw", zero_copy=True):
                frozen = _loads_payload(key, payload)
        else:
            frozen = payload
        entry = {"frozen": frozen}
        if len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.clear()
        _WORKER_CACHE[key] = entry
    return entry


def _entry_core(entry):
    """Core numbers of the entry's snapshot (computed once)."""
    core = entry.get("core")
    if core is None:
        with tracing.span("core_build"):
            core = entry["core"] = core_decomposition(entry["frozen"])
    return core


def _entry_cltree(entry):
    """CL-tree over the entry's snapshot (built once)."""
    tree = entry.get("cltree")
    if tree is None:
        core = _entry_core(entry)
        with tracing.span("cltree_build"):
            tree = entry["cltree"] = build_cltree(entry["frozen"],
                                                  core=core)
    return tree


def _entry_truss(entry):
    """Truss map of the entry's snapshot (computed once)."""
    truss = entry.get("truss")
    if truss is None:
        with tracing.span("truss_build"):
            truss = entry["truss"] = truss_decomposition(
                entry["frozen"])
    return truss


class FixedBaseIndex:
    """Index shim answering the one ``community_vertices(q, k)``
    probe the ACQ family makes with a precomputed structural base.

    Used on both sides of the pipeline: the parent hands it the
    sharded-merged component when finishing an ACQ query in-process,
    and :func:`shard_full_query_job` hands it the base the parent's
    cross-shard merge shipped -- either way the keyword enumeration
    runs on exactly the base the CL-tree would have computed.
    ``base=None`` encodes "no structural community exists".
    """

    __slots__ = ("graph", "_q", "_k", "_base")

    def __init__(self, graph, q, k, base):
        self.graph = graph
        self._q = q
        self._k = k
        self._base = base

    def community_vertices(self, q, k):
        """The fixed structural base for the planned ``(q, k)``."""
        if q == self._q and k == self._k:
            return set(self._base) if self._base is not None else None
        # Defensive: an unexpected probe falls back to the exact
        # definition rather than answering for the wrong query.
        return connected_k_core(self.graph, q, k)


def shard_full_query_job(key, payload, algorithm, q, k, keywords=None,
                         base=None):
    """Run one **whole** community search in a worker process.

    The worker executes the complete query -- structural phase,
    keyword enumeration, verification -- against the cached frozen
    whole-graph snapshot, instead of shipping candidate sets back to
    the parent.  ``base`` optionally carries the structural phase the
    parent's cross-shard merge already reconciled:

    * ``None`` -- compute everything in the worker (the unsharded
      whole-query offload; derived structures are cached per payload
      identity);
    * ``("component", vertices)`` -- the merged connected k-core
      component (the k-core family's structural base);
    * ``("edges", edges)`` -- the merged global k-truss edge set (the
      triangle family's structural base).

    Returns the communities in :meth:`~repro.core.community.Community.
    to_wire` form; the parent rebinds them to its live graph object.
    Results are byte-identical to parent-side execution (the frozen
    equivalence the protocol suite proves).
    """
    from repro.algorithms.attributed_truss import attributed_truss_search
    from repro.algorithms.global_search import global_search
    from repro.algorithms.registry import get_cs_algorithm
    from repro.algorithms.truss_search import truss_community_search
    from repro.core.acq import acq_search

    check_deadline()
    entry = _full_graph_entry(key, payload)
    frozen = entry["frozen"]
    q0 = q if isinstance(q, int) else tuple(q)[0]
    base_kind, base_value = base if base is not None else (None, None)
    if algorithm in ("acq", "acq-inc-s", "acq-inc-t"):
        variant = "dec" if algorithm == "acq" \
            else algorithm[len("acq-"):]
        if base_kind == "component":
            index = FixedBaseIndex(frozen, q0, k, base_value)
        else:
            index = _entry_cltree(entry)
        with tracing.span("algorithm", algorithm=algorithm):
            result = acq_search(frozen, q, k, keywords=keywords,
                                algorithm=variant, index=index)
    elif algorithm == "global":
        core = _entry_core(entry)
        with tracing.span("algorithm", algorithm=algorithm):
            result = global_search(frozen, q0, k, core=core)
    elif algorithm == "k-truss":
        truss = ({e: k for e in base_value}
                 if base_kind == "edges" else _entry_truss(entry))
        with tracing.span("algorithm", algorithm=algorithm):
            result = truss_community_search(frozen, q0, k, truss=truss)
    elif algorithm == "atc":
        base_edges = base_value if base_kind == "edges" else None
        with tracing.span("algorithm", algorithm=algorithm):
            result = attributed_truss_search(frozen, q, k,
                                             keywords=keywords,
                                             base_edges=base_edges)
    else:
        # Every other registered CS algorithm takes the plain
        # protocol call (codicil, local, steiner, plug-ins).
        with tracing.span("algorithm", algorithm=algorithm):
            result = get_cs_algorithm(algorithm)(frozen, q, k,
                                                 keywords=keywords)
    return [community.to_wire() for community in result]


def batch_full_query_job(key, payload, specs, member_faults=None):
    """Run a whole *group* of community searches in one worker job.

    ``specs`` is a tuple of ``(algorithm, q, k, keywords)`` wire
    specs, all against the same frozen whole-graph snapshot: one
    payload ship, one worker-cache entry, every lazily built derived
    structure (core numbers, CL-tree, truss map) shared across the
    group -- the engine-side half of cross-query batching
    (:mod:`repro.engine.batching`).  Each spec still runs the exact
    :func:`shard_full_query_job` pipeline, so per-query results are
    byte-identical to serial execution.

    Returns one ``("ok", wire-form community list)`` or ``("error",
    description)`` outcome per spec, in spec order: a member that
    fails (bad data surviving planning, or an injected fault from
    ``member_faults``) reports its own error instead of poisoning the
    clique -- the batching layer retries it solo.  Deadline expiry is
    the exception: it aborts the whole group, since every remaining
    member's caller has already given up.
    """
    check_deadline()
    answers = []
    for i, (algorithm, q, k, keywords) in enumerate(specs):
        check_deadline()
        keywords = set(keywords) if keywords is not None else None
        try:
            fault_injection.apply_worker_actions(
                member_faults[i] if member_faults else None)
            with tracing.span("batch_member", algorithm=algorithm,
                              k=k):
                answers.append(("ok", shard_full_query_job(
                    key, payload, algorithm, q, k,
                    keywords=keywords)))
        except QueryTimeoutError:
            raise
        except Exception as exc:
            answers.append(("error", "{}: {}".format(
                type(exc).__name__, exc)))
    return answers


def component_detect_job(key, payload, algorithm, component, params):
    """Run one CD detection (or one component's slice of it) in a
    worker process.

    ``component`` is ``None`` for the whole graph, or the sorted
    global vertex ids of one connected component -- the worker carves
    the induced frozen subgraph straight out of the cached CSR
    snapshot and maps the resulting communities back to global ids.
    ``params`` is the detection's keyword arguments as a sorted item
    tuple (canonical and picklable).  Returns wire-form communities.
    """
    from repro.algorithms.registry import get_cd_algorithm

    check_deadline()
    entry = _full_graph_entry(key, payload)
    frozen = entry["frozen"]
    old_ids = None
    if component is not None:
        frozen, _ = frozen.induced_subgraph(component)
        old_ids = list(component)  # sorted: the id map is monotone
    with tracing.span("algorithm", algorithm=algorithm,
                      component=len(old_ids) if old_ids else None):
        result = get_cd_algorithm(algorithm)(frozen, **dict(params))
    wires = []
    for community in result:
        vertices, method, query_vertices, k, shared = \
            community.to_wire()
        if old_ids is not None:
            vertices = tuple(old_ids[v] for v in vertices)
        wires.append((vertices, method, query_vertices, k, shared))
    return wires


def build_index_job(frozen, core=None):
    """Build ``(core numbers, CL-tree)`` over a frozen graph.

    The returned tree's ``graph`` attribute still points at the frozen
    snapshot; the parent rebinds it to the live graph object before
    installing the snapshot (node structure, homed vertices and
    inverted lists are graph-object independent).
    """
    if core is None:
        core = core_decomposition(frozen)
    tree = build_cltree(frozen, core=core)
    return core, tree


# ----------------------------------------------------------------------
# the process pool
# ----------------------------------------------------------------------

class ProcessBackend:
    """A lazily started process pool with per-job child timing.

    Thin by design: admission control, deadlines and stats stay in the
    :class:`~repro.engine.executor.QueryEngine`; this class only ships
    picklable jobs and reports ``(results, child_seconds,
    ipc_seconds)`` so the engine can separate compute from transport.
    """

    def __init__(self, workers):
        self.workers = max(1, int(workers))
        self._pool = None

    def _ensure(self):
        if self._pool is None:
            try:
                import multiprocessing
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context)
        return self._pool

    def submit_job(self, fn, args, fault=None, deadline=None):
        """Submit one job; returns its ``concurrent.futures`` future.

        ``fault`` ships worker-side fault actions drawn by the
        parent's plan; ``deadline`` is the caller's remaining
        wall-clock deadline (``time.time()`` based), installed in the
        worker so the job can self-cancel cooperatively.  Raises
        :class:`ProcessBackendError` when the *pool* cannot accept
        work (broken/shut down -- the substrate is at fault) and
        :class:`~repro.util.errors.JobPayloadError` when this job's
        arguments will not pickle (the job is at fault; the pool stays
        up and siblings are unaffected).
        """
        pool = self._ensure()
        try:
            return pool.submit(_timed_job, fn, args, fault, deadline)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise JobPayloadError(
                "job payload did not pickle: {}".format(exc)) from exc
        except (BrokenProcessPool, RuntimeError) as exc:
            self._break()
            raise ProcessBackendError(
                "process pool submission failed: {}".format(exc)) from exc

    def job_result(self, future, budget=None):
        """One job's ``(child_seconds, spans, result)``, with the
        error taxonomy callers dispatch on: :class:`QueryTimeoutError`
        past ``budget``, :class:`ProcessBackendError` for pool death
        (breaking the pool so the next use starts fresh),
        :class:`~repro.util.errors.JobPayloadError` for a payload that
        failed to pickle in the feeder thread (the pool survives; only
        this job fails -- unpicklable payloads used to take the whole
        fan-out down with a pool fallback), and any worker-raised
        exception as itself."""
        try:
            return future.result(budget)
        except _FutureTimeout:
            raise QueryTimeoutError(
                "process job did not finish within "
                "{:.3f}s".format(budget)) from None
        except BrokenProcessPool as exc:
            self._break()
            raise ProcessBackendError(
                "process pool died mid job: {}".format(exc)) from exc
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # An unpicklable payload surfaces on the future, not at
            # submit (the pool pickles in a feeder thread) -- and as
            # whatever the pickler raised (a local function is an
            # AttributeError, an unpicklable value a TypeError).
            raise JobPayloadError(
                "job payload did not pickle: {}".format(exc)) from exc

    def run_jobs(self, jobs, timeout=None, collect_spans=False):
        """Run ``(fn, args)`` jobs concurrently in worker processes.

        Returns ``(results, child_seconds, ipc_seconds)`` in job
        order; ``child_seconds[i]`` is job ``i``'s in-worker compute
        time, ``ipc_seconds[i]`` the rest of its round-trip (queueing
        + pickling both ways).  With ``collect_spans=True`` a fourth
        element is appended: per-job wire-format tracing span lists
        recorded inside the workers (the engine grafts them into the
        query's trace).  Raises :class:`ProcessBackendError` on a
        broken pool, :class:`~repro.util.errors.JobPayloadError` for
        an unpicklable job (pool intact), and
        :class:`QueryTimeoutError` when ``timeout`` elapses.
        """
        wall_deadline = (time.time() + timeout
                         if timeout is not None else None)
        submitted = [(time.perf_counter(),
                      self.submit_job(fn, args, deadline=wall_deadline))
                     for fn, args in jobs]
        results = []
        child_seconds = []
        ipc_seconds = []
        job_spans = []
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        for i, (started, future) in enumerate(submitted):
            budget = None
            if deadline is not None:
                budget = max(deadline - time.perf_counter(), 0.0)
            try:
                child, spans, result = self.job_result(future, budget)
            except QueryTimeoutError:
                for _, later in submitted[i:]:
                    later.cancel()
                raise QueryTimeoutError(
                    "process fan-out did not finish within "
                    "{:.3f}s".format(timeout)) from None
            roundtrip = time.perf_counter() - started
            results.append(result)
            child_seconds.append(child)
            ipc_seconds.append(max(roundtrip - child, 0.0))
            job_spans.append(spans)
        if collect_spans:
            return results, child_seconds, ipc_seconds, job_spans
        return results, child_seconds, ipc_seconds

    def run_build(self, frozen, core=None):
        """One :func:`build_index_job` in a worker; returns
        ``(core, cltree, child_seconds)``."""
        results, child_seconds, _ = self.run_jobs(
            [(build_index_job, (frozen, core))])
        core, tree = results[0]
        return core, tree, child_seconds[0]

    def _break(self):
        """Drop a broken pool so the next use starts a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def close(self):
        """Shut the pool down without waiting for stragglers."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
