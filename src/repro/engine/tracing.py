"""End-to-end query tracing: one structured trace per query.

The engine's :class:`~repro.engine.stats.EngineStats` histograms say
how the *population* of queries behaves; they cannot say where one
slow query spent its time.  After PRs 1-5 a query crosses a planner,
an admission queue, payload freeze/pickle, a process-pool IPC hop,
per-shard worker execution and a cross-shard merge -- this module
makes each of those phases attributable per query, which is the
measurement substrate the ROADMAP's adaptive-execution item needs:

* :class:`Span` -- one named, timed phase (``plan``, ``queue_wait``,
  ``cache_lookup``, ``payload_freeze``, ``payload_pickle``,
  ``shard_ipc``, per-shard ``worker_execute``, ``merge``,
  ``cache_store``, ...) with free-form tags and a parent link, so
  traces render as a waterfall;
* :class:`QueryTrace` -- one query's span tree plus identity tags
  (graph, algorithm, k), thread-safe, JSON-friendly via
  :meth:`QueryTrace.to_dict`;
* :class:`TraceRecorder` -- a bounded ring buffer of finished traces
  plus a slow-query log (configurable threshold), owned by the
  :class:`~repro.engine.executor.QueryEngine` and served by the HTTP
  layer as ``GET /api/traces`` / ``GET /api/traces/<query_id>``;
* **context propagation** -- :func:`activate` binds a trace to the
  current thread; :func:`span` / :func:`add_span` then attach phases
  from any layer (cache, index manager, sharding) without threading
  trace objects through every signature.  In a worker *process* no
  trace object exists, so :func:`collect_worker_spans` gathers the
  same spans into a picklable wire list that rides the existing job
  return tuples back to the parent, where
  :meth:`QueryTrace.graft` re-attaches them under that shard's
  ``worker_execute`` span;
* :func:`render_prometheus` -- the ``GET /metrics`` text exposition,
  rendered from the ``/api/metrics`` document (the log-scale latency
  buckets :class:`~repro.engine.stats.LatencyHistogram` has always
  collected, finally exported);
* :func:`format_waterfall` -- the ASCII rendering behind the
  ``repro trace`` CLI subcommand.

Everything here is overhead-conscious: with no trace active,
:func:`current_trace` is one thread-local read and every helper is a
no-op, so the warm-cache fast path stays fast.
"""

import itertools
import logging
import threading
import time
from collections import deque
from contextlib import contextmanager

logger = logging.getLogger("repro.engine.tracing")

_local = threading.local()


def current_trace():
    """The trace bound to this thread, or ``None``."""
    return getattr(_local, "trace", None)


@contextmanager
def activate(trace):
    """Bind ``trace`` to the current thread for the ``with`` body.

    ``activate(None)`` is a no-op, so callers never need to branch.
    The previous binding is restored on exit (traces nest).
    """
    if trace is None:
        yield None
        return
    previous = getattr(_local, "trace", None)
    _local.trace = trace
    try:
        yield trace
    finally:
        _local.trace = previous


class Span:
    """One named, timed phase of a query.

    ``parent`` is the index of the enclosing span within its trace's
    span list (``None`` for top-level spans); ``start`` is wall-clock
    (``time.time()``) so spans recorded in forked worker processes
    line up with parent-side spans on the same host.
    """

    __slots__ = ("name", "start", "seconds", "parent", "tags")

    def __init__(self, name, start, seconds, parent, tags):
        self.name = name
        self.start = start
        self.seconds = seconds
        self.parent = parent
        self.tags = tags

    def to_dict(self):
        """The span as a JSON-friendly dict."""
        doc = {
            "name": self.name,
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "parent": self.parent,
        }
        if self.tags:
            doc["tags"] = dict(self.tags)
        return doc


class _WorkerSpanLog:
    """Span accumulator for job functions running without a trace
    object (worker processes, where the trace lives in the parent)."""

    __slots__ = ("spans", "stack")

    def __init__(self):
        self.spans = []
        self.stack = []

    def wire(self):
        """The collected spans as picklable wire tuples
        ``(name, start, seconds, parent, tags)`` -- ``parent`` is an
        index into this same list (``None`` = top level)."""
        return [(s.name, s.start, s.seconds, s.parent, dict(s.tags))
                for s in self.spans]


@contextmanager
def collect_worker_spans():
    """Collect spans recorded by job functions into a wire list.

    Used by the process backend's job wrapper: inside the ``with``
    body every :func:`span` / :func:`add_span` call that finds no
    active trace appends to the yielded log instead of vanishing; the
    log's :meth:`~_WorkerSpanLog.wire` output rides the job's return
    tuple back to the parent.

    Any active trace binding is cleared for the scope: when the pool
    forks its workers *during* a traced query, the child's main
    thread inherits the parent's thread-local trace reference, and
    spans recorded against that dead copy would never reach the
    parent.  Inside a worker the span log is the only valid sink.
    """
    log = _WorkerSpanLog()
    previous = getattr(_local, "worker_log", None)
    previous_trace = getattr(_local, "trace", None)
    _local.worker_log = log
    _local.trace = None
    try:
        yield log
    finally:
        _local.worker_log = previous
        _local.trace = previous_trace


class _NoopSpan:
    """The do-nothing span context (no trace, no worker log).

    A shared singleton instead of a ``contextlib`` generator: the
    no-op path runs on every cache hit, and the generator machinery
    alone costs several microseconds -- real money against a
    microsecond-scale fast path.
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _LogSpan:
    """Context manager recording one span into a worker span log."""

    __slots__ = ("_log", "_record", "_started")

    def __init__(self, log, name, tags):
        self._log = log
        self._record = Span(name, time.time(), 0.0,
                            log.stack[-1] if log.stack else None, tags)

    def __enter__(self):
        log = self._log
        log.stack.append(len(log.spans))
        log.spans.append(self._record)
        self._started = time.perf_counter()
        return self._record

    def __exit__(self, exc_type, exc, tb):
        self._record.seconds = time.perf_counter() - self._started
        self._log.stack.pop()
        return False


# Fault-injection hook: when a FaultPlan with span-targeted rules is
# active (see repro.engine.faults), every span entry consults it --
# the one seam that lets a test raise "inside" any named phase.  None
# (the default) keeps the hot path to a single global read.
_fault_hook = None


def set_fault_hook(hook):
    """Install (or clear, with ``None``) the span-entry fault hook."""
    global _fault_hook
    _fault_hook = hook


def clear_fault_hook(hook):
    """Uninstall ``hook`` if it is the active one (engines clear only
    their own plan's hook on shutdown)."""
    global _fault_hook
    if _fault_hook is hook:
        _fault_hook = None


def span(name, **tags):
    """Record one phase around the ``with`` body.

    Attaches to the thread's active trace when one exists, to the
    worker span log inside :func:`collect_worker_spans`, and is a
    cheap no-op otherwise.  Yields the :class:`Span` (or ``None``)
    so callers can add result tags (e.g. cache hit/miss).
    """
    if _fault_hook is not None:
        _fault_hook(name)
    trace = current_trace()
    if trace is not None:
        return trace.span(name, **tags)
    log = getattr(_local, "worker_log", None)
    if log is None:
        return _NOOP_SPAN
    return _LogSpan(log, name, tags)


def add_span(name, seconds, start=None, **tags):
    """Attach one already-measured phase to the active context.

    The post-hoc counterpart of :func:`span` for call sites that
    already time themselves (payload builds, fan-out results): no
    nested ``with`` indentation, same destination rules.  Returns the
    created :class:`Span` or ``None`` when nothing is listening.
    """
    trace = current_trace()
    if trace is not None:
        return trace.add_span(name, seconds, start=start, tags=tags)
    log = getattr(_local, "worker_log", None)
    if log is None:
        return None
    parent = log.stack[-1] if log.stack else None
    record = Span(name, time.time() - seconds if start is None
                  else start, seconds, parent, tags)
    log.spans.append(record)
    return record


_ACTIVE = "active"


class QueryTrace:
    """One query's span tree plus identity tags.

    Spans are held as a flat list with parent indices (wire-friendly
    and cheap to append under the lock); :meth:`span` maintains the
    nesting stack for context-manager use, :meth:`add_span` attaches
    already-measured phases, and :meth:`graft` re-parents wire-format
    span lists shipped back from worker processes.
    """

    __slots__ = ("query_id", "op", "tags", "started_at", "status",
                 "seconds", "spans", "_t0", "_stack", "_lock")

    def __init__(self, query_id, op, tags=None):
        self.query_id = query_id
        self.op = op
        self.tags = {k: v for k, v in (tags or {}).items()
                     if v is not None}
        self.started_at = time.time()
        self.status = _ACTIVE
        self.seconds = None
        self.spans = []
        self._t0 = time.perf_counter()
        self._stack = []
        self._lock = threading.Lock()

    def tag(self, **tags):
        """Merge identity tags (``None`` values are dropped)."""
        with self._lock:
            for key, value in tags.items():
                if value is not None:
                    self.tags[key] = value

    def add_span(self, name, seconds, start=None, parent=True,
                 tags=None):
        """Append one measured span; returns its index.

        ``parent=True`` nests under the current :meth:`span` context
        (the common case); pass an explicit index or ``None`` to
        override.  ``start`` defaults to "``seconds`` ago".
        """
        with self._lock:
            if parent is True:
                parent = self._stack[-1] if self._stack else None
            record = Span(
                name,
                time.time() - seconds if start is None else start,
                seconds, parent, dict(tags or {}))
            self.spans.append(record)
            return len(self.spans) - 1

    @contextmanager
    def span(self, name, **tags):
        """Record one phase around the ``with`` body (nestable)."""
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            record = Span(name, time.time(), 0.0, parent, tags)
            index = len(self.spans)
            self.spans.append(record)
            self._stack.append(index)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - started
            with self._lock:
                if index in self._stack:
                    self._stack.remove(index)

    def graft(self, parent_index, wire_spans):
        """Attach worker-side wire spans under span ``parent_index``.

        ``wire_spans`` is the picklable list a
        :func:`collect_worker_spans` log emitted in the worker; intra-
        list parent indices are preserved, top-level entries become
        children of ``parent_index``.
        """
        if not wire_spans:
            return
        with self._lock:
            offset = len(self.spans)
            for name, start, seconds, parent, tags in wire_spans:
                self.spans.append(Span(
                    name, start, seconds,
                    parent_index if parent is None else offset + parent,
                    tags))

    def finish(self, status="ok"):
        """Seal the trace: set total duration and final status."""
        with self._lock:
            if self.status == _ACTIVE:
                self.seconds = time.perf_counter() - self._t0
                self.status = status

    def summary(self):
        """The one-line listing entry (``GET /api/traces``)."""
        with self._lock:
            return {
                "query_id": self.query_id,
                "op": self.op,
                "status": self.status,
                "started": round(self.started_at, 6),
                "seconds": None if self.seconds is None
                else round(self.seconds, 6),
                "spans": len(self.spans),
                "tags": dict(self.tags),
            }

    def to_dict(self):
        """The full trace document (``GET /api/traces/<query_id>``)."""
        doc = self.summary()
        with self._lock:
            doc["spans"] = [s.to_dict() for s in self.spans]
        return doc


class TraceRecorder:
    """Bounded ring buffer of finished traces + slow-query log.

    Owned by the engine; ``capacity`` bounds memory, ``slow_seconds``
    is the threshold above which a finished trace is also kept in the
    separate slow log (and logged through the stdlib ``logging``
    channel ``repro.engine.tracing``), so one burst of fast traffic
    cannot rotate a pathological query out of the buffer before
    anyone looks at it.  ``enabled=False`` turns the whole subsystem
    into no-ops (:meth:`begin` returns ``None`` and every helper
    short-circuits on that).
    """

    def __init__(self, capacity=256, slow_seconds=1.0, slow_capacity=64,
                 enabled=True):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.slow_seconds = slow_seconds
        self.enabled = enabled
        self._ring = deque(maxlen=capacity)
        self._slow = deque(maxlen=slow_capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.recorded = 0
        self.slow_queries = 0

    def configure(self, capacity=None, slow_seconds=None, enabled=None):
        """Adjust buffer sizing / threshold / enablement in place."""
        with self._lock:
            if capacity is not None:
                if capacity < 1:
                    raise ValueError("capacity must be positive")
                self.capacity = capacity
                self._ring = deque(self._ring, maxlen=capacity)
            if slow_seconds is not None:
                self.slow_seconds = slow_seconds
            if enabled is not None:
                self.enabled = enabled
        return self

    def begin(self, op, **tags):
        """Start one trace (``None`` when tracing is disabled)."""
        if not self.enabled:
            return None
        return QueryTrace("q{}".format(next(self._ids)), op, tags=tags)

    def finish(self, trace, status="ok"):
        """Seal ``trace`` and publish it to the ring buffer.

        Idempotent per trace: only the first call publishes, so a
        cancel racing a completion cannot double-record.
        """
        if trace is None or trace.status != _ACTIVE:
            return
        trace.finish(status)
        with self._lock:
            self._ring.append(trace)
            self.recorded += 1
            if trace.seconds is not None \
                    and trace.seconds >= self.slow_seconds:
                self._slow.append(trace)
                self.slow_queries += 1
                slow = True
            else:
                slow = False
        if slow:
            logger.warning(
                "slow query %s (%s, %.3fs >= %.3fs): %s",
                trace.query_id, trace.op, trace.seconds,
                self.slow_seconds, trace.tags)

    @contextmanager
    def trace(self, op, **tags):
        """Root-trace scope: begin, activate, time, finish.

        When a trace is already active on this thread (the engine
        submitted this work with one attached), it is yielded as-is
        and left for its owner to finish -- so library entry points
        can wrap themselves unconditionally without double-tracing
        the server path.
        """
        existing = current_trace()
        if existing is not None:
            yield existing
            return
        trace = self.begin(op, **tags)
        if trace is None:
            yield None
            return
        status = "ok"
        try:
            with activate(trace), trace.span("execute", op=op):
                yield trace
        except BaseException:
            status = "error"
            raise
        finally:
            self.finish(trace, status)

    def get(self, query_id):
        """The trace with ``query_id``, or ``None`` (ring + slow log)."""
        with self._lock:
            for trace in reversed(self._ring):
                if trace.query_id == query_id:
                    return trace
            for trace in reversed(self._slow):
                if trace.query_id == query_id:
                    return trace
        return None

    def traces(self, limit=None, slow=False):
        """Finished traces, most recent first (summaries are built by
        the caller; this returns the trace objects)."""
        with self._lock:
            source = self._slow if slow else self._ring
            out = list(source)
        out.reverse()
        return out if limit is None else out[:limit]

    def stats(self):
        """Occupancy/threshold counters for the metrics endpoint."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "recorded": self.recorded,
                "slow_queries": self.slow_queries,
                "slow_threshold_seconds": self.slow_seconds,
            }


# ----------------------------------------------------------------------
# Prometheus text-format exposition
# ----------------------------------------------------------------------

def _metric_value(value):
    """One sample value in exposition format."""
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _escape_label(value):
    """Escape one label value per the exposition format rules."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels(pairs):
    """Render a label dict as ``{k="v",...}`` (empty dict -> '')."""
    if not pairs:
        return ""
    body = ",".join('{}="{}"'.format(k, _escape_label(v))
                    for k, v in sorted(pairs.items()))
    return "{" + body + "}"


def _sanitize(name):
    """A metric-name-safe token (label *names* must match
    ``[a-zA-Z_][a-zA-Z0-9_]*`` too)."""
    out = []
    for i, ch in enumerate(str(name)):
        if ch.isascii() and (ch.isalpha() or ch == "_"
                             or (ch.isdigit() and i > 0)):
            out.append(ch)
        else:
            out.append("_")
    return "".join(out) or "_"


class _Exposition:
    """Accumulates HELP/TYPE headers and samples in order."""

    def __init__(self):
        self.lines = []

    def header(self, name, kind, help_text):
        """Emit the ``# HELP`` / ``# TYPE`` pair for ``name``."""
        self.lines.append("# HELP {} {}".format(name, help_text))
        self.lines.append("# TYPE {} {}".format(name, kind))

    def sample(self, name, labels, value):
        """Emit one sample line."""
        self.lines.append("{}{} {}".format(
            name, _labels(labels), _metric_value(value)))

    def text(self):
        """The full exposition body (trailing newline included)."""
        return "\n".join(self.lines) + "\n"


def render_prometheus(metrics_doc, prefix="repro"):
    """Render the ``/api/metrics`` document as Prometheus text format.

    Everything is derived from the JSON metrics document the server
    already builds -- the histograms' log-scale ``buckets`` (exported
    by :meth:`~repro.engine.stats.LatencyHistogram.snapshot`) become
    cumulative ``_bucket`` series with the mandatory ``+Inf`` bound,
    counters become ``_total`` counters, occupancy numbers become
    gauges.  The output parses under the text exposition format
    version 0.0.4 (``scripts/check_metrics_schema.py`` enforces it in
    CI).
    """
    exp = _Exposition()
    engine = metrics_doc.get("engine", {})

    name = prefix + "_uptime_seconds"
    exp.header(name, "gauge", "Server uptime in seconds.")
    exp.sample(name, {}, float(metrics_doc.get("uptime_seconds", 0.0)))

    requests = metrics_doc.get("requests", {})
    name = prefix + "_requests_total"
    exp.header(name, "counter", "HTTP requests served, by path.")
    for path in sorted(requests):
        exp.sample(name, {"path": path}, requests[path])

    name = prefix + "_request_errors_total"
    exp.header(name, "counter", "HTTP requests answered with an error.")
    exp.sample(name, {}, metrics_doc.get("errors", 0))

    counters = engine.get("counters", {})
    name = prefix + "_engine_events_total"
    exp.header(name, "counter",
               "Engine lifecycle events (submitted, completed, ...).")
    for event in sorted(counters):
        exp.sample(name, {"event": _sanitize(event)}, counters[event])

    name = prefix + "_engine_throughput_per_second"
    exp.header(name, "gauge",
               "Completions per second over the recent window.")
    exp.sample(name, {},
               float(engine.get("throughput_recent_per_second",
                                engine.get("throughput_per_second",
                                           0.0))))

    for gauge, help_text in (
            ("queue_depth", "Jobs waiting for an engine worker."),
            ("in_flight", "Jobs currently executing."),
            ("workers", "Engine worker pool size."),
    ):
        name = "{}_engine_{}".format(prefix, gauge)
        exp.header(name, "gauge", help_text)
        exp.sample(name, {}, engine.get(gauge, 0))

    name = prefix + "_latency_seconds"
    exp.header(name, "histogram",
               "Per-operation latency (log-scale buckets).")
    latency = engine.get("latency", {})
    for op in sorted(latency):
        hist = latency[op]
        labels = {"op": _sanitize(op)}
        cumulative = 0
        buckets = hist.get("buckets") or []
        for edge, count in buckets:
            cumulative += count
            bound = "+Inf" if edge is None else "{:g}".format(edge)
            exp.sample(name + "_bucket",
                       dict(labels, le=bound), cumulative)
        if not buckets:
            exp.sample(name + "_bucket", dict(labels, le="+Inf"),
                       hist.get("count", 0))
        exp.sample(name + "_sum", labels,
                   float(hist.get("total_seconds", 0.0)))
        exp.sample(name + "_count", labels, hist.get("count", 0))

    cache = metrics_doc.get("cache") or engine.get("cache") or {}
    for counter, help_text in (
            ("hits", "Result-cache hits."),
            ("misses", "Result-cache misses."),
            ("evictions", "Result-cache capacity evictions."),
            ("invalidations", "Result-cache invalidation evictions."),
    ):
        name = "{}_cache_{}_total".format(prefix, counter)
        exp.header(name, "counter", help_text)
        exp.sample(name, {}, cache.get(counter, 0))
    name = prefix + "_cache_entries"
    exp.header(name, "gauge", "Result-cache occupancy.")
    exp.sample(name, {}, cache.get("entries", 0))
    name = prefix + "_cache_invalidations_by_reason_total"
    exp.header(name, "counter",
               "Result-cache invalidations, by eviction reason.")
    for reason, count in sorted(
            (cache.get("invalidations_by_reason") or {}).items()):
        exp.sample(name, {"reason": _sanitize(reason)}, count)

    resilience = engine.get("resilience") or {}
    name = prefix + "_resilience_events_total"
    exp.header(name, "counter",
               "Resilience events (retries, hedges, quarantines, ...).")
    for event, count in sorted(
            (resilience.get("counters") or {}).items()):
        exp.sample(name, {"event": _sanitize(event)}, count)
    breakers = resilience.get("breakers") or {}
    name = prefix + "_breaker_state"
    exp.header(name, "gauge",
               "Circuit breaker state per substrate "
               "(0=closed, 1=half_open, 2=open).")
    state_codes = {"closed": 0, "half_open": 1, "open": 2}
    for backend in sorted(breakers):
        exp.sample(name, {"backend": _sanitize(backend)},
                   state_codes.get(breakers[backend].get("state"), 0))
    name = prefix + "_breaker_degraded_seconds_total"
    exp.header(name, "counter",
               "Seconds each substrate's breaker has spent "
               "open or half-open.")
    for backend in sorted(breakers):
        exp.sample(name, {"backend": _sanitize(backend)},
                   float(breakers[backend].get("degraded_seconds",
                                               0.0)))
    name = prefix + "_breaker_transitions_total"
    exp.header(name, "counter",
               "Breaker state transitions per substrate, by kind.")
    for backend in sorted(breakers):
        doc = breakers[backend]
        for kind in ("opens", "probes", "promotions"):
            exp.sample(name, {"backend": _sanitize(backend),
                              "kind": kind}, doc.get(kind, 0))
    name = prefix + "_quarantined_payloads"
    exp.header(name, "gauge",
               "Payload identities currently quarantined.")
    exp.sample(name, {}, resilience.get("quarantined", 0))

    payloads = engine.get("payloads") or {}
    name = prefix + "_shm_segments"
    exp.header(name, "gauge",
               "Live shared-memory payload segments owned by this "
               "process.")
    exp.sample(name, {}, payloads.get("shm_segments", 0))
    name = prefix + "_payload_bytes"
    exp.header(name, "gauge",
               "Bytes held in live shared-memory payload segments.")
    exp.sample(name, {}, payloads.get("payload_bytes", 0))
    name = prefix + "_payload_attach_failures_total"
    exp.header(name, "counter",
               "Zero-copy payload attach failures (workers fell back "
               "to the pickled path).")
    exp.sample(name, {}, payloads.get("attach_failures", 0))

    traces = engine.get("traces", {})
    name = prefix + "_traces_recorded_total"
    exp.header(name, "counter", "Query traces recorded.")
    exp.sample(name, {}, traces.get("recorded", 0))
    name = prefix + "_slow_queries_total"
    exp.header(name, "counter",
               "Traces that crossed the slow-query threshold.")
    exp.sample(name, {}, traces.get("slow_queries", 0))
    return exp.text()


# ----------------------------------------------------------------------
# waterfall rendering (the `repro trace` subcommand)
# ----------------------------------------------------------------------

def format_waterfall(doc, width=48):
    """Render one trace document as an ASCII waterfall.

    ``doc`` is :meth:`QueryTrace.to_dict` output (or the JSON the
    ``/api/traces/<id>`` endpoint serves).  Each span prints its
    nesting depth, duration, and a bar positioned on the query's
    timeline -- the classic distributed-tracing view, in a terminal.
    """
    spans = doc.get("spans") or []
    header = "{} {} [{}] {}".format(
        doc.get("query_id", "?"), doc.get("op", "?"),
        doc.get("status", "?"),
        " ".join("{}={}".format(k, v)
                 for k, v in sorted((doc.get("tags") or {}).items())))
    total = doc.get("seconds")
    if total is None:
        total = max((s["start"] + s["seconds"] for s in spans),
                    default=0.0) - doc.get("started", 0.0)
    lines = [header.rstrip(),
             "  total {:.3f} ms, {} span(s)".format(
                 (total or 0.0) * 1000, len(spans))]
    if not spans:
        return "\n".join(lines)
    base = doc.get("started") or min(s["start"] for s in spans)
    scale = width / total if total else 0.0
    depths = {}
    for i, span_doc in enumerate(spans):
        parent = span_doc.get("parent")
        depths[i] = 0 if parent is None else depths.get(parent, 0) + 1
        offset = max(0, min(width - 1,
                            int((span_doc["start"] - base) * scale)))
        length = max(1, int(span_doc["seconds"] * scale))
        length = min(length, width - offset)
        bar = " " * offset + "#" * length
        label = "  " * depths[i] + span_doc["name"]
        tags = span_doc.get("tags") or {}
        suffix = ""
        if tags:
            suffix = "  " + ",".join(
                "{}={}".format(k, v) for k, v in sorted(tags.items()))
        lines.append("  {:<26} {:>10.3f}ms |{:<{w}}|{}".format(
            label[:26], span_doc["seconds"] * 1000, bar, suffix,
            w=width))
    return "\n".join(lines)
