"""Deterministic randomness helpers.

Every randomised component in the library (dataset generators, CODICIL
sampling, layout initialisation, label propagation tie-breaking) takes
a ``seed`` argument and converts it into a :class:`random.Random`
through :func:`make_rng`, so runs are reproducible bit-for-bit and
tests can pin behaviour.
"""

import random


def make_rng(seed):
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (fresh nondeterministic generator), an
    ``int``/``str`` (seeded generator), or an existing
    :class:`random.Random` (returned unchanged so callers can thread
    one generator through nested components).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
