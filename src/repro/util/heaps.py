"""Updatable min-heap keyed by item.

The ``Global`` community-search baseline (Sozio & Gionis) repeatedly
removes the vertex of minimum degree while degrees of its neighbours
decrease; the ``Local`` baseline pops the best-scored frontier vertex
while scores change.  Both need a priority queue supporting
decrease/increase-key, which :mod:`heapq` alone does not.  The classic
lazy-deletion wrapper below provides it with O(log n) amortised ops.
"""

import heapq
import itertools

_REMOVED = object()


class UpdatableMinHeap:
    """Min-heap of ``(priority, item)`` with O(log n) priority updates.

    Items must be hashable and unique.  To obtain max-heap behaviour,
    negate priorities at the call site.
    """

    def __init__(self, items=()):
        self._heap = []
        self._entries = {}
        self._counter = itertools.count()
        for item, priority in items:
            self.push(item, priority)

    def __len__(self):
        return len(self._entries)

    def __bool__(self):
        return bool(self._entries)

    def __contains__(self, item):
        return item in self._entries

    def push(self, item, priority):
        """Insert ``item`` or update its priority if already present."""
        if item in self._entries:
            self._entries[item][-1] = _REMOVED
        entry = [priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    # ``update`` reads better than ``push`` at call sites that know the
    # item exists; both do the same thing.
    update = push

    def priority(self, item):
        """Return the current priority of ``item``."""
        return self._entries[item][0]

    def discard(self, item):
        """Remove ``item`` if present; no-op otherwise."""
        entry = self._entries.pop(item, None)
        if entry is not None:
            entry[-1] = _REMOVED

    def pop(self):
        """Remove and return ``(item, priority)`` with smallest priority."""
        while self._heap:
            priority, _, item = heapq.heappop(self._heap)
            if item is not _REMOVED:
                del self._entries[item]
                return item, priority
        raise KeyError("pop from empty heap")

    def peek(self):
        """Return ``(item, priority)`` with smallest priority, not removing."""
        while self._heap:
            priority, _, item = self._heap[0]
            if item is not _REMOVED:
                return item, priority
            heapq.heappop(self._heap)
        raise KeyError("peek on empty heap")
