"""Union-find (disjoint-set) forests.

Two variants are provided:

* :class:`UnionFind` -- the classic structure with union by rank and
  path compression, used wherever connected components are needed
  (graph validation, CODICIL clustering, Steiner search).

* :class:`AnchoredUnionFind` -- the "anchored union-find forest" used
  by the advanced (linear-time) CL-tree construction of the ACQ paper
  (illustrated in Figure 5(b) of the C-Explorer paper).  On top of the
  plain structure it lets each set carry an *anchor* payload -- for the
  CL-tree build, the id of the tree node currently representing that
  partially-built connected component -- which survives unions.
"""


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items.

    Items are added lazily on first use.  ``find`` uses iterative path
    compression (no recursion, safe for million-element graphs) and
    ``union`` uses union by rank.
    """

    def __init__(self, items=()):
        self._parent = {}
        self._rank = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item):
        """Register ``item`` as a singleton set if not already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def __contains__(self, item):
        return item in self._parent

    def __len__(self):
        return len(self._parent)

    @property
    def set_count(self):
        """Number of disjoint sets currently in the forest."""
        return self._count

    def find(self, item):
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path at the root.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b):
        """Merge the sets containing ``a`` and ``b``.

        Returns the representative of the merged set.  Both items are
        added if missing.
        """
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return ra

    def connected(self, a, b):
        """Return True when ``a`` and ``b`` are in the same set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def sets(self):
        """Return the partition as ``{representative: set(items)}``."""
        groups = {}
        for item in self._parent:
            groups.setdefault(self.find(item), set()).add(item)
        return groups


class AnchoredUnionFind(UnionFind):
    """Union-find whose sets carry an *anchor* payload.

    The CL-tree advanced builder processes vertices in decreasing core
    number; each disjoint set corresponds to a partially assembled
    subtree, and the anchor of the set is the CL-tree node that is the
    current root of that subtree.  Unions keep exactly one anchor per
    set; :meth:`set_anchor` re-points it when a new parent node absorbs
    a component.
    """

    def __init__(self, items=()):
        # _anchor must exist before the base constructor calls add().
        self._anchor = {}
        super().__init__(items)

    def add(self, item):
        known = item in self._parent
        super().add(item)
        if not known:
            self._anchor[item] = None

    def anchor_of(self, item):
        """Return the anchor payload of the set containing ``item``."""
        return self._anchor[self.find(item)]

    def set_anchor(self, item, anchor):
        """Attach ``anchor`` to the set containing ``item``."""
        self._anchor[self.find(item)] = anchor

    def union(self, a, b, anchor=None):
        """Merge sets, keeping ``anchor`` if given, else the winner's."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            if anchor is not None:
                self._anchor[ra] = anchor
            return ra
        anchor_a = self._anchor.get(ra)
        anchor_b = self._anchor.get(rb)
        root = super().union(ra, rb)
        if anchor is not None:
            self._anchor[root] = anchor
        else:
            self._anchor[root] = anchor_a if anchor_a is not None else anchor_b
        return root
