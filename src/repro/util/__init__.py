"""Low-level utilities shared by every subsystem.

This subpackage deliberately has no dependency on the rest of
:mod:`repro`; it provides the data structures the paper's index and
query algorithms are built from (union-find forests, updatable heaps)
plus small helpers for deterministic randomness and error reporting.
"""

from repro.util.errors import (
    CExplorerError,
    GraphFormatError,
    QueryError,
    UnknownAlgorithmError,
    UnknownVertexError,
)
from repro.util.heaps import UpdatableMinHeap
from repro.util.rng import make_rng
from repro.util.unionfind import AnchoredUnionFind, UnionFind

__all__ = [
    "AnchoredUnionFind",
    "CExplorerError",
    "GraphFormatError",
    "QueryError",
    "UnionFind",
    "UnknownAlgorithmError",
    "UnknownVertexError",
    "UpdatableMinHeap",
    "make_rng",
]
