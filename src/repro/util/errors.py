"""Exception hierarchy for the C-Explorer reproduction.

Every error raised deliberately by the library derives from
:class:`CExplorerError`, so callers embedding the system (e.g. the HTTP
server in :mod:`repro.server`) can catch one type and translate it into
a user-facing message, exactly as the original system reports query
problems back to the browser.
"""


class CExplorerError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(CExplorerError):
    """An uploaded/parsed graph file is malformed."""


class UnknownVertexError(CExplorerError, KeyError):
    """A query referenced a vertex name or id not present in the graph."""

    def __init__(self, vertex):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self):
        return "unknown vertex: {!r}".format(self.vertex)


class QueryError(CExplorerError, ValueError):
    """A query had invalid parameters (bad k, empty keyword set, ...)."""


class EngineError(CExplorerError):
    """Base class for query-execution-engine failures."""


class EngineBusyError(EngineError):
    """Admission control rejected the request: the queue is full.

    The HTTP layer translates this into a fast 429 so overload sheds
    load instead of stacking threads.
    """


class QueryTimeoutError(EngineError):
    """A submitted query exceeded its deadline."""


class QueryCancelledError(EngineError):
    """A submitted query was cancelled before it ran."""


class WorkerKilledError(EngineError):
    """A worker died (or was killed by fault injection) mid-job.

    The job itself is idempotent, so the retry policy treats this as
    transient: the engine re-runs the job with backoff instead of
    failing the query.
    """


class FaultInjectedError(EngineError):
    """An error raised deliberately by an active
    :class:`~repro.engine.faults.FaultPlan` (``error`` rules firing
    inside spans or job dispatch).  Retryable, like any transient
    worker failure."""


class PayloadCorruptionError(EngineError):
    """A shipped payload failed to unpickle in the worker.

    Carries the payload ``key`` so the engine can quarantine exactly
    the ``(graph, version)`` payload at fault instead of condemning
    the whole backend -- corruption is a *data* problem, pool death an
    *infrastructure* problem, and the circuit breaker only cares about
    the latter.
    """

    def __init__(self, message, key=None):
        super().__init__(message)
        self.key = key

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.key))


class JobPayloadError(EngineError):
    """A single job's payload would not pickle for process shipping.

    Unlike :class:`~repro.engine.backends.ProcessBackendError` this
    fails only the offending job -- the pool stays up and sibling jobs
    keep running (the unpicklable payload will not become picklable on
    a fresh pool).
    """

    def __init__(self, message, key=None):
        super().__init__(message)
        self.key = key

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.key))


class BatchMemberError(EngineError):
    """One member of a batched query group failed inside the shared
    worker job.  The batching layer retries the member solo instead of
    poisoning the whole clique; this carries the worker-side failure
    description for the retry's error message if the solo run also
    fails."""


class UnknownAlgorithmError(CExplorerError, KeyError):
    """An algorithm name was not found in the plug-in registry."""

    def __init__(self, name, known=()):
        super().__init__(name)
        self.name = name
        self.known = tuple(known)

    def __str__(self):
        msg = "unknown algorithm: {!r}".format(self.name)
        if self.known:
            msg += " (registered: {})".format(", ".join(sorted(self.known)))
        return msg
