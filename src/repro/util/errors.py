"""Exception hierarchy for the C-Explorer reproduction.

Every error raised deliberately by the library derives from
:class:`CExplorerError`, so callers embedding the system (e.g. the HTTP
server in :mod:`repro.server`) can catch one type and translate it into
a user-facing message, exactly as the original system reports query
problems back to the browser.
"""


class CExplorerError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(CExplorerError):
    """An uploaded/parsed graph file is malformed."""


class UnknownVertexError(CExplorerError, KeyError):
    """A query referenced a vertex name or id not present in the graph."""

    def __init__(self, vertex):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self):
        return "unknown vertex: {!r}".format(self.vertex)


class QueryError(CExplorerError, ValueError):
    """A query had invalid parameters (bad k, empty keyword set, ...)."""


class EngineError(CExplorerError):
    """Base class for query-execution-engine failures."""


class EngineBusyError(EngineError):
    """Admission control rejected the request: the queue is full.

    The HTTP layer translates this into a fast 429 so overload sheds
    load instead of stacking threads.
    """


class QueryTimeoutError(EngineError):
    """A submitted query exceeded its deadline."""


class QueryCancelledError(EngineError):
    """A submitted query was cancelled before it ran."""


class UnknownAlgorithmError(CExplorerError, KeyError):
    """An algorithm name was not found in the plug-in registry."""

    def __init__(self, name, known=()):
        super().__init__(name)
        self.name = name
        self.known = tuple(known)

    def __str__(self):
        msg = "unknown algorithm: {!r}".format(self.name)
        if self.known:
            msg += " (registered: {})".format(", ".join(sorted(self.known)))
        return msg
