"""Asynchronous label propagation (Raghavan et al.) -- the clustering
stage CODICIL delegates to, and a fast CD method in its own right.

Every vertex starts in its own community; in randomised sweeps each
vertex adopts the label most common among its neighbours (ties broken
uniformly at random).  Converges in a handful of sweeps on social
graphs.  Deterministic under a fixed seed.
"""

from repro.core.community import Community
from repro.util.rng import make_rng


def label_propagation(graph, max_sweeps=20, seed=0, weights=None,
                      as_communities=True, method_name="LabelPropagation"):
    """Cluster ``graph`` by label propagation.

    Parameters
    ----------
    weights:
        Optional ``{(u, v): weight}`` map (u < v) used to weight
        neighbour votes; CODICIL passes its similarity weights here.
    as_communities:
        When True (default) return a list of :class:`Community`;
        otherwise return the raw ``{vertex: label}`` map.

    Singleton clusters are kept -- callers that dislike them (CODICIL)
    can merge or drop them.
    """
    rng = make_rng(seed)
    labels = {v: v for v in graph.vertices()}
    order = list(graph.vertices())

    def edge_weight(u, v):
        if weights is None:
            return 1.0
        return weights.get((u, v) if u < v else (v, u), 1.0)

    for _ in range(max_sweeps):
        rng.shuffle(order)
        changed = 0
        for v in order:
            votes = {}
            # Weighted votes accumulate floats, whose sums depend on
            # addition order; iterate neighbours canonically so frozen
            # (sorted CSR) and mutable (set) inputs agree bit-for-bit.
            # Unweighted votes are exact sums of 1.0 -- no sort needed.
            nbrs = graph.neighbors(v)
            if weights is not None:
                nbrs = sorted(nbrs)
            for u in nbrs:
                lbl = labels[u]
                votes[lbl] = votes.get(lbl, 0.0) + edge_weight(v, u)
            if not votes:
                continue
            best = max(votes.values())
            winners = sorted(lbl for lbl, score in votes.items()
                             if score == best)
            new = winners[rng.randrange(len(winners))]
            if new != labels[v]:
                labels[v] = new
                changed += 1
        if not changed:
            break

    if not as_communities:
        return labels
    groups = {}
    for v, lbl in labels.items():
        groups.setdefault(lbl, set()).add(v)
    return [Community(graph, members, method=method_name)
            for members in groups.values()]
