"""``CODICIL``: content-and-link community detection (Ruan et al. [10]).

CODICIL's pipeline, reproduced here:

1. **Content edges.**  Treat each vertex's keyword set as a document;
   connect every vertex to its top-``t`` most similar vertices by
   TF-IDF cosine similarity.  Candidate pairs come from a keyword
   inverted index (vertices sharing no keyword have similarity 0 and
   are never compared), with very common keywords capped so the
   candidate lists stay near-linear.
2. **Edge union.**  Combine content edges with the topological edges.
3. **Local bias / sampling.**  For every vertex, rank its combined
   incident edges by a mix of content similarity and topological
   (neighbourhood Jaccard) similarity, and keep only the strongest
   fraction.  This sparsification is the heart of CODICIL: it lets a
   plain clustering algorithm see content signal without drowning in
   edges.
4. **Clustering.**  Cluster the sampled graph; we use (weighted) label
   propagation, matching the paper's "any fast graph clusterer"
   stance.

The result is a full partition (CODICIL is a community *detection*
method: "no parameter" for a query vertex in the paper's Figure 6 --
the community of ``q`` is simply the cluster containing it).
"""

import math

from repro.algorithms.label_propagation import label_propagation
from repro.core.community import Community
from repro.graph.attributed import AttributedGraph
from repro.util.errors import QueryError
from repro.util.rng import make_rng


def _tfidf_vectors(graph, df_cap_ratio):
    """Per-vertex TF-IDF vectors and the keyword inverted index.

    Returns ``(vectors, posting_lists)``; keywords appearing on more
    than ``df_cap_ratio * n`` vertices are dropped from the index (but
    kept in vectors with their low IDF weight).
    """
    n = max(graph.vertex_count, 1)
    df = {}
    for v in graph.vertices():
        for w in graph.keywords(v):
            df[w] = df.get(w, 0) + 1
    idf = {w: math.log(1.0 + n / count) for w, count in df.items()}
    vectors = {}
    for v in graph.vertices():
        vec = {w: idf[w] for w in graph.keywords(v)}
        norm = math.sqrt(sum(x * x for x in vec.values()))
        if norm > 0:
            vec = {w: x / norm for w, x in vec.items()}
        vectors[v] = vec
    cap = df_cap_ratio * n
    postings = {}
    for v in graph.vertices():
        for w in graph.keywords(v):
            if df[w] <= cap:
                postings.setdefault(w, []).append(v)
    return vectors, postings


def _cosine(vec_a, vec_b):
    if len(vec_a) > len(vec_b):
        vec_a, vec_b = vec_b, vec_a
    return sum(x * vec_b.get(w, 0.0) for w, x in vec_a.items())


def _content_edges(graph, vectors, postings, t, max_candidates):
    """Top-``t`` content neighbours per vertex via the inverted index.

    Keywords are scanned rarest-first so the candidate pool favours
    discriminative matches and the ``max_candidates`` cap cuts off the
    long common-keyword postings rather than the informative ones.
    """
    edges = {}
    for v in graph.vertices():
        seen = {}
        own = sorted(graph.keywords(v),
                     key=lambda w: len(postings.get(w, ())))
        for w in own:
            for u in postings.get(w, ()):
                if u != v:
                    seen[u] = seen.get(u, 0) + 1
            if len(seen) > max_candidates:
                break
        if not seen:
            continue
        scored = []
        for u in seen:
            sim = _cosine(vectors[v], vectors[u])
            if sim > 0.0:
                scored.append((sim, u))
        scored.sort(reverse=True)
        for sim, u in scored[:t]:
            key = (v, u) if v < u else (u, v)
            prev = edges.get(key)
            if prev is None or sim > prev:
                edges[key] = sim
    return edges


def _topo_jaccard(graph, u, v):
    """Neighbourhood Jaccard similarity (vertices included)."""
    nu = set(graph.neighbors(u))
    nu.add(u)
    nv = set(graph.neighbors(v))
    nv.add(v)
    inter = len(nu & nv)
    union = len(nu) + len(nv) - inter
    return inter / union if union else 0.0


def codicil(graph, content_neighbors=5, sample_ratio=0.5, alpha=0.5,
            df_cap_ratio=0.15, max_candidates=400, min_size=2,
            max_sweeps=20, seed=0):
    """Run the CODICIL pipeline; returns a list of :class:`Community`.

    Parameters
    ----------
    content_neighbors:
        ``t``, content edges added per vertex (step 1).
    sample_ratio:
        Fraction of each vertex's combined edges kept (step 3).
    alpha:
        Weight of content similarity vs topological similarity in the
        edge-ranking score (0 = structure only, 1 = content only).
    df_cap_ratio:
        Keywords on more than this fraction of vertices are too common
        to generate candidate pairs.
    min_size:
        Clusters smaller than this are emitted only if they are
        isolated (otherwise they stay as singleton communities --
        CODICIL never assigns a vertex to zero communities).
    """
    if not 0.0 < sample_ratio <= 1.0:
        raise ValueError("sample_ratio must be in (0, 1]")
    rng = make_rng(seed)
    vectors, postings = _tfidf_vectors(graph, df_cap_ratio)
    content = _content_edges(graph, vectors, postings, content_neighbors,
                             max_candidates)

    # Step 2: union of content and topological edges, scored.
    combined = dict(content)
    for u, v in graph.edges():
        key = (u, v)
        combined.setdefault(key, _cosine(vectors[u], vectors[v]))

    scores = {}
    incident = {v: [] for v in graph.vertices()}
    # Sorted edge order: ``combined``'s insertion order depends on the
    # input's adjacency iteration (set vs CSR), and the stable
    # per-vertex ranking below breaks score ties by list order -- so
    # every order-sensitive step downstream runs over a canonical
    # sequence, keeping frozen and mutable inputs byte-identical.
    for u, v in sorted(combined):
        content_sim = combined[(u, v)]
        score = alpha * content_sim + (1 - alpha) * _topo_jaccard(graph, u, v)
        scores[(u, v)] = score
        incident[u].append((u, v))
        incident[v].append((u, v))

    # Step 3: keep each vertex's strongest edges (ties break on the
    # canonical edge order, never on dict insertion order).
    kept = set()
    for v, edge_list in incident.items():
        if not edge_list:
            continue
        edge_list.sort(key=lambda e: (-scores[e], e))
        keep_n = max(1, int(math.ceil(sample_ratio * len(edge_list))))
        kept.update(edge_list[:keep_n])

    # Step 4: cluster the sampled graph with weighted label propagation.
    sampled = AttributedGraph()
    for _ in graph.vertices():
        sampled.add_vertex()
    weights = {}
    for u, v in sorted(kept):
        sampled.add_edge(u, v)
        weights[(u, v)] = max(scores[(u, v)], 1e-9)
    labels = label_propagation(sampled, max_sweeps=max_sweeps,
                               seed=rng.randrange(2 ** 31),
                               weights=weights, as_communities=False)

    groups = {}
    for v, lbl in labels.items():
        groups.setdefault(lbl, set()).add(v)
    communities = [
        Community(graph, members, method="CODICIL")
        for members in groups.values()
        if len(members) >= min_size or _is_isolated(graph, members)
    ]
    # Vertices folded out by min_size still need a home: singletons.
    covered = set()
    for c in communities:
        covered |= c.vertices
    for v in graph.vertices():
        if v not in covered:
            communities.append(Community(graph, {v}, method="CODICIL"))
    communities.sort(key=lambda c: (-len(c), sorted(c.vertices)))
    return communities


def _is_isolated(graph, members):
    return all(graph.degree(v) == 0 for v in members)


def codicil_community(graph, q, partition=None, **kwargs):
    """The CODICIL community containing ``q`` (Figure 6 usage).

    ``partition`` lets callers reuse a precomputed :func:`codicil`
    result; otherwise the pipeline runs with ``kwargs``.
    """
    if q not in graph:
        raise QueryError("query vertex {!r} not in graph".format(q))
    if partition is None:
        partition = codicil(graph, **kwargs)
    for community in partition:
        if q in community:
            return [Community(graph, community.vertices, method="CODICIL",
                              query_vertices=(q,))]
    return []
