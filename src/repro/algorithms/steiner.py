"""Steiner-style connectivity community search (Section 2, ref [6]).

Hu et al. (CIKM 2016) query *minimal Steiner maximum-connected
subgraphs*: given a set ``Q`` of query vertices, find a subgraph that
(a) contains ``Q``, (b) maximises cohesiveness, and (c) is minimal --
no vertex can be dropped without breaking (a)/(b).  The paper lists
this connectivity-based model as the third cohesiveness family next to
k-core and k-truss; we implement the k-core flavoured variant:

1. **Maximise**: binary-search the largest ``k*`` such that all of
   ``Q`` lie in one connected component of the k*-core
   (:func:`steiner_max_core`).
2. **Minimise**: inside that component, grow a Steiner connector of
   ``Q`` (iterative shortest-path joining) and then close it under the
   degree constraint, finally peeling vertices that are not needed for
   connectivity, degree-feasibility or ``Q`` membership
   (:func:`steiner_community_search`).

The result is a small certificate community: every vertex still has
degree >= k* inside it, it is connected, contains ``Q``, and removing
any single non-essential vertex has been tried and rejected.
"""

from collections import deque

from repro.core.community import Community
from repro.core.kcore import connected_k_core, core_decomposition, \
    peel_to_min_degree
from repro.util.errors import QueryError


def steiner_max_core(graph, query_vertices):
    """Largest ``k`` with all query vertices in one k-core component.

    Returns ``(k_star, component_vertices)``; raises
    :class:`QueryError` when the query vertices are disconnected even
    at k = 0.
    """
    qs = list(dict.fromkeys(query_vertices))
    if not qs:
        raise QueryError("at least one query vertex is required")
    for q in qs:
        if q not in graph:
            raise QueryError("query vertex {!r} not in graph".format(q))
    core = core_decomposition(graph)
    high = min(core[q] for q in qs)
    best = None
    lo, hi = 0, high
    while lo <= hi:
        mid = (lo + hi) // 2
        comp = connected_k_core(graph, qs[0], mid)
        if comp is not None and all(q in comp for q in qs):
            best = (mid, comp)
            lo = mid + 1
        else:
            hi = mid - 1
    if best is None:
        raise QueryError("query vertices are not connected in the graph")
    return best


def _shortest_path(graph, members, source, targets):
    """BFS path from ``source`` to the nearest of ``targets`` within
    ``members``; returns the path vertex list (or None)."""
    targets = set(targets)
    parent = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        if v in targets:
            path = []
            while v is not None:
                path.append(v)
                v = parent[v]
            return path
        # Sorted expansion: equally short paths must tie-break on
        # vertex ids, not on the representation's adjacency order, so
        # the connector (and the final community) is canonical.
        for u in sorted(graph.neighbors(v)):
            if u in members and u not in parent:
                parent[u] = v
                queue.append(u)
    return None


def _steiner_connector(graph, members, qs):
    """Approximate Steiner tree of ``qs`` inside ``members``:
    iteratively join the next terminal via a shortest path to the
    current tree (the classic 2-approximation shape)."""
    tree = {qs[0]}
    for q in qs[1:]:
        if q in tree:
            continue
        path = _shortest_path(graph, members, q, tree)
        if path is None:  # cannot happen inside one component
            raise QueryError("query vertices disconnected in component")
        tree.update(path)
    return tree


def steiner_community_search(graph, query_vertices, k=None,
                             max_grow_rounds=50):
    """Minimal Steiner maximum-connected community of ``Q``.

    ``k=None`` maximises the degree constraint first (the SMCS
    behaviour); an explicit ``k`` pins it (must not exceed the
    feasible maximum).  Returns a list with one :class:`Community`.
    """
    qs = list(dict.fromkeys(query_vertices))
    k_star, component = steiner_max_core(graph, qs)
    if k is not None:
        if k > k_star:
            return []
        k_star = k
        component = connected_k_core(graph, qs[0], k_star)

    # 1. Steiner connector of the query vertices.
    seed = _steiner_connector(graph, component, qs)

    # 2. Close under the degree constraint: everyone in the candidate
    #    needs k* neighbours inside; greedily absorb the best-connected
    #    component vertices until the peel of the candidate keeps Q.
    candidate = set(seed)
    for _ in range(max_grow_rounds):
        survivors = peel_to_min_degree(graph, candidate, k_star,
                                       protect=())
        if survivors and all(q in survivors for q in qs):
            comp = _component_of(graph, survivors, qs[0])
            if all(q in comp for q in qs):
                candidate = comp
                break
        # Absorb neighbours of the current candidate, most-connected
        # first, a batch at a time.
        frontier = {}
        for v in candidate:
            for u in graph.neighbors(v):
                if u in component and u not in candidate:
                    frontier[u] = frontier.get(u, 0) + 1
        if not frontier:
            candidate = set(component)
            break
        batch = sorted(frontier, key=lambda u: (-frontier[u], u))
        take = max(1, len(candidate) // 2)
        candidate.update(batch[:take])
    else:
        candidate = set(component)
    survivors = peel_to_min_degree(graph, candidate, k_star, protect=())
    if not survivors or not all(q in survivors for q in qs):
        survivors = set(component)
    members = _component_of(graph, survivors, qs[0])

    # 3. Minimise: try dropping each non-query vertex (smallest degree
    #    first); keep the drop when the remainder still peels to a
    #    connected k*-core containing Q.
    order = sorted((v for v in members if v not in qs),
                   key=lambda v: (sum(1 for u in graph.neighbors(v)
                                      if u in members), v))
    for v in order:
        if v not in members or len(members) <= len(qs):
            continue
        trial = peel_to_min_degree(graph, members - {v}, k_star,
                                   protect=())
        if not trial or not all(q in trial for q in qs):
            continue
        comp = _component_of(graph, trial, qs[0])
        if all(q in comp for q in comp & set(qs)) and \
                all(q in comp for q in qs):
            members = comp
    return [Community(graph, members, method="Steiner",
                      query_vertices=tuple(qs), k=k_star)]


def _component_of(graph, members, source):
    comp = {source}
    stack = [source]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            if u in members and u not in comp:
                comp.add(u)
                stack.append(u)
    return comp
