"""k-truss community search (Huang et al., SIGMOD 2014 [7]).

The truss-based community model the paper cites as the other structure
cohesiveness: a *k-truss community* of query vertex ``q`` is a maximal
subgraph in which (a) every edge has truss number >= k, i.e. closes at
least ``k - 2`` triangles inside the subgraph, and (b) any two edges
are connected through a chain of adjacent triangles ("triangle
connectivity") -- which prevents the cut-vertex artefacts plain k-core
communities can exhibit.  One query vertex can belong to several
k-truss communities (one per triangle-connected bundle of its edges),
just as ACQ can return several communities per query.
"""

from repro.core.community import Community
from repro.core.ktruss import truss_decomposition
from repro.util.errors import QueryError


def truss_community_search(graph, q, k, truss=None):
    """All k-truss communities containing ``q``.

    Parameters
    ----------
    truss:
        Optional precomputed :func:`truss_decomposition` result, reused
        across queries the way C-Explorer's index module would.

    Returns a list of :class:`Community`, largest first.
    """
    if q not in graph:
        raise QueryError("query vertex {!r} not in graph".format(q))
    if k < 2:
        raise QueryError("k must be >= 2 for a k-truss community")
    if truss is None:
        truss = truss_decomposition(graph)

    if isinstance(graph.neighbors(q), set):
        nbrs = graph.neighbors
    else:
        # CSR neighbourhoods are flat array slices: membership probes
        # would be linear scans, and the triangle BFS below is all
        # membership probes.  Materialise each touched neighbourhood
        # as a set once (results are identical either way).
        _sets = {}

        def nbrs(v):
            s = _sets.get(v)
            if s is None:
                s = _sets[v] = set(graph.neighbors(v))
            return s

    def edge_key(u, v):
        return (u, v) if u < v else (v, u)

    def strong(u, v):
        return truss.get(edge_key(u, v), 0) >= k

    # BFS over edges through shared triangles whose three edges are all
    # strong (the Huang et al. triangle-connectivity relation).
    seed_edges = [edge_key(q, u) for u in nbrs(q) if strong(q, u)]
    visited = set()
    communities = []
    for seed in seed_edges:
        if seed in visited:
            continue
        bundle = {seed}
        visited.add(seed)
        stack = [seed]
        while stack:
            u, v = stack.pop()
            nu, nv = nbrs(u), nbrs(v)
            small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
            for w in small:
                if w in large and strong(u, w) and strong(v, w):
                    for nxt in (edge_key(u, w), edge_key(v, w)):
                        if nxt not in visited:
                            visited.add(nxt)
                            bundle.add(nxt)
                            stack.append(nxt)
        members = {x for e in bundle for x in e}
        communities.append(Community(graph, members, method="k-truss",
                                     query_vertices=(q,), k=k))
    communities.sort(key=lambda c: (-len(c), sorted(c.vertices)))
    return communities
