"""Competitor CR algorithms and the plug-in registry.

C-Explorer ships the ACQ engine plus three other community-retrieval
methods (Section 2/3): the community-*search* baselines ``Global``
(Sozio & Gionis) and ``Local`` (Cui et al.), and the community-
*detection* baseline ``CODICIL`` (Ruan et al.).  This subpackage
implements them, plus the k-truss community search and Newman-Girvan
detection the paper cites as alternatives, and the registry behind the
"plug in your own CR solution" API (Section 3.1).
"""

from repro.algorithms.attributed_truss import attributed_truss_search
from repro.algorithms.codicil import codicil, codicil_community
from repro.algorithms.global_search import global_max_min_degree, global_search
from repro.algorithms.label_propagation import label_propagation
from repro.algorithms.local_search import local_search
from repro.algorithms.newman_girvan import edge_betweenness, newman_girvan
from repro.algorithms.registry import (
    cd_algorithm,
    cs_algorithm,
    get_cd_algorithm,
    get_cs_algorithm,
    list_cd_algorithms,
    list_cs_algorithms,
    register_cd_algorithm,
    register_cs_algorithm,
)
from repro.algorithms.spatial import (
    register_spatial_algorithm,
    spatial_community_search,
)
from repro.algorithms.steiner import (
    steiner_community_search,
    steiner_max_core,
)
from repro.algorithms.truss_search import truss_community_search

__all__ = [
    "attributed_truss_search",
    "cd_algorithm",
    "codicil",
    "codicil_community",
    "cs_algorithm",
    "edge_betweenness",
    "get_cd_algorithm",
    "get_cs_algorithm",
    "global_max_min_degree",
    "global_search",
    "label_propagation",
    "list_cd_algorithms",
    "list_cs_algorithms",
    "local_search",
    "newman_girvan",
    "register_cd_algorithm",
    "register_cs_algorithm",
    "register_spatial_algorithm",
    "spatial_community_search",
    "steiner_community_search",
    "steiner_max_core",
    "truss_community_search",
]
