"""``Global``: the community-search baseline of Sozio & Gionis [11].

Given a query vertex ``q``, Global peels minimum-degree vertices off
the whole graph while protecting ``q``; the surviving subgraph is the
largest connected subgraph containing ``q`` whose minimum internal
degree is maximal.  With the degree constraint the C-Explorer UI
exposes ("Global: degree >= 4"), the answer is exactly the connected
``k``-core containing ``q`` -- which is why Global communities are big
(305 vertices in the paper's Figure 6 table): they include *everyone*
who clears the bar, with no locality or keyword pruning.
"""

from repro.core.community import Community
from repro.core.kcore import (
    connected_k_core,
    core_decomposition,
    peel_to_min_degree,
)
from repro.util.errors import QueryError


def global_search(graph, q, k, core=None):
    """Community of ``q`` with min degree >= ``k`` (maximal, connected).

    Returns a list with zero or one :class:`Community` -- empty when
    ``q`` is not in the k-core.  Implemented as the Sozio-Gionis greedy
    peel specialised to a fixed ``k``: delete every vertex whose degree
    falls below ``k``, then keep the component of ``q``.

    ``core`` optionally supplies precomputed core numbers for
    ``graph``'s current state: the answer is exactly the connected
    k-core component of ``q``, so with the engine's versioned
    decomposition in hand the whole-graph peel is skipped and the
    query costs one BFS over the component.
    """
    if q not in graph:
        raise QueryError("query vertex {!r} not in graph".format(q))
    if k < 0:
        raise QueryError("degree constraint k must be >= 0")
    if core is not None:
        comp = connected_k_core(graph, q, k, core=core)
        if comp is None:
            return []
        return [Community(graph, comp, method="Global",
                          query_vertices=(q,), k=k)]
    survivors = peel_to_min_degree(graph, graph.vertices(), k, protect=(q,))
    if survivors is None:
        return []
    comp = {q}
    frontier = [q]
    while frontier:
        u = frontier.pop()
        for w in graph.neighbors(u):
            if w in survivors and w not in comp:
                comp.add(w)
                frontier.append(w)
    return [Community(graph, comp, method="Global", query_vertices=(q,),
                      k=k)]


def global_max_min_degree(graph, q):
    """The original (parameter-free) Global: maximise minimum degree.

    The subgraph containing ``q`` whose minimum degree is as large as
    possible is the ``core(q)``-core component of ``q`` (the best
    achievable ``k`` equals the core number of ``q``), so this runs one
    core decomposition plus a traversal.

    Returns ``(community, k_star)``.
    """
    if q not in graph:
        raise QueryError("query vertex {!r} not in graph".format(q))
    core = core_decomposition(graph)
    k_star = core[q]
    result = global_search(graph, q, k_star)
    return result[0], k_star
