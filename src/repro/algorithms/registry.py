"""The plug-in API: registering and resolving CR algorithms.

Section 3.1 of the paper: *"We provide a list of Java API functions,
so the public users can easily plug in their own algorithms"*.  This
module is the Python equivalent.  Two kinds of algorithms exist,
matching the ``search``/``detect`` split of the ``CExplorer``
interface (Figure 4):

* **CS (community search)** -- query-based: called as
  ``func(graph, q, k, keywords=None, **params)`` and returns a list of
  :class:`~repro.core.community.Community` for the query vertex;
* **CD (community detection)** -- whole-graph: called as
  ``func(graph, **params)`` and returns a partition as a list of
  communities.

All built-in methods (ACQ variants, Global, Local, k-truss, CODICIL,
Newman-Girvan, label propagation) are pre-registered, so
``get_cs_algorithm("acq")`` works out of the box and
``list_cs_algorithms()`` is what the C-Explorer UI would render as the
algorithm drop-down.
"""

from repro.algorithms.attributed_truss import attributed_truss_search
from repro.algorithms.codicil import codicil, codicil_community
from repro.algorithms.global_search import global_search
from repro.algorithms.label_propagation import label_propagation
from repro.algorithms.local_search import local_search
from repro.algorithms.newman_girvan import newman_girvan
from repro.algorithms.steiner import steiner_community_search
from repro.algorithms.truss_search import truss_community_search
from repro.core.acq import acq_search
from repro.util.errors import UnknownAlgorithmError

_CS = {}
_CD = {}


class AlgorithmInfo:
    """Registry record: the callable plus UI metadata."""

    __slots__ = ("name", "kind", "func", "description")

    def __init__(self, name, kind, func, description):
        self.name = name
        self.kind = kind
        self.func = func
        self.description = description

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)

    def __repr__(self):
        return "AlgorithmInfo({!r}, kind={!r})".format(self.name, self.kind)


def register_cs_algorithm(name, func, description="", overwrite=False):
    """Register a community-search algorithm under ``name``.

    ``func(graph, q, k, keywords=None, **params) -> list[Community]``.
    Registering an existing name raises ``ValueError`` unless
    ``overwrite=True`` (so a plug-in cannot silently shadow ACQ).
    """
    key = name.lower()
    if key in _CS and not overwrite:
        raise ValueError("CS algorithm {!r} already registered".format(name))
    _CS[key] = AlgorithmInfo(key, "cs", func, description)
    return _CS[key]


def register_cd_algorithm(name, func, description="", overwrite=False):
    """Register a community-detection algorithm under ``name``.

    ``func(graph, **params) -> list[Community]``.
    """
    key = name.lower()
    if key in _CD and not overwrite:
        raise ValueError("CD algorithm {!r} already registered".format(name))
    _CD[key] = AlgorithmInfo(key, "cd", func, description)
    return _CD[key]


def cs_algorithm(name, description=""):
    """Decorator form of :func:`register_cs_algorithm`."""
    def wrap(func):
        register_cs_algorithm(name, func, description)
        return func
    return wrap


def cd_algorithm(name, description=""):
    """Decorator form of :func:`register_cd_algorithm`."""
    def wrap(func):
        register_cd_algorithm(name, func, description)
        return func
    return wrap


def get_cs_algorithm(name):
    """Resolve a CS algorithm; raises :class:`UnknownAlgorithmError`."""
    try:
        return _CS[name.lower()]
    except KeyError:
        raise UnknownAlgorithmError(name, _CS) from None


def get_cd_algorithm(name):
    """Resolve a CD algorithm; raises :class:`UnknownAlgorithmError`."""
    try:
        return _CD[name.lower()]
    except KeyError:
        raise UnknownAlgorithmError(name, _CD) from None


def list_cs_algorithms():
    """Sorted names of registered CS algorithms."""
    return sorted(_CS)


def list_cd_algorithms():
    """Sorted names of registered CD algorithms."""
    return sorted(_CD)


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------

def _acq_adapter(variant):
    def run(graph, q, k, keywords=None, index=None, **params):
        return acq_search(graph, q, k, keywords=keywords,
                          algorithm=variant, index=index, **params)
    return run


def _global_adapter(graph, q, k, keywords=None, **params):
    return global_search(graph, q, k, **params)


def _local_adapter(graph, q, k, keywords=None, **params):
    return local_search(graph, q, k, **params)


def _truss_adapter(graph, q, k, keywords=None, **params):
    return truss_community_search(graph, q, k, **params)


def _codicil_cs_adapter(graph, q, k=None, keywords=None, **params):
    return codicil_community(graph, q, **params)


def _steiner_adapter(graph, q, k=None, keywords=None, **params):
    qs = q if isinstance(q, (list, tuple, set)) else (q,)
    return steiner_community_search(graph, qs, k=k, **params)


def _newman_girvan_adapter(graph, **params):
    communities, _ = newman_girvan(graph, **params)
    return communities


register_cs_algorithm(
    "acq", _acq_adapter("dec"),
    "Attributed community query, Dec algorithm (the C-Explorer engine)")
register_cs_algorithm(
    "acq-inc-s", _acq_adapter("inc-s"),
    "ACQ, incremental enumeration without index support")
register_cs_algorithm(
    "acq-inc-t", _acq_adapter("inc-t"),
    "ACQ, incremental enumeration over the CL-tree")
register_cs_algorithm(
    "global", _global_adapter,
    "Sozio-Gionis Global: maximal connected subgraph with min degree >= k")
register_cs_algorithm(
    "local", _local_adapter,
    "Cui et al. Local: expansion-based community search")
register_cs_algorithm(
    "k-truss", _truss_adapter,
    "Huang et al. triangle-connected k-truss community search")
register_cs_algorithm(
    "codicil", _codicil_cs_adapter,
    "CODICIL cluster containing the query vertex (no degree parameter)")
register_cs_algorithm(
    "steiner", _steiner_adapter,
    "Hu et al. minimal Steiner maximum-core community (k=None maximises)")
register_cs_algorithm(
    "atc", attributed_truss_search,
    "attributed community under k-truss cohesiveness (extension)")

register_cd_algorithm(
    "codicil", codicil,
    "Ruan et al. CODICIL: content+link sparsification, then clustering")
register_cd_algorithm(
    "newman-girvan", _newman_girvan_adapter,
    "Divisive edge-betweenness detection with modularity selection")
register_cd_algorithm(
    "label-propagation", label_propagation,
    "Asynchronous label propagation over the raw topology")
