"""``Local``: the expansion-based community search of Cui et al. [1].

Where ``Global`` peels the entire graph, ``Local`` grows a candidate
set outward from the query vertex and stops as soon as the candidate
set contains a subgraph in which every vertex (including ``q``) has
degree >= k.  Two consequences the paper's Figure 6 table shows:

* much smaller communities (50 vertices vs Global's 305) -- expansion
  stops at the first qualifying neighbourhood instead of collecting
  the entire k-core component;
* usually faster on large graphs, because only the neighbourhood of
  ``q`` is touched.

The expansion order follows the Cui et al. heuristic: always add the
frontier vertex with the most connections into the current candidate
set (ties broken towards lower global degree, which avoids pulling in
hub vertices that drag the whole graph behind them).
"""

from repro.core.community import Community
from repro.core.kcore import peel_to_min_degree
from repro.util.errors import QueryError
from repro.util.heaps import UpdatableMinHeap


def local_search(graph, q, k, budget=None, check_interval=None):
    """Find a community of ``q`` with min internal degree >= ``k``.

    Parameters
    ----------
    budget:
        Maximum number of vertices to absorb before giving up
        (default: ``max(64, 16 * (k + 1)**2)``, following the "local"
        spirit -- the candidate set stays small relative to the graph).
    check_interval:
        Re-run the k-core check after this many additions (default
        ``k + 1``, since fewer additions cannot create a new k-core).

    Returns a list with zero or one :class:`Community`.
    """
    if q not in graph:
        raise QueryError("query vertex {!r} not in graph".format(q))
    if k < 0:
        raise QueryError("degree constraint k must be >= 0")
    if graph.degree(q) < k:
        return []
    if budget is None:
        budget = max(64, 16 * (k + 1) ** 2)
    if check_interval is None:
        check_interval = max(1, k + 1)

    candidate = {q}
    # Min-heap over (-connections_to_candidate, global_degree) so the
    # best-connected, least-hubby frontier vertex pops first.
    frontier = UpdatableMinHeap()
    connections = {}

    def absorb(v):
        candidate.add(v)
        frontier.discard(v)
        connections.pop(v, None)
        for u in graph.neighbors(v):
            if u in candidate:
                continue
            connections[u] = connections.get(u, 0) + 1
            # The vertex id is part of the priority: equal-score
            # frontier vertices must pop in a canonical order, not in
            # heap-insertion order (which follows adjacency iteration
            # and would differ between set and CSR representations).
            frontier.push(u, (-connections[u], graph.degree(u), u))

    absorb(q)
    since_check = 0
    while frontier and len(candidate) < budget:
        v, _ = frontier.pop()
        connections.pop(v, None)
        absorb(v)
        since_check += 1
        if since_check >= check_interval:
            since_check = 0
            found = _extract(graph, candidate, q, k)
            if found is not None:
                return [found]
    found = _extract(graph, candidate, q, k)
    return [found] if found is not None else []


def _extract(graph, candidate, q, k):
    """k-core of the candidate set around ``q``, as a Community."""
    survivors = peel_to_min_degree(graph, candidate, k, protect=())
    if not survivors or q not in survivors:
        return None
    comp = {q}
    stack = [q]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w in survivors and w not in comp:
                comp.add(w)
                stack.append(w)
    return Community(graph, comp, method="Local", query_vertices=(q,), k=k)
