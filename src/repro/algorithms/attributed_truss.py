"""Attributed community search under *truss* cohesiveness.

The paper notes that besides minimum degree, "other structure
cohesiveness measures, including connectivity and k-truss, have also
been considered for searching communities", and that C-Explorer's
"modular design facilitates future extension".  This module is that
extension: ACQ's keyword maximisation re-based on the k-truss --
every *edge* of the community must close at least ``k - 2`` triangles
inside it, a strictly stronger requirement than degree >= k - 1.

The enumeration mirrors ``Dec`` (top-down over keyword subsets with
singleton pre-filtering, first feasible size wins); only the
verification primitive changes: candidate vertex sets are reduced to
the k-truss and the query vertex's component within it.
"""

from itertools import combinations

from repro.core.acq import AcqQuery
from repro.core.community import Community
from repro.core.ktruss import edge_support
from repro.util.errors import QueryError


def truss_reduce(graph, candidates, k):
    """Largest subgraph of ``candidates`` whose edges all have support
    >= k - 2 within it; returns the surviving vertex set.

    A vertex survives when it keeps at least one qualifying edge
    (k > 2) -- isolated leftovers are dropped.
    """
    if k < 2:
        raise QueryError("truss order k must be >= 2")
    members = set(candidates)
    support = edge_support(graph, subset=members)
    adj = {}
    for (u, v), s in support.items():
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    queue = [e for e, s in support.items() if s < k - 2]
    dead = set(queue)
    while queue:
        u, v = queue.pop()
        # Every triangle through (u, v) loses one support.
        nu, nv = adj.get(u, set()), adj.get(v, set())
        small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
        for w in list(small):
            if w in large:
                for other in ((min(u, w), max(u, w)),
                              (min(v, w), max(v, w))):
                    if other in dead:
                        continue
                    s = support.get(other)
                    if s is None:
                        continue
                    support[other] = s - 1
                    if s - 1 < k - 2:
                        dead.add(other)
                        queue.append(other)
        adj[u].discard(v)
        adj[v].discard(u)
    return {v for v, nbrs in adj.items() if nbrs}


def _query_component(query, survivors):
    """The query vertices' component within ``survivors``, or None
    when any query vertex falls outside the survivors or the
    component."""
    graph, qs = query.graph, query.query_vertices
    if not all(q in survivors for q in qs):
        return None
    comp = {qs[0]}
    stack = [qs[0]]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w in survivors and w not in comp:
                comp.add(w)
                stack.append(w)
    if not all(q in comp for q in qs):
        return None
    return comp


def _verify_truss(query, candidates):
    """Truss-cohesive community of the query vertices inside
    ``candidates``, or None."""
    survivors = truss_reduce(query.graph, candidates, query.k)
    return _query_component(query, survivors)


def _base_from_edges(query, edges):
    """The structural base derived from a precomputed k-truss edge set.

    ``edges`` must be the exact global k-truss edge set (the engine's
    sharded fan-out produces it); the survivors are its endpoints and
    the base is the query vertex's component within them -- exactly
    what ``_verify_truss(query, graph.vertices())`` computes from
    scratch.
    """
    survivors = set()
    for u, v in edges:
        survivors.add(u)
        survivors.add(v)
    return _query_component(query, survivors)


def attributed_truss_search(graph, q, k, keywords=None, base_edges=None):
    """Attributed truss community (ATC-style) of ``q``.

    Returns communities whose induced subgraph is a connected k-truss
    containing ``q`` and whose shared keyword set (within ``S``) has
    maximal size -- ACQ's Problem 1 with the cohesiveness swapped.
    ``base_edges`` optionally supplies the precomputed global k-truss
    edge set (the sharded fan-out's merge product), replacing the
    whole-graph truss reduction of the structural phase.
    """
    if k < 2:
        raise QueryError("truss order k must be >= 2")
    query = AcqQuery(graph, q, k, keywords)
    if base_edges is None:
        base = _verify_truss(query, graph.vertices())
    else:
        base = _base_from_edges(query, base_edges)
    if base is None:
        return []
    by_kw = {}
    for v in base:
        for w in query.keywords & graph.keywords(v):
            by_kw.setdefault(w, set()).add(v)

    # Singleton pre-filter (sound for the same monotonicity reason as
    # in Dec: candidate vertex sets shrink as keywords are added, and
    # truss reduction is monotone in the candidate set).
    singleton_hits = {}
    kept = []
    for w in sorted(by_kw):
        if len(by_kw[w]) < 3:  # a triangle needs three vertices
            continue
        hit = _verify_truss(query, by_kw[w])
        if hit is not None:
            kept.append(w)
            singleton_hits[w] = hit
    if not kept:
        return [_community(query, base)]

    for size in range(len(kept), 0, -1):
        winners = []
        for cand in combinations(kept, size):
            if size == 1:
                winners.append(singleton_hits[cand[0]])
                continue
            members = set.intersection(*(by_kw[w] for w in cand))
            if len(members) < 3:
                continue
            hit = _verify_truss(query, members)
            if hit is not None:
                winners.append(hit)
        if winners:
            seen = set()
            out = []
            for members in winners:
                key = frozenset(members)
                if key not in seen:
                    seen.add(key)
                    out.append(_community(query, members))
            out.sort(key=lambda c: (-len(c.shared_keywords), -len(c),
                                    sorted(c.vertices)))
            return out
    return [_community(query, base)]


def _community(query, members):
    graph = query.graph
    shared = frozenset.intersection(
        *(graph.keywords(v) for v in members)) & query.keywords
    return Community(graph, members, method="ATC",
                     query_vertices=query.query_vertices, k=query.k,
                     shared_keywords=shared)
