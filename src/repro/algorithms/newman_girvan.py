"""Newman-Girvan divisive community detection [9].

The classic CD algorithm the paper cites to motivate why detection is
too slow for online browsing (Section 2): repeatedly remove the edge
of highest betweenness, tracking the partition of maximum modularity.
Betweenness is computed with Brandes' algorithm from scratch after
every removal, giving the well-known O(n * m^2) behaviour -- the
benchmark E9 uses exactly that cost to reproduce the paper's
online-CS vs offline-CD contrast.
"""

from collections import deque

from repro.core.community import Community
from repro.graph.protocol import thaw


def edge_betweenness(graph, members=None):
    """Brandes' edge betweenness for the (sub)graph on ``members``.

    Returns ``{(u, v): score}`` with u < v.  Unweighted shortest paths.
    """
    if members is None:
        members = set(graph.vertices())
    else:
        members = set(members)
    betweenness = {}
    for s in members:
        # Single-source shortest paths (BFS) with path counting.
        sigma = {s: 1.0}
        dist = {s: 0}
        preds = {s: []}
        order = []
        queue = deque([s])
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in graph.neighbors(v):
                if w not in members:
                    continue
                if w not in dist:
                    dist[w] = dist[v] + 1
                    sigma[w] = 0.0
                    preds[w] = []
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        # Dependency accumulation, attributing flow to edges.
        delta = {v: 0.0 for v in order}
        for w in reversed(order):
            for v in preds[w]:
                share = (sigma[v] / sigma[w]) * (1.0 + delta[w])
                key = (v, w) if v < w else (w, v)
                betweenness[key] = betweenness.get(key, 0.0) + share
                delta[v] += share
    # Each undirected path counted from both endpoints.
    return {e: b / 2.0 for e, b in betweenness.items()}


def modularity(graph, partition, degrees=None, m=None):
    """Newman modularity Q of a partition (iterable of vertex sets).

    Degrees and edge count refer to the *original* graph, per the
    divisive algorithm's definition.
    """
    if m is None:
        m = graph.edge_count
    if m == 0:
        return 0.0
    if degrees is None:
        degrees = {v: graph.degree(v) for v in graph.vertices()}
    q = 0.0
    for members in partition:
        members = set(members)
        internal = 0
        total_degree = 0
        for v in members:
            total_degree += degrees[v]
            for u in graph.neighbors(v):
                if u in members:
                    internal += 1
        internal //= 2
        q += internal / m - (total_degree / (2.0 * m)) ** 2
    return q


def newman_girvan(graph, max_removals=None, target_clusters=None):
    """Run Newman-Girvan; returns the max-modularity partition.

    Parameters
    ----------
    max_removals:
        Stop after removing this many edges (defaults to all of them;
        set it on large graphs, where full NG is intentionally slow).
    target_clusters:
        Stop as soon as the graph splits into this many components.

    Returns ``(communities, best_modularity)`` where ``communities`` is
    a list of :class:`Community` labelled ``"Newman-Girvan"``.
    """
    # A *canonical* mutable working copy (not ``graph.copy()``): the
    # divisive loop's edge choice breaks float ties through adjacency
    # iteration order, so the working adjacency must be a pure
    # function of the graph's content for frozen and mutable inputs
    # to return byte-identical partitions.
    work = thaw(graph)
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    m_total = graph.edge_count
    best_q = float("-inf")
    best_partition = [set(comp) for comp in work.connected_components()]
    removals = 0
    limit = m_total if max_removals is None else min(max_removals, m_total)
    while work.edge_count > 0 and removals < limit:
        betweenness = edge_betweenness(work)
        edge = max(sorted(betweenness), key=lambda e: betweenness[e])
        work.remove_edge(*edge)
        removals += 1
        partition = [set(comp) for comp in work.connected_components()]
        q = modularity(graph, partition, degrees=degrees, m=m_total)
        if q > best_q:
            best_q = q
            best_partition = partition
        if target_clusters is not None and len(partition) >= target_clusters:
            break
    communities = [Community(graph, members, method="Newman-Girvan")
                   for members in best_partition]
    communities.sort(key=lambda c: (-len(c), sorted(c.vertices)))
    return communities, best_q
