"""Spatial-aware community search (SAC; reference [3] of the paper).

Fang et al. (PVLDB 2017) define the *spatial-aware community*: a
connected subgraph containing the query vertex whose members all have
degree >= k inside it, minimising the radius of a covering circle.
Finding the exact minimum circle over all centres is expensive; the
authors' ``AppInc`` approximation fixes the circle's centre at the
query vertex, which yields a 2-approximation of the optimal radius and
turns the search into a clean binary search over candidate radii
(feasibility is monotone: a bigger disk can only make the k-core
easier).  That is what :func:`spatial_community_search` implements,
alongside the fixed-radius primitive it is built on.
"""

from repro.algorithms.registry import register_cs_algorithm
from repro.core.community import Community
from repro.core.kcore import peel_to_min_degree
from repro.datasets.spatial import euclidean
from repro.util.errors import QueryError


def disk_community(graph, coords, q, k, radius):
    """Community of ``q`` with min degree >= k inside ``disk(q, r)``.

    Returns the vertex set or ``None`` when ``q`` cannot survive.
    """
    centre = coords[q]
    candidates = {v for v in graph.vertices()
                  if euclidean(coords[v], centre) <= radius}
    survivors = peel_to_min_degree(graph, candidates, k, protect=())
    if not survivors or q not in survivors:
        return None
    component = {q}
    stack = [q]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w in survivors and w not in component:
                component.add(w)
                stack.append(w)
    return component


def spatial_community_search(graph, coords, q, k):
    """``AppInc``: the minimum-radius community centred at ``q``.

    Binary-searches the sorted distances from ``q`` to every vertex
    (the only radii at which the candidate set changes).  Returns a
    list with one :class:`Community` whose extra attributes are
    exposed via the returned ``(communities, radius)`` tuple; the
    radius is the distance of the farthest member from ``q``.

    Raises :class:`QueryError` for unknown vertices; returns
    ``([], None)`` when even the whole graph admits no community.
    """
    if q not in graph:
        raise QueryError("query vertex {!r} not in graph".format(q))
    if k < 0:
        raise QueryError("degree constraint k must be >= 0")
    centre = coords[q]
    distances = sorted({round(euclidean(coords[v], centre), 12)
                        for v in graph.vertices()})
    # Feasibility at the largest radius first.
    if disk_community(graph, coords, q, k, distances[-1]) is None:
        return [], None
    lo, hi = 0, len(distances) - 1
    best = None
    while lo <= hi:
        mid = (lo + hi) // 2
        members = disk_community(graph, coords, q, k, distances[mid])
        if members is not None:
            best = (distances[mid], members)
            hi = mid - 1
        else:
            lo = mid + 1
    radius, members = best
    # Report the tight radius: the farthest actual member.
    tight = max(euclidean(coords[v], centre) for v in members)
    community = Community(graph, members, method="SAC",
                          query_vertices=(q,), k=k)
    return [community], tight


def _sac_adapter_factory(coords):
    """Bind a coordinate map into a registry-compatible CS callable."""
    def run(graph, q, k, keywords=None):
        communities, _ = spatial_community_search(graph, coords, q, k)
        return communities
    return run


def register_spatial_algorithm(coords, name="sac", overwrite=True):
    """Register SAC for a given coordinate map (coordinates are data,
    not graph structure, so registration is per-dataset)."""
    return register_cs_algorithm(name, _sac_adapter_factory(coords),
                                 "spatial-aware community search "
                                 "(AppInc, centre at q)",
                                 overwrite=overwrite)
