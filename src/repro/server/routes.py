"""The versioned HTTP API: one declarative route table, two servers.

PRs 1-6 grew the serving surface one ``/api/*`` endpoint at a time,
each dispatched from an if-chain in ``app.py`` with its own ad-hoc
request/response shape.  This module redesigns that surface as a
**versioned API** both front-ends share:

* a declarative :data:`ROUTES` table -- method + path template
  (``/v1/traces/{query_id}``) + handler -- consumed by the sync
  :mod:`~repro.server.app` and the async
  :mod:`~repro.server.async_app` alike, so the two servers cannot
  drift;
* a uniform **response envelope** on every ``/v1`` route::

      {"ok": true,  "data": ...,  "error": null}            # success
      {"ok": false, "data": null,
       "error": {"code": "...", "message": "..."}}          # failure

  plus ``"trace": <query id>`` at the top level when the request was
  traced, and ``"retry": true`` inside ``error`` when the client
  should back off and retry (``engine_saturated``);
* stable machine-readable **error codes** (:data:`ERROR_CODES`)
  instead of mixed 4xx bodies -- ``graph_not_found``,
  ``engine_saturated``, ``deadline_exceeded``, ... -- each with a
  fixed HTTP status, documented in ``docs/API.md`` and validated
  against a live server by ``scripts/check_api_schema.py``;
* a **legacy shim**: every pre-existing ``/api/*`` path stays
  registered against the same handler, rendered in the legacy body
  shape (the bare data document; errors as ``{"error": message}``)
  with a ``Deprecation: true`` header and a ``Link`` to its ``/v1``
  successor, so existing clients keep working while new ones migrate.

Handlers are transport-agnostic: they take ``(state, request)`` --
:class:`~repro.server.state.ServerState` plus a parsed
:class:`Request` -- and return plain data, a :class:`Response`, a
:class:`Raw` byte body, or a :class:`Pending` wrapping an
:class:`~repro.engine.executor.EngineFuture`.  How a ``Pending`` is
awaited is the *only* per-server decision: the sync server blocks its
handler thread (:func:`wait_sync`), the async server polls the future
from the event loop.
"""

import json
import time
from urllib.parse import parse_qs

from repro.engine.tracing import render_prometheus
from repro.server.html import INDEX_HTML
from repro.util.errors import (
    CExplorerError,
    EngineBusyError,
    QueryCancelledError,
    QueryError,
    QueryTimeoutError,
    UnknownAlgorithmError,
    UnknownVertexError,
)
from repro.viz.render import render_svg

API_VERSION = "v1"

# The request-counter bucket for paths matching no route: one constant
# key, so probe traffic (or a client fat-fingering trace ids) cannot
# grow ``request_counts`` without bound.
UNKNOWN_ROUTE = "(unknown)"

# code -> (HTTP status, human description).  The contract surface:
# docs/API.md documents these and scripts/check_api_schema.py checks a
# live server only ever emits codes from this table with the status
# registered here.
ERROR_CODES = {
    "bad_request": (400, "the request was malformed or referenced "
                         "unknown state"),
    "invalid_json": (400, "the request body was not a JSON object"),
    "missing_field": (400, "a required request field was absent"),
    "invalid_parameter": (400, "a request field had the wrong type or "
                               "an out-of-range value"),
    "invalid_query": (400, "the query referenced an unknown vertex or "
                           "had invalid parameters"),
    "unknown_algorithm": (400, "the algorithm name is not registered"),
    "not_found": (404, "no route matches the requested path"),
    "graph_not_found": (404, "no graph is registered under that name"),
    "trace_not_found": (404, "the trace id is not in the ring buffer"),
    "session_not_found": (404, "the session id is unknown"),
    "engine_saturated": (429, "admission control rejected the query; "
                              "back off and retry"),
    "not_ready": (503, "the server is not ready to accept queries; "
                       "retry after a backoff"),
    "cancelled": (503, "the query was cancelled before it ran"),
    "deadline_exceeded": (504, "the query missed the server deadline"),
    "internal": (500, "unexpected server-side failure"),
}


class ApiError(CExplorerError):
    """An error with a stable wire code.

    ``legacy_status`` lets the shim keep a historical status when the
    ``/v1`` contract uses a better one (e.g. ``session_not_found`` is
    404 under ``/v1`` but the legacy ``/api/history`` always answered
    400).
    """

    def __init__(self, code, message, legacy_status=None):
        super().__init__(message)
        if code not in ERROR_CODES:
            raise ValueError("unregistered error code {!r}".format(code))
        self.code = code
        self.status = ERROR_CODES[code][0]
        self.legacy_status = (legacy_status if legacy_status is not None
                              else self.status)


def translate_error(exc):
    """Map any exception to ``(status, code, message, legacy_status,
    retry)`` -- the one place wire semantics are assigned."""
    if isinstance(exc, ApiError):
        return (exc.status, exc.code, str(exc), exc.legacy_status,
                False)
    if isinstance(exc, EngineBusyError):
        return 429, "engine_saturated", str(exc), 429, True
    if isinstance(exc, QueryTimeoutError):
        return 504, "deadline_exceeded", str(exc), 504, False
    if isinstance(exc, QueryCancelledError):
        return 503, "cancelled", str(exc), 503, False
    if isinstance(exc, UnknownAlgorithmError):
        return 400, "unknown_algorithm", str(exc), 400, False
    if isinstance(exc, (QueryError, UnknownVertexError)):
        return 400, "invalid_query", str(exc), 400, False
    if isinstance(exc, CExplorerError):
        return 400, "bad_request", str(exc), 400, False
    return (500, "internal", "internal error: {}".format(exc), 500,
            False)


# ----------------------------------------------------------------------
# request / response shapes
# ----------------------------------------------------------------------

class Request:
    """One parsed HTTP request, transport-independent."""

    __slots__ = ("method", "path", "params", "query", "body")

    def __init__(self, method, path, params=None, query=None, body=None):
        self.method = method
        self.path = path
        self.params = params or {}
        self.query = query or {}
        self.body = body if body is not None else {}

    def int_query(self, key, default):
        """An integer query-string parameter, or ``default`` when
        absent or malformed (the legacy ``?limit=N`` semantics)."""
        values = self.query.get(key)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            return default


class Response:
    """A handler's success payload plus its optional trace id."""

    __slots__ = ("data", "trace")

    def __init__(self, data, trace=None):
        self.data = data
        self.trace = trace


class Raw:
    """A non-JSON response body (the HTML page, Prometheus text)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body, content_type):
        self.body = body
        self.content_type = content_type


class Pending:
    """A handler outcome still executing on the engine.

    ``future`` is the :class:`~repro.engine.executor.EngineFuture` to
    await (each server its own way), ``finish(result)`` builds the
    final data/:class:`Response` once it resolves, ``timeout`` is the
    wait budget (``None`` -> the server's ``query_timeout``).
    """

    __slots__ = ("future", "finish", "timeout")

    def __init__(self, future, finish, timeout=None):
        self.future = future
        self.finish = finish
        self.timeout = timeout


def wait_sync(state, pending):
    """Block on a :class:`Pending` with deadline enforcement: the
    sync server's awaiter.  A timed-out future is cancelled (a queued
    job is dropped without running) and counted."""
    timeout = pending.timeout if pending.timeout is not None \
        else state.query_timeout
    try:
        result = pending.future.result(timeout)
    except QueryTimeoutError:
        pending.future.cancel()
        state.engine.stats.count("timeouts")
        raise
    return pending.finish(result)


# ----------------------------------------------------------------------
# body / parameter helpers
# ----------------------------------------------------------------------

def parse_json_body(raw):
    """Decode a request body into a JSON object (``{}`` when empty)."""
    if not raw:
        return {}
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ApiError("invalid_json",
                       "request body is not valid JSON") from None
    if not isinstance(doc, dict):
        raise ApiError("invalid_json",
                       "request body must be a JSON object")
    return doc


def parse_query_string(path_and_query):
    """Split a request target into ``(path, query dict)``; the path is
    normalised (trailing slash stripped, bare ``/`` preserved)."""
    if "?" in path_and_query:
        path, _, raw = path_and_query.partition("?")
        query = parse_qs(raw)
    else:
        path, query = path_and_query, {}
    return path.rstrip("/") or "/", query


def need(body, key):
    """A required request field (legacy-compatible message)."""
    value = body.get(key)
    if value is None:
        raise ApiError("missing_field",
                       "missing required field {!r}".format(key))
    return value


def as_int(value, name, default=None):
    """Coerce one request field to ``int`` with a typed error."""
    if value is None:
        return default
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ApiError("invalid_parameter",
                       "{!r} must be an integer".format(name)) from None


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------

def _graph_doc(explorer, name):
    graph = explorer.indexes.graph(name)
    return {"name": name, "vertices": graph.vertex_count,
            "edges": graph.edge_count, "shards": explorer.shards(name)}


def h_index_page(state, req):
    return Raw(INDEX_HTML.encode("utf-8"), "text/html; charset=utf-8")


def h_prometheus(state, req):
    text = render_prometheus(state.metrics())
    return Raw(text.encode("utf-8"),
               "text/plain; version=0.0.4; charset=utf-8")


def h_algorithms(state, req):
    return state.explorer.available_algorithms()


def h_graphs(state, req):
    explorer = state.explorer
    return {"graphs": [_graph_doc(explorer, name)
                       for name in explorer.graph_names()]}


def h_graph(state, req):
    explorer = state.explorer
    name = req.params["name"]
    if name not in explorer.graph_names():
        raise ApiError("graph_not_found",
                       "no graph named {!r} uploaded".format(name))
    doc = _graph_doc(explorer, name)
    doc["index"] = explorer.indexes.stats(name)
    return doc


def h_stats(state, req):
    return state.explorer.summary()


def h_metrics(state, req):
    return state.metrics()


def h_health(state, req):
    """Liveness: answers 200 whenever the process can serve at all.

    ``degraded`` flags an open/half-open backend breaker -- the
    server is still alive (queries run on a fallback substrate), but
    an operator dashboard should notice.
    """
    resilience = state.engine.resilience
    return {
        "status": "ok",
        "uptime_seconds": round(time.time() - state.started_at, 3),
        "backend": state.engine.backend,
        "degraded": bool(resilience.snapshot()["degraded"]),
    }


def h_ready(state, req):
    """Readiness: 200 only when a query submitted right now would be
    admitted; 503 ``not_ready`` when the engine is shut down or the
    admission queue is at its ceiling (a load balancer should route
    elsewhere and retry)."""
    engine = state.engine
    if not engine.accepting:
        raise ApiError("not_ready",
                       "engine is not accepting queries "
                       "(queue {}/{})".format(engine.queue_depth,
                                              engine.max_queue))
    return {
        "ready": True,
        "queue_depth": engine.queue_depth,
        "max_queue": engine.max_queue,
    }


def h_traces(state, req):
    tracer = state.engine.tracer
    limit = req.int_query("limit", 50)
    return {
        "traces": [t.summary() for t in tracer.traces(limit=limit)],
        "slow": [t.summary()
                 for t in tracer.traces(limit=limit, slow=True)],
        "stats": tracer.stats(),
    }


def h_trace(state, req):
    query_id = req.params["query_id"]
    trace = state.engine.tracer.get(query_id)
    if trace is None:
        raise ApiError("trace_not_found",
                       "no trace {!r} in the ring buffer"
                       .format(query_id))
    return trace.to_dict()


def h_upload(state, req):
    body = req.body
    path = body.get("path")
    if not path:
        raise ApiError("missing_field", "upload needs a 'path'")
    shards = as_int(body.get("shards", 1), "shards")
    if shards < 1:
        raise ApiError("invalid_parameter", "shards must be >= 1")
    explorer = state.explorer
    try:
        with state.write_lock:
            name = explorer.upload(
                path, name=body.get("name"), shards=shards,
                partitioner=body.get("partitioner", "hash"))
    except OSError as exc:
        # A client-supplied path the server cannot read is the
        # client's error, not an internal one.
        raise ApiError("bad_request",
                       "cannot read graph file: {}".format(exc)) \
            from None
    return _graph_doc(explorer, name)


def h_options(state, req):
    return state.explorer.query_options(need(req.body, "vertex"))


def _search_pending(state, req, finish_data):
    """Submit the request's search and defer ``finish_data``.

    The shared front half of ``search`` and ``display``: parse, submit
    through the state's search path (the batcher when one is enabled,
    the engine's plan/cache path otherwise), and build the query echo
    document.  ``finish_data(communities, query)`` produces the
    route-specific payload once the future resolves; the request-level
    span and trace id are attached here, identically for both.
    """
    body = req.body
    vertex = need(body, "vertex")
    k = as_int(body.get("k", 4), "k")
    algorithm = body.get("algorithm", "acq")
    keywords = body.get("keywords")
    started = time.time()
    start = time.perf_counter()
    future = state.submit_search(algorithm, vertex, k=k,
                                 keywords=keywords)
    query = {"vertex": vertex, "k": k, "algorithm": algorithm,
             "keywords": keywords}

    def finish(communities):
        trace = future.trace
        if trace is not None:
            # End-to-end as the handler saw it: a top-level sibling
            # of the engine's own spans, so queue + execute + the
            # request envelope stay separable in the waterfall.
            trace.add_span("request", time.perf_counter() - start,
                           start=started, parent=None,
                           tags={"path": req.path})
            query["trace"] = trace.query_id
        return Response(finish_data(communities, query),
                        trace=query.get("trace"))

    return Pending(future, finish)


def h_search(state, req):
    body = req.body

    def finish_data(communities, query):
        session_id = body.get("session")
        if session_id:
            session = state.sessions.get(str(session_id))
        else:
            session = state.sessions.create()
        session.record(query["algorithm"], str(query["vertex"]),
                       query["k"], len(communities),
                       keywords=query["keywords"])
        return {
            "session": session.session_id,
            "query": query,
            "communities": [c.to_dict() for c in communities],
        }

    return _search_pending(state, req, finish_data)


def h_display(state, req):
    body = req.body

    def finish_data(communities, query):
        idx = as_int(body.get("community", 0), "community")
        if not 0 <= idx < len(communities):
            raise ApiError("invalid_parameter",
                           "community index {} out of range (have {})"
                           .format(idx, len(communities)))
        community = communities[idx]
        layout = state.explorer.display(
            community, fmt="positions",
            layout=body.get("layout", "ego"))
        svg = render_svg(community, layout=layout)
        from repro.analysis.themes import theme_of
        return {
            "query": query,
            "community": community.to_dict(),
            "theme": theme_of(community),
            "positions": {str(v): [round(x, 4), round(y, 4)]
                          for v, (x, y) in layout.items()},
            "svg": svg,
        }

    return _search_pending(state, req, finish_data)


def h_detect(state, req):
    body = req.body
    algorithm = body.get("algorithm", "codicil")
    params = body.get("params") or {}
    future = state.engine.submit(state.explorer.detect, algorithm,
                                 op="detect",
                                 timeout=state.query_timeout, **params)

    def finish(communities):
        return {
            "algorithm": algorithm,
            "count": len(communities),
            "communities": [c.to_dict() for c in communities[:50]],
        }

    return Pending(future, finish)


def h_profile(state, req):
    return state.explorer.profile(need(req.body, "vertex")).to_dict()


def h_compare(state, req):
    body = req.body
    vertex = need(body, "vertex")
    k = as_int(body.get("k", 4), "k")
    methods = body.get("methods") or ("global", "local", "codicil",
                                     "acq")
    future = state.engine.submit(state.explorer.compare, vertex, k=k,
                                 methods=tuple(methods),
                                 keywords=body.get("keywords"),
                                 op="compare",
                                 timeout=state.query_timeout)

    def finish(report):
        doc = report.to_dict()
        if body.get("charts", True):
            from repro.viz.charts import render_quality_charts
            doc["charts"] = render_quality_charts(report)
        return doc

    return Pending(future, finish)


def h_suggest(state, req):
    body = req.body
    prefix = str(body.get("prefix", ""))
    limit = as_int(body.get("limit", 10), "limit")
    return {
        "prefix": prefix,
        "names": state.explorer.suggest_names(prefix, limit=limit),
    }


def h_history(state, req):
    body = req.body
    session_id = str(need(body, "session"))
    session = state.sessions.get(session_id, create_missing=False)
    if session is None:
        # /v1 reports a proper 404; the legacy /api/history contract
        # has always answered 400.
        raise ApiError("session_not_found",
                       "unknown session {!r}".format(session_id),
                       legacy_status=400)
    return {
        "session": session_id,
        "history": session.history(limit=body.get("limit")),
    }


# ----------------------------------------------------------------------
# the route table
# ----------------------------------------------------------------------

class Route:
    """One registered route: a method + path template + handler.

    ``template`` segments of the form ``{name}`` capture one path
    segment into ``request.params``.  The template doubles as the
    request-counter key, so parameterised paths aggregate under one
    stable bucket instead of one bucket per id.  ``legacy`` marks an
    ``/api/*`` shim registration (legacy body shape + ``Deprecation``
    header); ``successor`` is its ``/v1`` template, advertised in the
    ``Link`` header.  ``blocking`` marks handlers that may do real
    work on the calling thread (file I/O, lazy index/summary builds,
    layout rendering) -- the async server runs those in its executor
    instead of on the event loop.
    """

    __slots__ = ("method", "template", "handler", "segments", "legacy",
                 "successor", "blocking", "raw")

    def __init__(self, method, template, handler, legacy=False,
                 successor=None, blocking=False, raw=False):
        self.method = method
        self.template = template
        self.handler = handler
        self.segments = tuple(template.strip("/").split("/")) \
            if template != "/" else ()
        self.legacy = legacy
        self.successor = successor
        self.blocking = blocking
        self.raw = raw

    def match(self, method, segments):
        """``request.params`` when this route matches, else ``None``."""
        if method != self.method or len(segments) != len(self.segments):
            return None
        params = {}
        for pattern, value in zip(self.segments, segments):
            if pattern.startswith("{") and pattern.endswith("}"):
                params[pattern[1:-1]] = value
            elif pattern != value:
                return None
        return params

    def headers(self):
        """Per-route response headers (the deprecation contract)."""
        if not self.legacy:
            return []
        headers = [("Deprecation", "true")]
        if self.successor:
            headers.append(
                ("Link", '<{}>; rel="successor-version"'
                 .format(self.successor)))
        return headers


# (method, /v1 template, legacy /api template or None, handler, opts)
_SPECS = (
    ("GET", "/v1/algorithms", "/api/algorithms", h_algorithms, {}),
    ("GET", "/v1/graphs", "/api/graphs", h_graphs, {}),
    ("GET", "/v1/graphs/{name}", None, h_graph, {}),
    ("GET", "/v1/stats", "/api/stats", h_stats, {"blocking": True}),
    ("GET", "/v1/metrics", "/api/metrics", h_metrics, {}),
    ("GET", "/v1/health", None, h_health, {}),
    ("GET", "/v1/ready", None, h_ready, {}),
    ("GET", "/v1/traces", "/api/traces", h_traces, {}),
    ("GET", "/v1/traces/{query_id}", "/api/traces/{query_id}",
     h_trace, {}),
    ("POST", "/v1/upload", "/api/upload", h_upload,
     {"blocking": True}),
    ("POST", "/v1/options", "/api/options", h_options,
     {"blocking": True}),
    ("POST", "/v1/search", "/api/search", h_search, {}),
    ("POST", "/v1/detect", "/api/detect", h_detect, {}),
    ("POST", "/v1/display", "/api/display", h_display,
     {"blocking": True}),
    ("POST", "/v1/profile", "/api/profile", h_profile, {}),
    ("POST", "/v1/compare", "/api/compare", h_compare,
     {"blocking": True}),
    ("POST", "/v1/suggest", "/api/suggest", h_suggest, {}),
    ("POST", "/v1/history", "/api/history", h_history, {}),
)


def _build_routes():
    routes = [
        Route("GET", "/", h_index_page, raw=True),
        Route("GET", "/metrics", h_prometheus, raw=True),
    ]
    for method, v1, legacy, handler, opts in _SPECS:
        routes.append(Route(method, v1, handler, **opts))
        if legacy is not None:
            routes.append(Route(method, legacy, handler, legacy=True,
                                successor=v1, **opts))
    return tuple(routes)


ROUTES = _build_routes()


def v1_routes():
    """The ``/v1`` contract surface (what docs/API.md documents)."""
    return [r for r in ROUTES if r.template.startswith("/v1/")]


def match_route(method, path):
    """``(route, params)`` for the first matching route, or ``None``."""
    segments = tuple(path.strip("/").split("/")) if path != "/" else ()
    for route in ROUTES:
        params = route.match(method, segments)
        if params is not None:
            return route, params
    return None


# ----------------------------------------------------------------------
# response rendering
# ----------------------------------------------------------------------

def render_success(route, response):
    """The success body for a route: envelope on ``/v1``, the bare
    data document on the legacy shim."""
    if route.legacy:
        return response.data
    doc = {"ok": True, "data": response.data, "error": None}
    if response.trace is not None:
        doc["trace"] = response.trace
    return doc


def render_error(exc, legacy):
    """``(status, body)`` for any exception, in the requested shape."""
    status, code, message, legacy_status, retry = translate_error(exc)
    if legacy:
        body = {"error": message}
        if retry:
            body["retry"] = True
        return legacy_status, body
    error = {"code": code, "message": message}
    if retry:
        error["retry"] = True
    return status, {"ok": False, "data": None, "error": error}


def not_found_error(path):
    """The unmatched-path error (legacy-compatible message)."""
    return ApiError("not_found", "no such endpoint: " + path)
