"""The browser-server substrate (Figure 3).

The original C-Explorer runs as JSP pages on Tomcat; here the Server
side is a pure-stdlib threaded HTTP server exposing the same
operations as a JSON API (:mod:`repro.server.app`), and the Browser
side is a single self-contained HTML page (:mod:`repro.server.html`)
that calls it.  No third-party web framework is involved, so the demo
runs anywhere Python does.
"""

from repro.server.app import CExplorerServer, make_server

__all__ = ["CExplorerServer", "make_server"]
