"""The asyncio front-end: concurrent serving without thread-per-request.

The sync server (:mod:`repro.server.app`) parks one handler thread per
in-flight query -- the thread does nothing but block on an
:class:`~repro.engine.executor.EngineFuture`, yet it costs a stack,
scheduler pressure, and GIL churn, which is the opposite of the
ROADMAP's "millions of users" north star.  This module serves the
**same route table** (:mod:`repro.server.routes`) over
``asyncio.start_server`` (stdlib only, no new dependencies):

* requests are accepted and parsed on the event loop -- thousands of
  idle or waiting connections cost one task each, not one thread each;
* handlers returning :class:`~repro.server.routes.Pending` are awaited
  through a small **poll/wakeup bridge** (:func:`await_future`): the
  engine's future is engine-owned and thread-resolved, so the loop
  polls ``future.done()`` on an adaptive backoff (sub-millisecond at
  first -- warm results wake up fast -- decaying to a few milliseconds
  for long-running queries).  The worker pool and executor stay
  exactly as they are;
* routes marked ``blocking`` (upload's file I/O, lazily built
  summaries, SVG rendering) run in the loop's default thread-pool
  executor so the accept path never stalls behind them;
* **cross-query batching is on by default** (``batch_window``): the
  admission window in :mod:`repro.engine.batching` coalesces the
  concurrent searches this front-end is built to accept, so N
  overlapping queries cost one cached payload round-trip and shared
  worker-side decompositions instead of N independent executions.

The HTTP implementation is deliberately minimal -- HTTP/1.1,
``Content-Length`` bodies, keep-alive -- just enough for the JSON API
and the bench/CI clients; it is not a general-purpose web server.

Two run modes: :meth:`AsyncCExplorerServer.serve_forever` blocks the
calling thread (the ``repro serve --server async`` path), and
:meth:`~AsyncCExplorerServer.start_background` runs the loop in a
daemon thread and returns once the socket is bound (tests and
benchmarks drive it with plain blocking HTTP clients).
"""

import asyncio
import json
import threading

from repro.explorer.cexplorer import CExplorer
from repro.server.routes import (
    Pending,
    Raw,
    Request,
    Response,
    UNKNOWN_ROUTE,
    match_route,
    not_found_error,
    parse_json_body,
    parse_query_string,
    render_error,
    render_success,
)
from repro.server.state import ServerState
from repro.util.errors import QueryTimeoutError

# The poll/wakeup bridge's backoff: start fine-grained so cache hits
# and batched answers are picked up almost immediately, decay toward
# the ceiling so a long-running query costs a handful of wakeups per
# second, not thousands.
_POLL_INITIAL = 0.0005
_POLL_CEILING = 0.01
_POLL_GROWTH = 1.5

# Default admission window for the batcher this front-end enables:
# long enough to coalesce a concurrent burst, short enough to be
# invisible next to any real query.
DEFAULT_BATCH_WINDOW = 0.005

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

_MAX_BODY_BYTES = 64 * 1024 * 1024


async def await_future(future, timeout):
    """Await an :class:`~repro.engine.executor.EngineFuture` from the
    event loop: the poll/wakeup bridge.

    The engine's future is resolved by worker threads and offers no
    loop callback, so the bridge polls ``future.done()`` with an
    adaptive sleep.  On timeout the future is cancelled (a queued job
    is dropped without running) and
    :class:`~repro.util.errors.QueryTimeoutError` is raised --
    identical semantics to the sync server's blocking wait.
    """
    loop = asyncio.get_running_loop()
    deadline = (loop.time() + timeout) if timeout is not None else None
    delay = _POLL_INITIAL
    while not future.done():
        if deadline is not None and loop.time() >= deadline:
            future.cancel()
            raise QueryTimeoutError(
                "query did not finish within {:.3f}s".format(timeout))
        await asyncio.sleep(delay)
        delay = min(delay * _POLL_GROWTH, _POLL_CEILING)
    # result(0) never blocks on a done future; it re-raises the job's
    # exception (or QueryCancelledError) exactly like the sync path.
    return future.result(0)


class AsyncCExplorerServer:
    """The asyncio serving front-end around one
    :class:`~repro.server.state.ServerState`."""

    def __init__(self, explorer=None, host="127.0.0.1", port=8080,
                 query_timeout=30.0,
                 batch_window=DEFAULT_BATCH_WINDOW):
        if explorer is None:
            explorer = CExplorer()
        self.host = host
        self.port = port
        self.state = ServerState(explorer, query_timeout=query_timeout,
                                 batch_window=batch_window)
        self.server_address = (host, port)
        self._loop = None
        self._server = None
        self._thread = None
        self._started = threading.Event()
        self._startup_error = None

    # -- conveniences mirroring the sync server's embedding surface ----
    @property
    def explorer(self):
        return self.state.explorer

    @property
    def engine(self):
        return self.state.engine

    def metrics(self):
        return self.state.metrics()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer):
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown tore the connection down
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _read_head(self, reader):
        """``(method, target, headers)`` for the next request, or
        ``None`` at a clean end-of-stream between requests."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line or not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _handle_one(self, reader, writer):
        """Serve one request on an open connection; returns whether to
        keep the connection alive."""
        head = await self._read_head(reader)
        if head is None:
            return False
        method, target, headers = head
        length = int(headers.get("content-length") or 0)
        if length > _MAX_BODY_BYTES:
            await self._write_response(
                writer, 413, {"error": "request body too large"}, [],
                close=True)
            return False
        raw_body = await reader.readexactly(length) if length else b""
        close = headers.get("connection", "").lower() == "close"
        status, body, content_type, extra = await self._dispatch(
            method, target, raw_body)
        await self._write_response(writer, status, body, extra,
                                   content_type=content_type,
                                   close=close)
        return not close

    async def _write_response(self, writer, status, body, headers,
                              content_type="application/json",
                              close=False):
        if not isinstance(body, bytes):
            body = json.dumps(body).encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        lines = [
            "HTTP/1.1 {} {}".format(status, reason),
            "Content-Type: {}".format(content_type),
            "Content-Length: {}".format(len(body)),
            "Connection: {}".format("close" if close else "keep-alive"),
        ]
        lines.extend("{}: {}".format(name, value)
                     for name, value in headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # dispatch (the async twin of app._Handler._dispatch)
    # ------------------------------------------------------------------
    async def _dispatch(self, method, target, raw_body):
        """``(status, body, content_type, extra headers)`` for one
        parsed request."""
        state = self.state
        path, query = parse_query_string(target)
        matched = match_route(method, path)
        if matched is None:
            state.count_request(UNKNOWN_ROUTE)
            state.count_error()
            legacy = not path.startswith("/v1")
            status, body = render_error(not_found_error(path), legacy)
            return status, body, "application/json", []
        route, params = matched
        state.count_request(route.template)
        loop = asyncio.get_running_loop()
        try:
            body = parse_json_body(raw_body) if method == "POST" else {}
            request = Request(method, path, params=params, query=query,
                              body=body)
            if route.blocking:
                # Real work on the handler path (file I/O, lazy
                # summary/index builds, SVG rendering): keep it off
                # the event loop.
                outcome = await loop.run_in_executor(
                    None, route.handler, state, request)
            else:
                outcome = route.handler(state, request)
            if isinstance(outcome, Pending):
                timeout = (outcome.timeout if outcome.timeout is not None
                           else state.query_timeout)
                try:
                    result = await await_future(outcome.future, timeout)
                except QueryTimeoutError:
                    state.engine.stats.count("timeouts")
                    raise
                if route.blocking:
                    outcome = await loop.run_in_executor(
                        None, outcome.finish, result)
                else:
                    outcome = outcome.finish(result)
            if isinstance(outcome, Raw):
                return (200, outcome.body, outcome.content_type,
                        route.headers())
            response = (outcome if isinstance(outcome, Response)
                        else Response(outcome))
            return (200, render_success(route, response),
                    "application/json", route.headers())
        except Exception as exc:  # never kill the connection
            state.count_error()
            status, doc = render_error(exc, route.legacy)
            return status, doc, "application/json", route.headers()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _start(self):
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port)
        self.server_address = self._server.sockets[0].getsockname()[:2]

    async def serve(self):
        """Bind and serve until cancelled (the embeddable coroutine)."""
        await self._start()
        self._started.set()
        async with self._server:
            await self._server.serve_forever()

    def serve_forever(self):
        """Blocking run on a fresh event loop (the CLI path)."""
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self.serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self._teardown_loop()

    def start_background(self, timeout=10.0):
        """Run the server on a daemon thread; returns once the socket
        is bound (tests/benchmarks then talk plain blocking HTTP to
        ``server_address``)."""
        def run():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.serve())
            except asyncio.CancelledError:  # pragma: no cover
                pass
            except Exception as exc:
                self._startup_error = exc
                self._started.set()
            finally:
                self._teardown_loop()

        self._thread = threading.Thread(target=run, name="async-server",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("async server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def shutdown(self):
        """Stop serving (threadsafe); joins the background thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._stop_on_loop)
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=10.0)
        self.state.close()

    def _stop_on_loop(self):
        if self._server is not None:
            self._server.close()
        for task in asyncio.all_tasks(self._loop):
            task.cancel()

    def _teardown_loop(self):
        loop, self._loop = self._loop, None
        if loop is None:
            return
        try:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
        except RuntimeError:  # pragma: no cover - loop already closed
            pass
        finally:
            loop.close()


def make_async_server(explorer=None, host="127.0.0.1", port=8080,
                      query_timeout=30.0,
                      batch_window=DEFAULT_BATCH_WINDOW):
    """Create (not start) an :class:`AsyncCExplorerServer`.

    ``port=0`` picks a free port; read it back from
    ``server.server_address`` after :meth:`~AsyncCExplorerServer.
    start_background` (or :meth:`~AsyncCExplorerServer.serve`) binds.
    ``batch_window=None`` disables cross-query batching.
    """
    if explorer is None:
        explorer = CExplorer()
    return AsyncCExplorerServer(explorer, host=host, port=port,
                                query_timeout=query_timeout,
                                batch_window=batch_window)
