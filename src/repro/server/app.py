"""The synchronous server: the ``/v1`` API over ``ThreadingHTTPServer``.

The HTTP surface is defined once, declaratively, in
:mod:`repro.server.routes` and shared with the asyncio front-end
(:mod:`repro.server.async_app`); this module only binds it to the
stdlib threading transport.  Per route (all JSON; POST bodies are
JSON documents):

==============================  =======================================
``GET  /``                      the HTML client page
``GET  /metrics``               Prometheus text exposition (unversioned)
``GET  /v1/algorithms``         registered CS/CD algorithm names
``GET  /v1/graphs``             uploaded graph names + sizes
``GET  /v1/graphs/{name}``      one graph + its index state (404
                                ``graph_not_found`` otherwise)
``POST /v1/upload``             ``{"path", "name", "shards",
                                "partitioner"}`` -> load a graph file
``POST /v1/options``            ``{"vertex"}`` -> degree choices + keywords
``POST /v1/search``             ``{"vertex", "k", "algorithm", "keywords"}``
``POST /v1/detect``             ``{"algorithm", "params"}``
``POST /v1/display``            search params + ``"community"`` index
``POST /v1/profile``            ``{"vertex"}`` -> Figure 2 profile card
``POST /v1/compare``            ``{"vertex", "k", "methods"}`` -> Figure 6
``POST /v1/suggest``            ``{"prefix", "limit"}`` -> autocompletion
``GET  /v1/stats``              whole-graph statistics
``POST /v1/history``            ``{"session": id}`` -> the query trail
``GET  /v1/metrics``            operational metrics (JSON)
``GET  /v1/traces``             recent query traces (``?limit=N``)
``GET  /v1/traces/{query_id}``  one full trace: that query's span tree
==============================  =======================================

Every ``/v1`` response wears the uniform envelope ``{"ok", "data",
"error"}`` (plus ``"trace"`` when the request was traced); errors
carry stable machine-readable codes (``engine_saturated``,
``deadline_exceeded``, ``graph_not_found``, ...) -- see
``docs/API.md`` for the full contract, which
``scripts/check_api_schema.py`` validates against a live server in CI.

**Legacy shim:** every pre-``/v1`` ``/api/*`` path keeps working --
same handlers, the historical bare-document body shape, plus a
``Deprecation: true`` header and a ``Link`` to the ``/v1`` successor.
New clients should use ``/v1``.

The server is threaded, but algorithm work does not run on handler
threads: searches, detections and comparisons are submitted to the
explorer's :class:`~repro.engine.executor.QueryEngine` -- a bounded
worker pool with an admission-controlled queue.  A full queue rejects
immediately with **429** ``engine_saturated``; a query exceeding the
server deadline returns **504** ``deadline_exceeded``.  Cache hits
short-circuit the queue entirely.  ``make_server(...,
batch_window=...)`` additionally coalesces concurrent searches
through the cross-query :class:`~repro.engine.batching.QueryBatcher`
(the asyncio front-end enables this by default).
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.explorer.cexplorer import CExplorer
from repro.server.routes import (
    Pending,
    Raw,
    Request,
    Response,
    UNKNOWN_ROUTE,
    match_route,
    not_found_error,
    parse_json_body,
    parse_query_string,
    render_error,
    render_success,
    wait_sync,
)
from repro.server.state import ServerState


class CExplorerServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a shared :class:`ServerState`.

    The state attributes (``explorer``, ``engine``, ``sessions``,
    ``request_counts``, ...) stay addressable on the server object --
    the embedding API this class has always had.
    """

    daemon_threads = True

    def __init__(self, address, explorer, query_timeout=30.0,
                 batch_window=None):
        self.state = ServerState(explorer, query_timeout=query_timeout,
                                 batch_window=batch_window)
        super().__init__(address, _Handler)

    # -- the historical embedding surface, delegated to the state ------
    @property
    def explorer(self):
        return self.state.explorer

    @property
    def engine(self):
        return self.state.engine

    @property
    def query_timeout(self):
        return self.state.query_timeout

    @property
    def sessions(self):
        return self.state.sessions

    @property
    def started_at(self):
        return self.state.started_at

    @property
    def request_counts(self):
        return self.state.request_counts

    @property
    def error_count(self):
        return self.state.error_count

    @property
    def write_lock(self):
        return self.state.write_lock

    def metrics(self):
        """The ``/v1/metrics`` document (see
        :meth:`ServerState.metrics`)."""
        return self.state.metrics()

    def submit(self, fn, *args, **kwargs):
        """Run ``fn`` on the engine's worker pool, blocking the
        calling thread (cheap: it only waits) until the result or the
        server deadline."""
        kwargs.setdefault("timeout", self.state.query_timeout)
        return self.state.engine.execute(fn, *args, **kwargs)

    def server_close(self):
        self.state.close()
        super().server_close()


def make_server(explorer=None, host="127.0.0.1", port=8080,
                query_timeout=30.0, batch_window=None):
    """Create (not start) a :class:`CExplorerServer`.

    ``port=0`` picks a free port; read it back from
    ``server.server_address``.  Worker-pool sizing belongs to the
    explorer (``CExplorer(workers=..., max_queue=...)``).
    ``batch_window`` (seconds) enables cross-query batching for
    ``/v1/search`` / ``/v1/display``: concurrent queries arriving
    within the window are deduplicated and QIG-grouped before hitting
    the engine (``None`` = off, the historical behaviour).
    """
    if explorer is None:
        explorer = CExplorer()
    return CExplorerServer((host, port), explorer,
                           query_timeout=query_timeout,
                           batch_window=batch_window)


class _Handler(BaseHTTPRequestHandler):
    """Binds the shared route table to the threading transport."""

    # Silence per-request logging; the demo prints its own status line.
    def log_message(self, fmt, *args):
        pass

    def _send(self, status, body, content_type="application/json",
              headers=()):
        body = (body if isinstance(body, bytes)
                else json.dumps(body).encode("utf-8"))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method):
        state = self.server.state
        path, query = parse_query_string(self.path)
        matched = match_route(method, path)
        if matched is None:
            state.count_request(UNKNOWN_ROUTE)
            state.count_error()
            legacy = not path.startswith("/v1")
            status, body = render_error(not_found_error(path), legacy)
            self._send(status, body)
            return
        route, params = matched
        state.count_request(route.template)
        try:
            body = {}
            if method == "POST":
                length = int(self.headers.get("Content-Length") or 0)
                body = parse_json_body(self.rfile.read(length)
                                       if length else b"")
            request = Request(method, path, params=params, query=query,
                              body=body)
            outcome = route.handler(state, request)
            if isinstance(outcome, Pending):
                outcome = wait_sync(state, outcome)
            if isinstance(outcome, Raw):
                self._send(200, outcome.body,
                           content_type=outcome.content_type,
                           headers=route.headers())
                return
            response = (outcome if isinstance(outcome, Response)
                        else Response(outcome))
            self._send(200, render_success(route, response),
                       headers=route.headers())
        except Exception as exc:  # defensive: never kill the connection
            state.count_error()
            status, doc = render_error(exc, route.legacy)
            self._send(status, doc, headers=route.headers())

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")
