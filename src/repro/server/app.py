"""The server side: JSON-over-HTTP endpoints around a CExplorer.

Endpoints (all JSON; POST bodies are JSON documents):

========================  ====================================================
``GET  /``                the HTML client page
``GET  /api/algorithms``  registered CS/CD algorithm names
``GET  /api/graphs``      uploaded graph names + sizes
``POST /api/upload``      ``{"path", "name", "shards", "partitioner"}``
                          -> load a graph file (``shards > 1``
                          registers it partitioned for fan-out)
``POST /api/options``     ``{"vertex": ...}`` -> degree choices + keywords
``POST /api/search``      ``{"vertex", "k", "algorithm", "keywords"}``
``POST /api/detect``      ``{"algorithm", "params"}``
``POST /api/display``     search params + ``"community"`` index -> SVG+layout
``POST /api/profile``     ``{"vertex": ...}`` -> Figure 2 profile card
``POST /api/compare``     ``{"vertex", "k", "methods"}`` -> Figure 6 report
``POST /api/suggest``     ``{"prefix", "limit"}`` -> name autocompletion
``GET  /api/stats``       whole-graph statistics (the dataset panel)
``POST /api/history``     ``{"session": id}`` -> that session's query trail
``GET  /api/metrics``     operational metrics (requests, cache, uptime)
``GET  /metrics``         the same metrics as Prometheus text exposition
``GET  /api/traces``      recent query traces (``?limit=N``) + slow log
``GET  /api/traces/<id>`` one full trace: the span tree of that query
========================  ====================================================

``/api/metrics`` is the JSON metrics document (machine-readable but
repro-shaped); ``/metrics`` renders the same numbers -- request
counters, engine event counters, the per-operation log-scale latency
histograms, cache and trace counters -- in the Prometheus text
exposition format (version 0.0.4) so a standard scraper can ingest
them without an adapter.  Every query handled by ``/api/search`` (and
``/api/display``) is traced end to end; the response carries the
trace id under ``"trace"`` and ``GET /api/traces/<id>`` returns the
span waterfall (planning, queue wait, cache probes, payload
freeze/pickle, per-shard worker execution with worker-side sub-spans,
merge, cache store).

``/api/metrics`` embeds the full engine snapshot: the active execution
``backend`` (``thread`` or ``process``), per-shard fan-out latency and
skew, and -- under the process backend -- ``snapshot_build`` (frozen
CSR payload construction), ``shard_ipc`` and ``index_build_ipc``
latency ops, so payload shipping overhead is observable next to the
compute it buys.  Cache evictions are broken down by reason
(``core-cascade`` / ``truss-cascade`` / ``evict-all``), and
``truss_invalidations`` / ``truss_cascade_size`` summarise the truss
maintenance subsystem.

``/api/search`` accepts an optional ``"session"`` id; queries are
recorded into that exploration session and the response echoes the id
(a fresh one is minted when absent), so the browser can show a history
panel.

Errors are reported as ``{"error": message}`` with status 400, the way
the original UI surfaces bad queries.  The server is threaded, but
algorithm work no longer runs on handler threads: searches, detections
and comparisons are submitted to the explorer's
:class:`~repro.engine.executor.QueryEngine` -- a bounded worker pool
with an admission-controlled queue.  When the queue is full the
request is rejected immediately with **429**; a query that exceeds the
server's deadline returns **504**.  Cache hits short-circuit the queue
entirely.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.engine.tracing import render_prometheus
from repro.explorer.cexplorer import CExplorer
from repro.explorer.sessions import SessionStore
from repro.server.html import INDEX_HTML
from repro.util.errors import (
    CExplorerError,
    EngineBusyError,
    QueryTimeoutError,
)
from repro.viz.render import render_svg


class CExplorerServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a CExplorer and its engine."""

    daemon_threads = True

    def __init__(self, address, explorer, query_timeout=30.0):
        self.explorer = explorer
        self.engine = explorer.engine
        self.query_timeout = query_timeout
        self.sessions = SessionStore()
        self.started_at = time.time()
        self.request_counts = {}
        self.error_count = 0
        self.metrics_lock = threading.Lock()
        # The upload endpoint mutates the explorer; serialise writers.
        self.write_lock = threading.Lock()
        super().__init__(address, _Handler)

    def count_request(self, path, is_error=False):
        with self.metrics_lock:
            self.request_counts[path] = self.request_counts.get(path,
                                                                0) + 1
            if is_error:
                self.error_count += 1

    def submit(self, fn, *args, **kwargs):
        """Run ``fn`` on the engine's worker pool, blocking the
        handler thread (cheap: it only waits) until the result or the
        server deadline."""
        kwargs.setdefault("timeout", self.query_timeout)
        return self.engine.execute(fn, *args, **kwargs)

    def metrics(self):
        """The ``/api/metrics`` document.

        ``cache.invalidations_by_reason`` breaks evictions down into
        ``core-cascade`` / ``truss-cascade`` (footprint-scoped,
        reported by the attached maintainers) vs ``evict-all`` (the
        conservative fallback) -- with both maintainers attached, the
        evict-all counter stays at zero for maintenance updates.
        ``truss_invalidations`` and ``truss_cascade_size`` summarise
        the truss maintenance subsystem.
        """
        with self.metrics_lock:
            cache = self.explorer.cache.stats()
            cache["by_graph"] = self.explorer.cache.entries_by_graph()
            truss = self.explorer.indexes.truss_stats()
            return {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "requests": dict(self.request_counts),
                "errors": self.error_count,
                "sessions": len(self.sessions),
                "cache": cache,
                "truss_invalidations":
                    cache["invalidations_by_reason"]["truss-cascade"],
                "truss_cascade_size": {
                    "last": truss["last_cascade_size"],
                    "max": truss["max_cascade_size"],
                    "total": truss["changed_edges"],
                    "updates": truss["updates"],
                },
                # Includes per-shard index versions, partition
                # balance/cut, and fan-out latency/skew for sharded
                # graphs (see EngineStats.observe_fanout).
                "engine": self.engine.snapshot(),
            }


def make_server(explorer=None, host="127.0.0.1", port=8080,
                query_timeout=30.0):
    """Create (not start) a :class:`CExplorerServer`.

    ``port=0`` picks a free port; read it back from
    ``server.server_address``.  Worker-pool sizing belongs to the
    explorer (``CExplorer(workers=..., max_queue=...)``).
    """
    if explorer is None:
        explorer = CExplorer()
    return CExplorerServer((host, port), explorer,
                           query_timeout=query_timeout)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to CExplorer calls; JSON in, JSON out."""

    # Silence per-request logging; the demo prints its own status line.
    def log_message(self, fmt, *args):
        pass

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send(self, status, payload, content_type="application/json"):
        body = (payload if isinstance(payload, bytes)
                else json.dumps(payload).encode("utf-8"))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query_int(self, key, default):
        """An integer query-string parameter (``?key=N``), or
        ``default`` when absent or malformed."""
        if "?" not in self.path:
            return default
        values = parse_qs(self.path.split("?", 1)[1]).get(key)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            return default

    def _json_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise CExplorerError("request body is not valid JSON")
        if not isinstance(doc, dict):
            raise CExplorerError("request body must be a JSON object")
        return doc

    def _dispatch(self, method):
        explorer = self.server.explorer
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        self.server.count_request(path)
        try:
            if method == "GET" and path == "/api/metrics":
                self._send(200, self.server.metrics())
                return
            if method == "GET" and path == "/metrics":
                text = render_prometheus(self.server.metrics())
                self._send(200, text.encode("utf-8"),
                           content_type="text/plain; version=0.0.4; "
                                        "charset=utf-8")
                return
            if method == "GET" and path == "/api/traces":
                tracer = self.server.engine.tracer
                limit = self._query_int("limit", 50)
                self._send(200, {
                    "traces": [t.summary()
                               for t in tracer.traces(limit=limit)],
                    "slow": [t.summary()
                             for t in tracer.traces(limit=limit,
                                                    slow=True)],
                    "stats": tracer.stats(),
                })
                return
            if method == "GET" and path.startswith("/api/traces/"):
                query_id = path.rsplit("/", 1)[1]
                trace = self.server.engine.tracer.get(query_id)
                if trace is None:
                    self._send(404, {"error": "no trace {!r} in the "
                                     "ring buffer".format(query_id)})
                else:
                    self._send(200, trace.to_dict())
                return
            if method == "GET" and path == "/":
                self._send(200, INDEX_HTML.encode("utf-8"),
                           content_type="text/html; charset=utf-8")
                return
            if method == "GET" and path == "/api/algorithms":
                self._send(200, explorer.available_algorithms())
                return
            if method == "GET" and path == "/api/stats":
                self._send(200, explorer.summary())
                return
            if method == "GET" and path == "/api/graphs":
                self._send(200, {
                    "graphs": [
                        {"name": name,
                         "vertices": explorer._graphs[name]
                         .graph.vertex_count,
                         "edges": explorer._graphs[name].graph.edge_count,
                         "shards": explorer.shards(name)}
                        for name in explorer.graph_names()
                    ]})
                return
            if method == "POST":
                handler = {
                    "/api/upload": self._api_upload,
                    "/api/options": self._api_options,
                    "/api/search": self._api_search,
                    "/api/detect": self._api_detect,
                    "/api/display": self._api_display,
                    "/api/profile": self._api_profile,
                    "/api/compare": self._api_compare,
                    "/api/suggest": self._api_suggest,
                    "/api/history": self._api_history,
                }.get(path)
                if handler is not None:
                    handler(explorer, self._json_body())
                    return
            self._send(404, {"error": "no such endpoint: " + path})
        except EngineBusyError as exc:
            # Admission control: shed load fast instead of queueing.
            self.server.count_request(path, is_error=True)
            self._send(429, {"error": str(exc), "retry": True})
        except QueryTimeoutError as exc:
            self.server.count_request(path, is_error=True)
            self._send(504, {"error": str(exc)})
        except CExplorerError as exc:
            self.server.count_request(path, is_error=True)
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # defensive: never kill the connection
            self.server.count_request(path, is_error=True)
            self._send(500, {"error": "internal error: {}".format(exc)})

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _api_upload(self, explorer, body):
        path = body.get("path")
        if not path:
            raise CExplorerError("upload needs a 'path'")
        try:
            shards = int(body.get("shards", 1))
        except (TypeError, ValueError):
            raise CExplorerError(
                "'shards' must be an integer") from None
        if shards < 1:
            raise CExplorerError("shards must be >= 1")
        with self.server.write_lock:
            name = explorer.upload(
                path, name=body.get("name"), shards=shards,
                partitioner=body.get("partitioner", "hash"))
        graph = explorer.graph
        self._send(200, {"name": name, "vertices": graph.vertex_count,
                         "edges": graph.edge_count,
                         "shards": explorer.shards(name)})

    def _api_options(self, explorer, body):
        options = explorer.query_options(_need(body, "vertex"))
        self._send(200, options)

    def _run_search(self, explorer, body):
        vertex = _need(body, "vertex")
        k = int(body.get("k", 4))
        algorithm = body.get("algorithm", "acq")
        keywords = body.get("keywords")
        engine = self.server.engine
        started = time.time()
        start = time.perf_counter()
        # Cache hits resolve inline; misses run on the worker pool
        # with the server deadline (timeouts cancel the queued job).
        future = engine.search(algorithm, vertex, k=k,
                               keywords=keywords,
                               timeout=self.server.query_timeout)
        try:
            communities = future.result(self.server.query_timeout)
        except QueryTimeoutError:
            future.cancel()
            engine.stats.count("timeouts")
            raise
        query = {"vertex": vertex, "k": k, "algorithm": algorithm,
                 "keywords": keywords}
        trace = future.trace
        if trace is not None:
            # The request-level span: end-to-end as the handler saw
            # it, a top-level sibling of the engine's own spans (so
            # queue + execute + the request envelope are separable).
            trace.add_span("request", time.perf_counter() - start,
                           start=started, parent=None,
                           tags={"path": self.path.split("?", 1)[0]})
            query["trace"] = trace.query_id
        return communities, query

    def _api_search(self, explorer, body):
        communities, query = self._run_search(explorer, body)
        session_id = body.get("session")
        if session_id:
            session = self.server.sessions.get(str(session_id))
        else:
            session = self.server.sessions.create()
        session.record(query["algorithm"], str(query["vertex"]),
                       query["k"], len(communities),
                       keywords=query["keywords"])
        self._send(200, {
            "session": session.session_id,
            "query": query,
            "communities": [c.to_dict() for c in communities],
        })

    def _api_suggest(self, explorer, body):
        prefix = str(body.get("prefix", ""))
        limit = int(body.get("limit", 10))
        self._send(200, {
            "prefix": prefix,
            "names": explorer.suggest_names(prefix, limit=limit),
        })

    def _api_history(self, explorer, body):
        session_id = str(_need(body, "session"))
        session = self.server.sessions.get(session_id,
                                           create_missing=False)
        if session is None:
            raise CExplorerError("unknown session {!r}".format(session_id))
        self._send(200, {
            "session": session_id,
            "history": session.history(limit=body.get("limit")),
        })

    def _api_detect(self, explorer, body):
        algorithm = body.get("algorithm", "codicil")
        params = body.get("params") or {}
        communities = self.server.submit(explorer.detect, algorithm,
                                         op="detect", **params)
        self._send(200, {
            "algorithm": algorithm,
            "count": len(communities),
            "communities": [c.to_dict() for c in communities[:50]],
        })

    def _api_display(self, explorer, body):
        communities, query = self._run_search(explorer, body)
        idx = int(body.get("community", 0))
        if not 0 <= idx < len(communities):
            raise CExplorerError("community index {} out of range "
                                 "(have {})".format(idx, len(communities)))
        community = communities[idx]
        layout = explorer.display(community, fmt="positions",
                                  layout=body.get("layout", "ego"))
        svg = render_svg(community, layout=layout)
        from repro.analysis.themes import theme_of
        self._send(200, {
            "query": query,
            "community": community.to_dict(),
            "theme": theme_of(community),
            "positions": {str(v): [round(x, 4), round(y, 4)]
                          for v, (x, y) in layout.items()},
            "svg": svg,
        })

    def _api_profile(self, explorer, body):
        profile = explorer.profile(_need(body, "vertex"))
        self._send(200, profile.to_dict())

    def _api_compare(self, explorer, body):
        vertex = _need(body, "vertex")
        k = int(body.get("k", 4))
        methods = body.get("methods") or ("global", "local", "codicil",
                                          "acq")
        report = self.server.submit(explorer.compare, vertex, k=k,
                                    methods=tuple(methods),
                                    keywords=body.get("keywords"),
                                    op="compare")
        doc = report.to_dict()
        if body.get("charts", True):
            from repro.viz.charts import render_quality_charts
            doc["charts"] = render_quality_charts(report)
        self._send(200, doc)


def _need(body, key):
    value = body.get(key)
    if value is None:
        raise CExplorerError("missing required field {!r}".format(key))
    return value
