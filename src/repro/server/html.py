"""The browser side: one self-contained HTML page.

A deliberately small client -- exploration form on the left, community
view on the right, an analysis tab -- mirroring the Figure 1 / Figure 6
screens closely enough to demo every server endpoint without any
JavaScript framework.
"""

INDEX_HTML = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>C-Explorer</title>
<style>
 body { font-family: sans-serif; margin: 0; display: flex; }
 #left { width: 300px; padding: 16px; background: #f3f6f8;
         min-height: 100vh; }
 #right { flex: 1; padding: 16px; }
 h1 { font-size: 18px; } h2 { font-size: 15px; }
 label { display: block; margin-top: 10px; font-size: 13px; }
 input, select { width: 95%; padding: 4px; }
 button { margin-top: 12px; padding: 6px 18px; }
 #keywords span { display: inline-block; background: #dde7ee;
   margin: 2px; padding: 2px 7px; border-radius: 9px; font-size: 12px;
   cursor: pointer; }
 #keywords span.on { background: #4a90d9; color: white; }
 table { border-collapse: collapse; margin-top: 10px; }
 td, th { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; }
 #theme { color: #555; font-size: 13px; margin-top: 6px; }
 pre { background: #f7f7f7; padding: 8px; overflow-x: auto; }
</style>
</head>
<body>
<div id="left">
 <h1>C-Explorer</h1>
 <a href="#" onclick="show('explore')">Exploration</a> |
 <a href="#" onclick="show('analysis')">Analysis</a>
 <div id="panel-explore">
  <label>Name: <input id="name" value="jim gray"></label>
  <label>Structure: degree &ge;
    <input id="k" type="number" value="4" style="width:60px"></label>
  <label>Algorithm:
   <select id="algo"></select></label>
  <label>Keywords:</label>
  <div id="keywords"></div>
  <button onclick="search()">Search</button>
 </div>
 <div id="panel-analysis" style="display:none">
  <label>Name: <input id="aname" value="jim gray"></label>
  <label>degree &ge;
    <input id="ak" type="number" value="4" style="width:60px"></label>
  <button onclick="compare()">Compare</button>
 </div>
</div>
<div id="right">
 <div id="communities"></div>
 <div id="theme"></div>
 <div id="view"></div>
 <div id="analysis"></div>
</div>
<script>
function api(path, params) {
  return fetch(path, {method: 'POST', body: JSON.stringify(params || {}),
                      headers: {'Content-Type': 'application/json'}})
         .then(function (r) { return r.json(); });
}
function show(which) {
  document.getElementById('panel-explore').style.display =
    which === 'explore' ? '' : 'none';
  document.getElementById('panel-analysis').style.display =
    which === 'analysis' ? '' : 'none';
}
function loadAlgorithms() {
  fetch('/api/algorithms').then(function (r) { return r.json(); })
  .then(function (d) {
    var sel = document.getElementById('algo');
    d.cs.forEach(function (name) {
      var o = document.createElement('option');
      o.value = name; o.textContent = name;
      if (name === 'acq') { o.selected = true; }
      sel.appendChild(o);
    });
  });
}
function loadKeywords() {
  api('/api/options', {vertex: document.getElementById('name').value})
  .then(function (d) {
    var div = document.getElementById('keywords');
    div.innerHTML = '';
    (d.keywords || []).forEach(function (w) {
      var s = document.createElement('span');
      s.textContent = w; s.className = 'on';
      s.onclick = function () { s.classList.toggle('on'); };
      div.appendChild(s);
    });
  });
}
function selectedKeywords() {
  var out = [];
  document.querySelectorAll('#keywords span.on').forEach(function (s) {
    out.push(s.textContent);
  });
  return out.length ? out : null;
}
function search() {
  api('/api/search', {
    vertex: document.getElementById('name').value,
    k: parseInt(document.getElementById('k').value, 10),
    algorithm: document.getElementById('algo').value,
    keywords: selectedKeywords()
  }).then(function (d) {
    if (d.error) { alert(d.error); return; }
    var nav = document.getElementById('communities');
    nav.textContent = 'Communities: ';
    d.communities.forEach(function (c, i) {
      var a = document.createElement('a');
      a.href = '#'; a.textContent = (i + 1) + ' ';
      a.onclick = function () { view(i); return false; };
      nav.appendChild(a);
    });
    window._last = d;
    if (d.communities.length) { view(0); }
  });
}
function view(i) {
  var c = window._last.communities[i];
  document.getElementById('theme').textContent =
    c.theme.length ? 'Theme: ' + c.theme.join(', ') : '';
  api('/api/display', {
    vertex: window._last.query.vertex, k: window._last.query.k,
    algorithm: window._last.query.algorithm,
    keywords: window._last.query.keywords, community: i
  }).then(function (d) {
    document.getElementById('view').innerHTML = d.svg;
  });
}
function compare() {
  api('/api/compare', {
    vertex: document.getElementById('aname').value,
    k: parseInt(document.getElementById('ak').value, 10)
  }).then(function (d) {
    var rows = d.table.map(function (r) {
      return '<tr><td>' + [r.method, r.communities, r.vertices, r.edges,
        r.degree, r.cpj, r.cmf].join('</td><td>') + '</td></tr>';
    }).join('');
    document.getElementById('analysis').innerHTML =
      '<h2>Community Statistics</h2><table><tr><th>Method</th>' +
      '<th>Communities</th><th>Vertices</th><th>Edges</th>' +
      '<th>Degree</th><th>CPJ</th><th>CMF</th></tr>' + rows + '</table>';
  });
}
loadAlgorithms();
document.getElementById('name').onchange = loadKeywords;
loadKeywords();
</script>
</body>
</html>
"""
