"""Shared serving state: everything both HTTP front-ends hang onto.

The sync :mod:`~repro.server.app` (``ThreadingHTTPServer``) and the
async :mod:`~repro.server.async_app` (``asyncio``) serve the same
route table (:mod:`repro.server.routes`) over the same explorer; this
class is the substrate they share -- sessions, request counters, the
write lock, the metrics document, and the search submission path
(optionally through a cross-query
:class:`~repro.engine.batching.QueryBatcher`) -- so "two servers" is
purely a transport decision, not two serving stacks.
"""

import threading
import time

from repro.explorer.sessions import SessionStore


class ServerState:
    """One serving deployment's shared state around a CExplorer."""

    def __init__(self, explorer, query_timeout=30.0, batch_window=None):
        self.explorer = explorer
        self.engine = explorer.engine
        self.query_timeout = query_timeout
        self.sessions = SessionStore()
        self.started_at = time.time()
        self.request_counts = {}
        self.error_count = 0
        self.metrics_lock = threading.Lock()
        # The upload endpoint mutates the explorer; serialise writers.
        self.write_lock = threading.Lock()
        self.batcher = None
        if batch_window is not None:
            from repro.engine.batching import QueryBatcher
            self.batcher = QueryBatcher(explorer, window=batch_window)

    # ------------------------------------------------------------------
    # request accounting
    # ------------------------------------------------------------------
    def count_request(self, template):
        """Count one request under its **route template** (e.g.
        ``/api/traces/{query_id}``), never the raw path -- the raw
        path embeds client-chosen ids, and counting those grew
        ``request_counts`` without bound (one bucket per trace id)."""
        with self.metrics_lock:
            self.request_counts[template] = \
                self.request_counts.get(template, 0) + 1

    def count_error(self):
        """Count one request answered with an error status."""
        with self.metrics_lock:
            self.error_count += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def submit_search(self, algorithm, vertex, k=4, keywords=None):
        """One community search as an
        :class:`~repro.engine.executor.EngineFuture`.

        Routes through the cross-query batcher when one is enabled
        (the admission window coalesces concurrent queries; cache hits
        still resolve immediately) and through the engine's plan/cache
        path otherwise -- per-query results are identical either way.
        """
        if self.batcher is not None:
            return self.batcher.submit(algorithm, vertex, k=k,
                                       keywords=keywords,
                                       timeout=self.query_timeout)
        return self.engine.search(algorithm, vertex, k=k,
                                  keywords=keywords,
                                  timeout=self.query_timeout)

    def close(self):
        """Stop serving-owned machinery (the batcher's flusher); the
        explorer and engine belong to the caller and are left alone."""
        if self.batcher is not None:
            self.batcher.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics(self):
        """The ``/v1/metrics`` document.

        ``cache.invalidations_by_reason`` breaks evictions down into
        ``core-cascade`` / ``truss-cascade`` (footprint-scoped,
        reported by the attached maintainers) vs ``evict-all`` (the
        conservative fallback); ``truss_invalidations`` and
        ``truss_cascade_size`` summarise the truss maintenance
        subsystem.  With batching enabled, ``batching`` carries the
        admission-window occupancy next to the engine's ``batches`` /
        ``shared_answers`` counters.
        """
        with self.metrics_lock:
            requests = dict(self.request_counts)
            errors = self.error_count
        cache = self.explorer.cache.stats()
        cache["by_graph"] = self.explorer.cache.entries_by_graph()
        truss = self.explorer.indexes.truss_stats()
        doc = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": requests,
            "errors": errors,
            "sessions": len(self.sessions),
            "cache": cache,
            "truss_invalidations":
                cache["invalidations_by_reason"]["truss-cascade"],
            "truss_cascade_size": {
                "last": truss["last_cascade_size"],
                "max": truss["max_cascade_size"],
                "total": truss["changed_edges"],
                "updates": truss["updates"],
            },
            # Includes per-shard index versions, partition
            # balance/cut, and fan-out latency/skew for sharded
            # graphs (see EngineStats.observe_fanout).
            "engine": self.engine.snapshot(),
        }
        if self.batcher is not None:
            doc["batching"] = self.batcher.stats()
        return doc
