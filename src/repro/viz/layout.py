"""Vertex layout algorithms (the JUNG replacement).

All layouts operate on a :class:`Community` (or any object with
``vertices``, ``graph`` and ``induced_edges()``) and return
``{vertex_id: (x, y)}`` with coordinates in the unit square, ready for
the SVG renderer to scale.
"""

import math

from repro.util.rng import make_rng


def circular_layout(community, sort_by_name=True):
    """Members evenly spaced on a circle.

    Deterministic; with ``sort_by_name`` the order follows display
    names so two renders of the same community are identical.
    """
    members = list(community.vertices)
    if sort_by_name:
        members.sort(key=community.graph.display_name)
    else:
        members.sort()
    n = len(members)
    pos = {}
    for i, v in enumerate(members):
        angle = 2.0 * math.pi * i / max(n, 1)
        pos[v] = (0.5 + 0.42 * math.cos(angle),
                  0.5 + 0.42 * math.sin(angle))
    return pos


def spring_layout(community, iterations=60, seed=0, initial=None):
    """Fruchterman-Reingold force-directed layout.

    Repulsive force k^2/d between all pairs, attractive force d^2/k
    along edges, with linear cooling -- the classic formulation, which
    is also what JUNG's ``FRLayout`` implements.  Positions are clipped
    to the unit square.
    """
    members = sorted(community.vertices)
    n = len(members)
    if n == 0:
        return {}
    if n == 1:
        return {members[0]: (0.5, 0.5)}
    rng = make_rng(seed)
    pos = dict(initial) if initial else {}
    for v in members:
        if v not in pos:
            pos[v] = (rng.random(), rng.random())
    edges = list(community.induced_edges())
    area_k = math.sqrt(1.0 / n)
    temperature = 0.1

    for step in range(iterations):
        disp = {v: [0.0, 0.0] for v in members}
        # Repulsion between all pairs.
        for i, v in enumerate(members):
            xv, yv = pos[v]
            for u in members[i + 1:]:
                xu, yu = pos[u]
                dx, dy = xv - xu, yv - yu
                dist = math.hypot(dx, dy) or 1e-9
                force = area_k * area_k / dist
                fx, fy = dx / dist * force, dy / dist * force
                disp[v][0] += fx
                disp[v][1] += fy
                disp[u][0] -= fx
                disp[u][1] -= fy
        # Attraction along edges.
        for u, v in edges:
            xu, yu = pos[u]
            xv, yv = pos[v]
            dx, dy = xu - xv, yu - yv
            dist = math.hypot(dx, dy) or 1e-9
            force = dist * dist / area_k
            fx, fy = dx / dist * force, dy / dist * force
            disp[u][0] -= fx
            disp[u][1] -= fy
            disp[v][0] += fx
            disp[v][1] += fy
        # Apply displacements, limited by the cooling temperature.
        for v in members:
            dx, dy = disp[v]
            dist = math.hypot(dx, dy) or 1e-9
            step_len = min(dist, temperature)
            x = pos[v][0] + dx / dist * step_len
            y = pos[v][1] + dy / dist * step_len
            pos[v] = (min(0.98, max(0.02, x)), min(0.98, max(0.02, y)))
        temperature *= (1.0 - (step + 1) / iterations) * 0.9 + 0.05

    return pos


def ego_layout(community, center=None, ring_gap=0.16):
    """Concentric rings around the query vertex (the Figure 1 view).

    The query vertex sits at the centre; other members are placed on
    rings by BFS distance from it, each ring sorted by display name.
    Vertices unreachable inside the community (cannot happen for the
    connected communities our algorithms emit, but tolerated) land on
    the outermost ring.
    """
    graph = community.graph
    if center is None:
        if community.query_vertices:
            center = community.query_vertices[0]
        else:
            center = min(community.vertices)
    members = community.vertices
    # BFS distances within the community.
    dist = {center: 0}
    frontier = [center]
    while frontier:
        nxt = []
        for u in frontier:
            for w in graph.neighbors(u):
                if w in members and w not in dist:
                    dist[w] = dist[u] + 1
                    nxt.append(w)
        frontier = nxt
    max_ring = max(dist.values()) if len(dist) > 1 else 1
    fallback_ring = max_ring + 1
    rings = {}
    for v in members:
        rings.setdefault(dist.get(v, fallback_ring), []).append(v)
    pos = {center: (0.5, 0.5)}
    for ring, vs in rings.items():
        if ring == 0:
            continue
        vs.sort(key=graph.display_name)
        radius = min(0.46, ring_gap * ring)
        for i, v in enumerate(vs):
            angle = 2.0 * math.pi * i / len(vs) + 0.3 * ring
            pos[v] = (0.5 + radius * math.cos(angle),
                      0.5 + radius * math.sin(angle))
    return pos
