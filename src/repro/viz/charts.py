"""SVG bar charts: the Figure 6(a) quality graphs.

"the CPJ and CMF values of communities retrieved by different methods
are depicted in bar graphs on the right panel" -- this module renders
those bar graphs.  Pure-string SVG like :mod:`repro.viz.render`, no
plotting dependency.
"""

import html

_BAR_COLORS = ["#4a90d9", "#6fbf73", "#e0a84f", "#d9534f", "#9b7fd4",
               "#5bc8c4"]


def render_bar_chart(values, title="", width=420, height=220,
                     value_format="{:.3f}", max_value=None):
    """Render ``{label: value}`` as a vertical-bar SVG string.

    Bars keep insertion order; each gets a colour from a fixed palette
    (cycled), its value printed above and its label below, matching
    the comparison screen's look.  ``max_value`` pins the y-scale so
    two charts (CPJ and CMF) can share an axis.
    """
    labels = list(values)
    if not labels:
        raise ValueError("bar chart needs at least one value")
    top = max_value if max_value is not None else \
        max(values.values()) or 1.0
    pad_left, pad_top, pad_bottom = 30, 34, 30
    plot_h = height - pad_top - pad_bottom
    slot = (width - 2 * pad_left) / len(labels)
    bar_w = slot * 0.6

    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
        'height="{h}" viewBox="0 0 {w} {h}">'.format(w=width, h=height),
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            '<text x="{}" y="18" font-size="14" text-anchor="middle" '
            'font-family="sans-serif" fill="#333">{}</text>'.format(
                width // 2, html.escape(title)))
    # Baseline.
    parts.append(
        '<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="#999"/>'.format(
            pad_left, height - pad_bottom, width - pad_left,
            height - pad_bottom))
    for i, label in enumerate(labels):
        value = values[label]
        frac = 0.0 if top <= 0 else max(0.0, min(1.0, value / top))
        bar_h = frac * plot_h
        x = pad_left + i * slot + (slot - bar_w) / 2
        y = height - pad_bottom - bar_h
        color = _BAR_COLORS[i % len(_BAR_COLORS)]
        parts.append(
            '<rect x="{:.1f}" y="{:.1f}" width="{:.1f}" height="{:.1f}"'
            ' fill="{}"/>'.format(x, y, bar_w, bar_h, color))
        parts.append(
            '<text x="{:.1f}" y="{:.1f}" font-size="11" '
            'text-anchor="middle" font-family="sans-serif" '
            'fill="#222">{}</text>'.format(
                x + bar_w / 2, y - 4, value_format.format(value)))
        parts.append(
            '<text x="{:.1f}" y="{}" font-size="11" '
            'text-anchor="middle" font-family="sans-serif" '
            'fill="#444">{}</text>'.format(
                x + bar_w / 2, height - pad_bottom + 16,
                html.escape(str(label))))
    parts.append("</svg>")
    return "\n".join(parts)


def render_quality_charts(report, width=420, height=220):
    """The Figure 6(a) pair: CPJ and CMF charts for a comparison report.

    Takes a :class:`~repro.analysis.comparison.ComparisonReport`;
    returns ``{"cpj": svg, "cmf": svg}`` with a shared y-scale.
    """
    bars = report.quality_bars()
    out = {}
    for metric in ("cpj", "cmf"):
        values = {method: scores[metric]
                  for method, scores in bars.items()}
        top = max(values.values()) if values else 1.0
        out[metric] = render_bar_chart(
            values, title=metric.upper(), width=width, height=height,
            max_value=top if top > 0 else 1.0)
    return out
