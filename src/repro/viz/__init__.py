"""Visualisation: the ``display`` API (Figure 4) without JUNG.

The original system delegates vertex placement to the JUNG project and
renders in the browser; here :mod:`repro.viz.layout` implements the
layout algorithms (Fruchterman-Reingold force-directed, circular, and
the ego layout used for community views with a highlighted query
vertex) and :mod:`repro.viz.render` emits SVG (the "save as image"
feature) and ASCII (terminal demos).
"""

from repro.viz.charts import render_bar_chart, render_quality_charts
from repro.viz.layout import circular_layout, ego_layout, spring_layout
from repro.viz.render import render_ascii, render_svg

__all__ = [
    "circular_layout",
    "ego_layout",
    "render_ascii",
    "render_bar_chart",
    "render_quality_charts",
    "render_svg",
    "spring_layout",
]
