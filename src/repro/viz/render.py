"""Community renderers: SVG for the browser, ASCII for the terminal.

The demo lets users "save the community into a .jpg file or print it
directly"; SVG is our vector equivalent (and what the HTML client
embeds), while the ASCII renderer powers the example scripts' output.
"""

import html

from repro.viz.layout import ego_layout

_QUERY_COLOR = "#d9534f"
_VERTEX_COLOR = "#4a90d9"
_EDGE_COLOR = "#b8c4cc"


def render_svg(community, layout=None, width=640, height=480,
               label_limit=60, title=None):
    """Render a community as an SVG document string.

    ``layout`` maps vertex -> (x, y) in the unit square (default: the
    ego layout centred on the query vertex, like Figure 1).  Labels
    are drawn for up to ``label_limit`` vertices; beyond that only the
    query vertices keep labels, matching the browser's zoomed-out view.
    """
    graph = community.graph
    if layout is None:
        layout = ego_layout(community)
    pad = 30

    def sx(x):
        return pad + x * (width - 2 * pad)

    def sy(y):
        return pad + y * (height - 2 * pad)

    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
        'viewBox="0 0 {w} {h}">'.format(w=width, h=height),
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            '<text x="{}" y="18" font-size="14" font-family="sans-serif" '
            'text-anchor="middle" fill="#333">{}</text>'.format(
                width // 2, html.escape(title)))
    for u, v in community.induced_edges():
        (x1, y1), (x2, y2) = layout[u], layout[v]
        parts.append(
            '<line x1="{:.1f}" y1="{:.1f}" x2="{:.1f}" y2="{:.1f}" '
            'stroke="{}" stroke-width="1"/>'.format(
                sx(x1), sy(y1), sx(x2), sy(y2), _EDGE_COLOR))
    draw_labels = len(community) <= label_limit
    query = set(community.query_vertices)
    for v in sorted(community.vertices):
        x, y = layout[v]
        is_query = v in query
        parts.append(
            '<circle cx="{:.1f}" cy="{:.1f}" r="{}" fill="{}" '
            'stroke="#333" stroke-width="0.7"/>'.format(
                sx(x), sy(y), 9 if is_query else 6,
                _QUERY_COLOR if is_query else _VERTEX_COLOR))
        if draw_labels or is_query:
            parts.append(
                '<text x="{:.1f}" y="{:.1f}" font-size="10" '
                'font-family="sans-serif" text-anchor="middle" '
                'fill="#222">{}</text>'.format(
                    sx(x), sy(y) - 10,
                    html.escape(graph.display_name(v))))
    if community.shared_keywords:
        theme = "Theme: " + ", ".join(community.theme(limit=8))
        parts.append(
            '<text x="{}" y="{}" font-size="12" font-family="sans-serif" '
            'text-anchor="middle" fill="#555">{}</text>'.format(
                width // 2, height - 8, html.escape(theme)))
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(community, path, **kwargs):
    """Write :func:`render_svg` output to ``path``; returns the path."""
    doc = render_svg(community, **kwargs)
    with open(path, "w", encoding="utf-8") as f:
        f.write(doc)
    return path


def render_ascii(community, width=72, height=24, layout=None):
    """Plot the community on a character grid (examples / debugging).

    Query vertices render as ``@``, others as ``o``; a legend of
    display names follows the grid.
    """
    graph = community.graph
    if layout is None:
        layout = ego_layout(community)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    members = sorted(community.vertices, key=graph.display_name)
    query = set(community.query_vertices)
    for i, v in enumerate(members):
        x, y = layout[v]
        col = min(width - 1, max(0, int(x * (width - 1))))
        row = min(height - 1, max(0, int(y * (height - 1))))
        marker = "@" if v in query else "o"
        grid[row][col] = marker
        legend.append("{} {}{}".format(
            marker, graph.display_name(v),
            " (query)" if v in query else ""))
    lines = ["".join(row).rstrip() for row in grid]
    # Trim blank top/bottom rows for compactness.
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    out = "\n".join(lines)
    if community.shared_keywords:
        out += "\n\nTheme: " + ", ".join(community.theme(limit=8))
    if len(legend) <= 30:
        out += "\n\n" + "\n".join(legend)
    return out
