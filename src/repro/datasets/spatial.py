"""Spatial attributed graph generator.

Reference [3] of the paper (Fang et al., PVLDB 2017) searches
communities over *spatial* graphs: vertices carry coordinates (users
with home locations) and a good community is cohesive both socially
and geographically.  This generator extends the planted-community
recipe with geometry: every community gets a centre on the unit
square, members scatter around it with Gaussian noise, and edge
probability decays with distance, so social and spatial structure
correlate the way check-in datasets do.
"""

import math

from repro.graph.attributed import AttributedGraph
from repro.util.rng import make_rng


def generate_spatial_graph(n=400, communities=8, avg_degree=8,
                           spread=0.06, cross_p=0.05, seed=0):
    """Generate ``(graph, coords, ground_truth)``.

    ``coords`` maps vertex -> (x, y) in the unit square;
    ``ground_truth`` maps community index -> vertex set.
    """
    if communities < 1 or n < communities:
        raise ValueError("need at least one vertex per community")
    rng = make_rng(seed)
    graph = AttributedGraph()
    coords = {}
    membership = []
    centres = [(rng.random() * 0.8 + 0.1, rng.random() * 0.8 + 0.1)
               for _ in range(communities)]
    for v in range(n):
        c = v % communities
        cx, cy = centres[c]
        x = min(1.0, max(0.0, rng.gauss(cx, spread)))
        y = min(1.0, max(0.0, rng.gauss(cy, spread)))
        graph.add_vertex("s{}".format(v), {"area{}".format(c), "poi"})
        coords[v] = (x, y)
        membership.append(c)

    by_community = {}
    for v, c in enumerate(membership):
        by_community.setdefault(c, []).append(v)

    target_edges = n * avg_degree // 2
    edges = 0
    attempts = 0
    while edges < target_edges and attempts < 30 * target_edges:
        attempts += 1
        u = rng.randrange(n)
        if rng.random() < cross_p:
            v = rng.randrange(n)
        else:
            v = rng.choice(by_community[membership[u]])
        if u == v or graph.has_edge(u, v):
            continue
        # Distance-decayed acceptance: near pairs connect more often.
        d = euclidean(coords[u], coords[v])
        if rng.random() < math.exp(-6.0 * d):
            graph.add_edge(u, v)
            edges += 1
    truth = {c: set(vs) for c, vs in by_community.items()}
    return graph, coords, truth


def euclidean(a, b):
    """Plain 2D Euclidean distance."""
    return math.hypot(a[0] - b[0], a[1] - b[1])
