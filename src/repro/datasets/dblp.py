"""Synthetic DBLP-like co-authorship network.

The paper demos C-Explorer on a DBLP sample: 977,288 authors,
3,432,273 co-authorship edges, each author tagged with the 20 most
frequent keywords from their paper titles, plus Wikipedia profiles for
renowned database researchers.  That crawl cannot be redistributed, so
this module generates a faithful stand-in:

* **Community structure** -- authors belong to research communities
  (graph areas, database systems, ...).  Community sizes follow a
  heavy-tailed distribution, like real research fields.
* **Degree structure** -- inside a community, new authors attach
  preferentially to well-connected members (supervisors, frequent
  collaborators) and close triangles, producing the heavy-tailed
  degree distribution and nested k-cores of real co-authorship graphs.
  A configurable fraction of edges crosses communities.
* **Keyword structure** -- each community has a topic vocabulary; an
  author's 20 keywords mix their community's topic words (shared by
  most members: the "theme" ACQ discovers), globally common filler
  words ("data", "system", ...: the reason CPJ/CMF punish structure-
  only methods), and rare personal words.
* **Renowned researchers** -- the first author of each of the first
  communities is a high-degree "leader" named after the seed list in
  :data:`SEED_AUTHORS` (Jim Gray and colleagues, matching the paper's
  demo scenario) and receives a profile in
  :mod:`repro.explorer.profiles`.

Everything is driven by an explicit seed; the same config always
yields the identical graph.
"""

from repro.graph.attributed import AttributedGraph
from repro.util.rng import make_rng

#: Renowned researchers used in the paper's walkthrough (Figures 1-2).
#: They become the leaders of the first communities of the generated
#: graph, so the examples can query "Jim Gray" exactly as the demo does.
SEED_AUTHORS = [
    "Jim Gray", "Michael Stonebraker", "Michael L. Brodie",
    "Bruce G. Lindsay", "Gerhard Weikum", "Hector Garcia-Molina",
    "Stanley B. Zdonik", "David J. DeWitt", "Rakesh Agrawal",
    "Jeffrey D. Ullman", "Jennifer Widom", "Serge Abiteboul",
    "Raghu Ramakrishnan", "Joseph M. Hellerstein", "Samuel Madden",
    "Surajit Chaudhuri", "Anastasia Ailamaki", "Beng Chin Ooi",
    "Divesh Srivastava", "Alon Y. Halevy",
]

#: Globally common title words every author can carry -- the eight the
#: paper shows for Jim Gray come first.
COMMON_KEYWORDS = [
    "data", "system", "management", "research", "transaction", "web",
    "server", "spatial", "digital", "query", "database", "analysis",
    "model", "design", "performance", "distributed", "information",
    "processing", "network", "application",
]

#: Topic vocabularies, one list per research community (cycled when
#: there are more communities than topics).
TOPIC_POOLS = [
    ["transaction", "recovery", "concurrency", "locking", "logging",
     "isolation", "acid", "commit"],
    ["graph", "community", "vertex", "subgraph", "traversal", "pattern",
     "reachability", "motif"],
    ["query", "optimization", "join", "cardinality", "plan", "index",
     "selectivity", "rewrite"],
    ["stream", "window", "continuous", "event", "realtime", "sensor",
     "sliding", "approximation"],
    ["mining", "clustering", "classification", "frequent", "outlier",
     "itemset", "association", "summarization"],
    ["storage", "column", "compression", "buffer", "cache", "flash",
     "memory", "layout"],
    ["distributed", "replication", "consistency", "partition",
     "consensus", "availability", "sharding", "gossip"],
    ["spatial", "trajectory", "road", "nearest", "geographic", "region",
     "location", "map"],
    ["text", "keyword", "retrieval", "ranking", "document", "relevance",
     "snippet", "corpus"],
    ["privacy", "security", "anonymization", "encryption", "access",
     "differential", "audit", "policy"],
    ["machine", "learning", "neural", "embedding", "training",
     "feature", "gradient", "inference"],
    ["crowd", "social", "user", "recommendation", "influence", "tag",
     "sentiment", "behavior"],
]

_FIRST = ["wei", "lei", "hao", "yan", "jun", "min", "ken", "tom", "ann",
          "eva", "ben", "ada", "max", "leo", "ian", "amy", "joe", "sue",
          "ray", "kim"]
_LAST = ["chen", "wang", "smith", "li", "zhang", "kumar", "patel",
         "mueller", "garcia", "kim", "tanaka", "novak", "rossi", "silva",
         "lopez", "nguyen", "olsen", "fischer", "brown", "dubois"]


class DblpConfig:
    """Parameters of the synthetic DBLP generator.

    The defaults produce a ~2,000-author graph in well under a second;
    benchmarks scale ``n_authors`` up to 10^5.

    Parameters
    ----------
    n_authors:
        Total number of author vertices.
    n_communities:
        Number of planted research communities.
    m_intra:
        *Mean* number of edges a joining author creates inside their
        community (preferential attachment), before triadic closure.
        The per-author count is sampled around this mean with a heavy
        one-edge fringe, mirroring real co-authorship graphs where
        many authors have a single collaboration and a few are
        prolific -- this is what gives the generated graph a spread
        of core numbers instead of one giant terminal core.
    closure_p:
        Probability of closing a triangle for each new edge.
    inter_p:
        Probability that an author also collaborates with a random
        member of another community.
    keywords_per_author:
        Size of each author's keyword set (the paper uses 20).
    topic_share:
        Probability that a member carries each of their community's
        topic words; near 1.0 makes themes strongly shared.
    leader_boost:
        Extra intra-community edges given to each community leader.
    seed:
        RNG seed; identical seeds yield identical graphs.
    """

    def __init__(self, n_authors=2000, n_communities=24, m_intra=3,
                 closure_p=0.35, inter_p=0.08, keywords_per_author=20,
                 topic_share=0.9, leader_boost=12, seed=7):
        if n_authors < n_communities:
            raise ValueError("need at least one author per community")
        if m_intra < 1:
            raise ValueError("m_intra must be >= 1")
        self.n_authors = n_authors
        self.n_communities = n_communities
        self.m_intra = m_intra
        self.closure_p = closure_p
        self.inter_p = inter_p
        self.keywords_per_author = keywords_per_author
        self.topic_share = topic_share
        self.leader_boost = leader_boost
        self.seed = seed


def _sample_edge_count(rng, mean):
    """Heavy-fringe sample of a joining author's collaboration count.

    ~35% of authors attach with a single edge (the degree-1 fringe of
    real DBLP), most sit near the mean, and a small tail collaborates
    broadly.  Expectation is close to ``mean`` for the default 3.
    """
    roll = rng.random()
    if roll < 0.35:
        return 1
    if roll < 0.65:
        return max(1, mean - 1)
    if roll < 0.90:
        return mean + 1
    return 2 * mean + 1


def seed_authors(config=None):
    """Names of the renowned leaders present in a generated graph."""
    n = config.n_communities if config is not None else len(SEED_AUTHORS)
    return SEED_AUTHORS[:min(n, len(SEED_AUTHORS))]


def generate_dblp_graph(config=None, return_communities=False):
    """Generate the synthetic co-authorship network.

    Returns the :class:`AttributedGraph`; with
    ``return_communities=True`` returns ``(graph, communities)`` where
    ``communities`` maps community index -> set of vertex ids (the
    planted ground truth, used by CD quality tests).
    """
    if config is None:
        config = DblpConfig()
    rng = make_rng(config.seed)

    # ------------------------------------------------------------------
    # 1. community sizes: heavy-tailed split of n_authors
    # ------------------------------------------------------------------
    weights = [1.0 / (i + 1) ** 0.8 for i in range(config.n_communities)]
    total_w = sum(weights)
    sizes = [max(4, int(round(config.n_authors * w / total_w)))
             for w in weights]
    # Adjust the largest community so sizes sum exactly to n_authors.
    diff = config.n_authors - sum(sizes)
    sizes[0] = max(4, sizes[0] + diff)

    graph = AttributedGraph()
    communities = {}
    member_lists = []
    names_used = set()

    def fresh_name(community, i):
        # Community leaders take the renowned-researcher names, so the
        # paper's walkthrough queries ("jim gray", k=4) work verbatim.
        if i == 0 and community < len(SEED_AUTHORS):
            return SEED_AUTHORS[community]
        while True:
            name = "{} {}".format(rng.choice(_FIRST).capitalize(),
                                  rng.choice(_LAST).capitalize())
            if name not in names_used:
                return name
            name += " {:04d}".format(rng.randrange(10000))
            if name not in names_used:
                return name

    leader_of = []
    for c, size in enumerate(sizes):
        members = []
        member_set = set()
        # Degree-proportional attachment via the repeated-endpoint trick:
        # every edge endpoint appended to `attachment` once, so sampling
        # uniformly from it is sampling proportionally to degree.
        attachment = []
        for i in range(size):
            name = fresh_name(c, i)
            names_used.add(name)
            v = graph.add_vertex(name)
            if i == 0:
                leader_of.append(v)
            else:
                targets = set()
                want = min(_sample_edge_count(rng, config.m_intra), i)
                while len(targets) < want:
                    if attachment and rng.random() < 0.8:
                        t = rng.choice(attachment)
                    else:
                        t = rng.choice(members)
                    targets.add(t)
                for t in targets:
                    if graph.add_edge(v, t):
                        attachment.append(v)
                        attachment.append(t)
                    # Triadic closure: also befriend a collaborator of t.
                    if rng.random() < config.closure_p:
                        t_nbrs = [u for u in graph.neighbors(t)
                                  if u != v and u in member_set]
                        if t_nbrs:
                            w = rng.choice(t_nbrs)
                            if graph.add_edge(v, w):
                                attachment.append(v)
                                attachment.append(w)
            members.append(v)
            member_set.add(v)
        # Boost the leader: renowned researchers collaborate broadly.
        leader = leader_of[c]
        others = [m for m in members if m != leader]
        rng.shuffle(others)
        for t in others[:config.leader_boost]:
            if graph.add_edge(leader, t):
                attachment.append(leader)
                attachment.append(t)
        communities[c] = set(members)
        member_lists.append(members)

    # ------------------------------------------------------------------
    # 2. cross-community collaboration edges
    # ------------------------------------------------------------------
    for c, members in enumerate(member_lists):
        for v in members:
            if rng.random() < config.inter_p:
                other = rng.randrange(config.n_communities - 1)
                if other >= c:
                    other += 1
                target = rng.choice(member_lists[other])
                if target != v:
                    graph.add_edge(v, target)

    # ------------------------------------------------------------------
    # 3. keywords: topic words + common fillers + rare personal words
    # ------------------------------------------------------------------
    for c, members in enumerate(member_lists):
        pool = TOPIC_POOLS[c % len(TOPIC_POOLS)]
        for v in members:
            kws = {w for w in pool if rng.random() < config.topic_share}
            # Zipf-ish filler: earlier common words are more likely.
            for rank, w in enumerate(COMMON_KEYWORDS):
                if rng.random() < 0.5 / (1 + rank * 0.35):
                    kws.add(w)
            while len(kws) < config.keywords_per_author:
                kws.add("{}-{}".format(rng.choice(pool),
                                       rng.randrange(10 * len(members) + 10)))
            graph.set_keywords(v, kws)

    if return_communities:
        return graph, communities
    return graph
