"""Zachary's karate club as a small attributed fixture.

The classic 34-vertex social network (Zachary 1977), embedded verbatim
so the library has one *real* graph with known community structure for
tests and examples without any external dependency.  To make it an
attributed graph, each member carries keywords derived from their
faction plus a couple of shared hobby words, giving the ACQ engine a
meaningful keyword signal that correlates with the ground-truth split.
"""

from repro.graph.attributed import AttributedGraph

_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
    (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21),
    (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28),
    (2, 32), (3, 7), (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10),
    (5, 16), (6, 16), (8, 30), (8, 32), (8, 33), (9, 33), (13, 33),
    (14, 32), (14, 33), (15, 32), (15, 33), (18, 32), (18, 33),
    (19, 33), (20, 32), (20, 33), (22, 32), (22, 33), (23, 25),
    (23, 27), (23, 29), (23, 32), (23, 33), (24, 25), (24, 27),
    (24, 31), (25, 31), (26, 29), (26, 33), (27, 33), (28, 31),
    (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]

# Faction each member sided with after the split (the CD ground truth).
_FACTION = [
    "hi", "hi", "hi", "hi", "hi", "hi", "hi", "hi", "hi", "officer",
    "hi", "hi", "hi", "hi", "officer", "officer", "hi", "hi", "officer",
    "hi", "officer", "hi", "officer", "officer", "officer", "officer",
    "officer", "officer", "officer", "officer", "officer", "officer",
    "officer", "officer",
]

_FACTION_KEYWORDS = {
    "hi": ("instructor", "lessons", "tournament"),
    "officer": ("club", "administration", "board"),
}


def karate_club_graph():
    """Build the attributed karate-club graph; labels are ``member00``.."""
    graph = AttributedGraph()
    for v, faction in enumerate(_FACTION):
        keywords = set(_FACTION_KEYWORDS[faction])
        keywords.add("karate")
        keywords.add(faction)
        graph.add_vertex("member{:02d}".format(v), keywords)
    for u, v in _EDGES:
        graph.add_edge(u, v)
    return graph


def karate_factions():
    """Ground-truth partition: ``{faction_name: set_of_vertex_ids}``."""
    out = {}
    for v, faction in enumerate(_FACTION):
        out.setdefault(faction, set()).add(v)
    return out
