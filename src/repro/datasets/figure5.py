"""The running example of the paper: Figure 5(a).

Ten vertices ``A .. J``, eleven edges, keyword sets::

    A:{w, x, y}  B:{x}       C:{x, y}  D:{x, y, z}  E:{y, z}
    F:{y}        G:{x, y}    H:{y, z}  I:{x}        J:{x}

Core numbers (paper, Figure 5(b)): A, B, C, D -> 3; E -> 2;
F, G, H, I -> 1; J -> 0.

The paper gives the edge set only as a drawing; the edge list below is
a reconstruction consistent with every fact the text states: {A,B,C,D}
forms a 3-core (K4), E attaches to it with two edges making {A..E} the
2-core component, F and G hang off as the 1-core fringe (so the 1-core
component is {A..G}), H and I form a separate 1-core pair, and J is an
isolated vertex -- core number 0, exactly as the Figure 5(b) table
lists.  The CL-tree over it therefore has the paper's shape: a single
k=0 root homing J, with two k=1 children ({F, G} above {E} above
{A, B, C, D}, and {H, I}).  The worked ACQ example holds on it: for
q=A, k=2, S={w,x,y} the answer is the subgraph on {A, C, D} sharing
the two keywords {x, y}.
"""

from repro.graph.attributed import AttributedGraph

_KEYWORDS = {
    "A": "wxy",
    "B": "x",
    "C": "xy",
    "D": "xyz",
    "E": "yz",
    "F": "y",
    "G": "xy",
    "H": "yz",
    "I": "x",
    "J": "x",
}

_EDGES = [
    # K4 on A, B, C, D: the 3-core.
    ("A", "B"), ("A", "C"), ("A", "D"), ("B", "C"), ("B", "D"), ("C", "D"),
    # E attaches with two edges: core number 2.
    ("E", "A"), ("E", "B"),
    # F-G chain off E: core number 1 fringe of the big component.
    ("F", "E"), ("G", "F"),
    # H-I: a separate 1-core pair.  J stays isolated (core number 0).
    ("H", "I"),
]


def figure5_graph():
    """Build the Figure 5(a) graph; labels are "A".."J"."""
    graph = AttributedGraph()
    for name in sorted(_KEYWORDS):
        graph.add_vertex(name, set(_KEYWORDS[name]))
    for a, b in _EDGES:
        graph.add_edge(graph.id_of(a), graph.id_of(b))
    return graph
