"""A planted-partition benchmark generator (LFR-style).

CD methods (CODICIL, Newman-Girvan, label propagation) need graphs
with *tunable* community mixing to be compared fairly -- the paper's
"more extensive experimental evaluation of CR solutions on a variety
of datasets".  This generator produces the classic planted-partition
regime: ``mu`` controls the fraction of each vertex's edges that leave
its community (mu -> 0: perfectly separated; mu -> 0.5+: communities
dissolve), with optional keyword attribution per community so
attributed methods can be evaluated on it too.
"""

from repro.graph.attributed import AttributedGraph
from repro.util.rng import make_rng


def generate_planted_partition(n=300, communities=6, avg_degree=8,
                               mu=0.2, keywords_per_community=4,
                               seed=0):
    """Generate a planted-partition attributed graph.

    Parameters
    ----------
    mu:
        Mixing parameter: expected fraction of a vertex's edges that
        cross community borders.
    keywords_per_community:
        Each community gets this many exclusive topic keywords carried
        by every member (0 disables attribution).

    Returns ``(graph, ground_truth)`` where ``ground_truth`` maps
    community index -> vertex set.
    """
    if not 0 <= mu <= 1:
        raise ValueError("mu must be in [0, 1]")
    if communities < 1 or n < communities:
        raise ValueError("need at least one vertex per community")
    rng = make_rng(seed)
    graph = AttributedGraph()
    membership = []
    for v in range(n):
        community = v % communities
        kws = set()
        if keywords_per_community:
            kws = {"topic{}-{}".format(community, i)
                   for i in range(keywords_per_community)}
        kws.add("common")
        graph.add_vertex("p{}".format(v), kws)
        membership.append(community)
    by_community = {}
    for v, c in enumerate(membership):
        by_community.setdefault(c, []).append(v)

    target_edges = n * avg_degree // 2
    attempts = 0
    max_attempts = target_edges * 20
    edges = 0
    while edges < target_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        if rng.random() < mu:
            v = rng.randrange(n)
        else:
            v = rng.choice(by_community[membership[u]])
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        edges += 1
    ground_truth = {c: set(vs) for c, vs in by_community.items()}
    return graph, ground_truth
