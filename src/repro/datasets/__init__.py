"""Datasets: the paper's running example and the DBLP substitute.

* :func:`figure5_graph` -- the exact 10-vertex / 11-edge attributed
  graph of Figure 5(a), used throughout tests as ground truth.
* :func:`generate_dblp_graph` -- a synthetic DBLP-like co-authorship
  network with planted research communities and topic keywords.  The
  paper demos on a real DBLP snapshot (977,288 vertices, 3,432,273
  edges, 20 title keywords per author); we cannot ship that crawl, so
  this generator reproduces the properties the algorithms depend on:
  heavy-tailed degrees, nested k-cores, and keyword/topic locality.
"""

from repro.datasets.dblp import (
    DblpConfig,
    generate_dblp_graph,
    seed_authors,
)
from repro.datasets.figure5 import figure5_graph
from repro.datasets.karate import karate_club_graph, karate_factions
from repro.datasets.lfr import generate_planted_partition

__all__ = [
    "DblpConfig",
    "figure5_graph",
    "generate_dblp_graph",
    "generate_planted_partition",
    "karate_club_graph",
    "karate_factions",
    "seed_authors",
]
