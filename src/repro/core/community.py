"""The community result type shared by every CR algorithm.

A :class:`Community` is an immutable set of vertex ids plus the
metadata the C-Explorer UI displays: the algorithm that produced it,
the query vertex/vertices, the minimum-degree parameter, and -- for
attributed communities -- the shared keyword set ``L(Gq, S)`` that
defines the community's *theme* (Figure 1, right panel).
"""


class Community:
    """An extracted community.

    Instances are hashable and compare by (vertex set, shared
    keywords), so deduplicating ACQ results or intersecting results
    from different methods works with plain set operations.
    """

    __slots__ = ("_graph", "_vertices", "shared_keywords", "method",
                 "query_vertices", "k")

    def __init__(self, graph, vertices, method="unknown",
                 query_vertices=(), k=None, shared_keywords=()):
        self._graph = graph
        self._vertices = frozenset(vertices)
        if not self._vertices:
            raise ValueError("a community cannot be empty")
        self.shared_keywords = frozenset(shared_keywords)
        self.method = method
        self.query_vertices = tuple(query_vertices)
        self.k = k

    # ------------------------------------------------------------------
    # set-like behaviour
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The graph this community was extracted from."""
        return self._graph

    @property
    def vertices(self):
        """The member vertex ids as a frozenset."""
        return self._vertices

    def __len__(self):
        return len(self._vertices)

    def __iter__(self):
        return iter(self._vertices)

    def __contains__(self, v):
        return v in self._vertices

    def __eq__(self, other):
        if not isinstance(other, Community):
            return NotImplemented
        return (self._vertices == other._vertices
                and self.shared_keywords == other.shared_keywords)

    def __hash__(self):
        return hash((self._vertices, self.shared_keywords))

    # ------------------------------------------------------------------
    # statistics shown in the Fig. 6 table
    # ------------------------------------------------------------------
    @property
    def vertex_count(self):
        """Number of member vertices."""
        return len(self._vertices)

    @property
    def edge_count(self):
        """Number of edges of G induced on the community."""
        members = self._vertices
        half = 0
        for v in members:
            for u in self._graph.neighbors(v):
                if u in members:
                    half += 1
        return half // 2

    @property
    def average_degree(self):
        """Average vertex degree inside the community."""
        n = len(self._vertices)
        return (2.0 * self.edge_count / n) if n else 0.0

    def minimum_internal_degree(self):
        """Smallest within-community degree (the cohesion guarantee)."""
        members = self._vertices
        return min(
            sum(1 for u in self._graph.neighbors(v) if u in members)
            for v in members
        )

    def internal_degree(self, v):
        """Degree of ``v`` counting only community-internal edges."""
        if v not in self._vertices:
            raise KeyError(v)
        members = self._vertices
        return sum(1 for u in self._graph.neighbors(v) if u in members)

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def member_names(self):
        """Display names of members, sorted for stable output."""
        return sorted(self._graph.display_name(v) for v in self._vertices)

    def theme(self, limit=None):
        """The community theme: its shared keywords, sorted.

        The UI renders this as e.g. ``Theme: transaction, data, ...``.
        """
        words = sorted(self.shared_keywords)
        return words[:limit] if limit is not None else words

    def induced_edges(self):
        """Yield community-internal edges as ``(u, v)`` pairs, u < v."""
        members = self._vertices
        for v in members:
            for u in self._graph.neighbors(v):
                if v < u and u in members:
                    yield (v, u)

    def to_wire(self):
        """A graph-free, picklable tuple encoding of this community.

        Worker processes run whole queries against *frozen* graph
        snapshots; shipping their :class:`Community` results back
        as-is would pickle the snapshot along with every community.
        The wire form carries only the data -- sorted vertex ids,
        method, query vertices, ``k``, sorted shared keywords -- and
        :meth:`from_wire` rebinds it to the parent's live graph.
        Round-tripping preserves equality and ordering (``__eq__``
        compares vertex and keyword sets only).
        """
        return (tuple(sorted(self._vertices)), self.method,
                tuple(self.query_vertices), self.k,
                tuple(sorted(self.shared_keywords)))

    @classmethod
    def from_wire(cls, graph, wire):
        """Rebuild a community from :meth:`to_wire` output, bound to
        ``graph`` (the caller's live graph object)."""
        vertices, method, query_vertices, k, shared = wire
        return cls(graph, vertices, method=method,
                   query_vertices=query_vertices, k=k,
                   shared_keywords=shared)

    def to_dict(self):
        """JSON-friendly representation used by the HTTP server."""
        return {
            "method": self.method,
            "k": self.k,
            "query_vertices": [self._graph.display_name(q)
                               for q in self.query_vertices],
            "vertices": self.member_names(),
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "average_degree": round(self.average_degree, 2),
            "theme": self.theme(),
        }

    def __repr__(self):
        return ("Community(method={!r}, n={}, m={}, theme={})"
                .format(self.method, self.vertex_count, self.edge_count,
                        self.theme(limit=5)))
