"""The paper's primary contribution: CL-tree index + ACQ queries.

``repro.core`` holds the engine of C-Explorer (Section 3.2):

* :mod:`repro.core.kcore` -- k-core decomposition and peeling, the
  structure-cohesiveness substrate every CS algorithm shares;
* :mod:`repro.core.ktruss` -- k-truss decomposition (the alternative
  cohesiveness measure of Huang et al. referenced in Section 2);
* :mod:`repro.core.cltree` -- the CL-tree index (Figure 5(b));
* :mod:`repro.core.acq` -- the ACQ query algorithms ``Inc-S``,
  ``Inc-T`` and ``Dec``, plus the multi-vertex variant;
* :mod:`repro.core.community` -- the :class:`Community` result type.
"""

from repro.core.acq import (
    AcqQuery,
    acq_search,
    brute_force_acq,
)
from repro.core.cltree import CLTree, CLTreeNode, build_cltree
from repro.core.community import Community
from repro.core.kcore import (
    connected_k_core,
    core_decomposition,
    k_core,
    max_core_number,
    peel_to_min_degree,
)
from repro.core.ktruss import (
    connected_k_truss,
    k_truss,
    max_truss_number,
    truss_decomposition,
)
from repro.core.maintenance import CoreMaintainer
from repro.core.persistence import load_cltree, save_cltree

__all__ = [
    "CoreMaintainer",
    "load_cltree",
    "save_cltree",
    "AcqQuery",
    "CLTree",
    "CLTreeNode",
    "Community",
    "acq_search",
    "brute_force_acq",
    "build_cltree",
    "connected_k_core",
    "connected_k_truss",
    "core_decomposition",
    "k_core",
    "k_truss",
    "max_core_number",
    "max_truss_number",
    "peel_to_min_degree",
    "truss_decomposition",
]
