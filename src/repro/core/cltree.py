"""The CL-tree index (Section 3.2, Figure 5(b)).

The CL-tree ("Core Label tree") organises all k-cores of the graph and
their keywords in one tree:

* each node represents a connected component of some k-core ``H_k``;
* the subtree rooted at a node contains exactly the vertices of that
  component;
* a vertex is *homed* at the unique node whose ``k`` equals the
  vertex's core number;
* every node carries an inverted index ``keyword -> sorted vertex ids``
  over its homed vertices, so "which vertices of this k-core contain
  keyword w" is answered by walking one subtree and unioning short
  lists.

Because k-cores are nested (a (k+1)-core is contained in a k-core),
child components always have strictly larger ``k`` than their parent.
Levels at which a component neither gains vertices nor merges with a
sibling are skipped, keeping the tree linear in the vertex count.

Following the paper (Figure 5(b)), the 0-core -- the entire graph,
connected or not -- is represented by a *single* root when the graph
has isolated vertices or several components; its homed vertices are
exactly the core-number-0 (isolated) vertices, like ``J`` in the
example.  Every node at ``k >= 1`` represents a genuinely connected
component of ``H_k``; only the k=0 root may span disconnected parts,
so :meth:`CLTree.community_vertices` special-cases ``k = 0``.

Two builders are provided, mirroring the ACQ paper:

* :func:`build_cltree_basic` -- top-down recursive component splitting;
  simple, O(m * k_max) worst case.  Used as the test oracle.
* :func:`build_cltree` (advanced) -- bottom-up over vertices in
  decreasing core number with an anchored union-find forest, the
  linear-time construction the paper's "built in linear space and time
  cost" claim refers to.
"""

from repro.core.kcore import core_decomposition
from repro.graph.frozen import neighbor_function
from repro.util.unionfind import UnionFind


class CLTreeNode:
    """One CL-tree node: a connected component of the ``k``-core."""

    __slots__ = ("k", "vertices", "children", "parent", "inverted",
                 "node_id", "_subtree_size")

    def __init__(self, node_id, k, vertices, graph):
        self.node_id = node_id
        self.k = k
        self.vertices = sorted(vertices)
        self.children = []
        self.parent = None
        self._subtree_size = None
        # Inverted keyword index over homed vertices (Fig. 5(b)).
        inverted = {}
        for v in self.vertices:
            for w in graph.keywords(v):
                inverted.setdefault(w, []).append(v)
        self.inverted = inverted

    def subtree_size(self):
        """Total number of vertices in this node's component."""
        if self._subtree_size is None:
            total = 0
            stack = [self]
            while stack:
                node = stack.pop()
                total += len(node.vertices)
                stack.extend(node.children)
            self._subtree_size = total
        return self._subtree_size

    def subtree_nodes(self):
        """Iterate this node and all descendants (preorder)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def subtree_vertices(self):
        """Iterate all vertices of the component this node represents."""
        for node in self.subtree_nodes():
            for v in node.vertices:
                yield v

    def __repr__(self):
        return "CLTreeNode(id={}, k={}, homed={}, children={})".format(
            self.node_id, self.k, len(self.vertices), len(self.children))


class CLTree:
    """The assembled index: a forest (one root per connected component)."""

    def __init__(self, graph, roots, node_of_vertex, core):
        self.graph = graph
        self.roots = roots
        self._node_of = node_of_vertex
        self.core = core

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def node_of(self, v):
        """The node where vertex ``v`` is homed (k == core number of v)."""
        return self._node_of[v]

    def node_count(self):
        """Total number of CL-tree nodes across all roots."""
        return sum(1 for root in self.roots for _ in root.subtree_nodes())

    def component_root(self, q, k):
        """Node whose subtree is the k-core component containing ``q``.

        Returns ``None`` when ``core(q) < k`` (no such k-core exists).
        This is the index lookup that replaces a full peeling pass when
        answering a query -- O(tree depth).  For ``k = 0`` the returned
        root covers the whole 0-core, which may span several connected
        components (paper convention); use :meth:`community_vertices`
        when the connected component itself is wanted.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if self.core[q] < k:
            return None
        node = self._node_of[q]
        while node.parent is not None and node.parent.k >= k:
            node = node.parent
        return node

    def community_vertices(self, q, k):
        """Vertex set of the *connected* k-core containing ``q`` (or None)."""
        if k == 0:
            return self.graph.connected_component(q)
        root = self.component_root(q, k)
        if root is None:
            return None
        return set(root.subtree_vertices())

    # ------------------------------------------------------------------
    # keyword operations (what makes it a *CL* tree)
    # ------------------------------------------------------------------
    def keyword_support(self, root, keywords):
        """Count, per keyword, the vertices in ``root``'s subtree with it.

        Used by the ACQ algorithms to discard keywords that cannot be
        part of any attributed community (support < k + 1).
        """
        counts = {w: 0 for w in keywords}
        for node in root.subtree_nodes():
            for w in keywords:
                lst = node.inverted.get(w)
                if lst:
                    counts[w] += len(lst)
        return counts

    def vertices_with_keyword(self, root, keyword):
        """Set of subtree vertices whose keyword set contains ``keyword``."""
        result = set()
        for node in root.subtree_nodes():
            lst = node.inverted.get(keyword)
            if lst:
                result.update(lst)
        return result

    def vertices_with_keywords(self, root, keywords):
        """Subtree vertices containing *all* of ``keywords``.

        Computed by intersecting inverted lists, starting from the
        rarest keyword so intermediate sets stay small.
        """
        keywords = list(keywords)
        if not keywords:
            return set(root.subtree_vertices())
        support = self.keyword_support(root, keywords)
        keywords.sort(key=lambda w: support[w])
        result = self.vertices_with_keyword(root, keywords[0])
        graph = self.graph
        for w in keywords[1:]:
            if not result:
                break
            result = {v for v in result if w in graph.keywords(v)}
        return result

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self):
        """Human-readable dump used by tests and the `analyze` endpoint."""
        lines = []

        def visit(node, depth):
            """Append one indented line per subtree node."""
            names = ", ".join(self.graph.display_name(v)
                              for v in node.vertices)
            lines.append("{}[k={}] {{{}}}".format("  " * depth, node.k,
                                                  names))
            for child in sorted(node.children, key=lambda c: c.vertices):
                visit(child, depth + 1)

        for root in sorted(self.roots, key=lambda r: r.vertices):
            visit(root, 0)
        return "\n".join(lines)

    def index_size(self):
        """Approximate entry count: homed vertices + inverted postings."""
        vertices = 0
        postings = 0
        for root in self.roots:
            for node in root.subtree_nodes():
                vertices += len(node.vertices)
                postings += sum(len(lst) for lst in node.inverted.values())
        return {"nodes": self.node_count(), "vertex_entries": vertices,
                "postings": postings}


def build_cltree(graph, core=None):
    """Advanced (linear-time) CL-tree construction.

    Processes core-number levels from the largest down.  An anchored
    union-find forest maintains, for every partially assembled
    component, the tree node currently at its top ("anchor", Figure
    5(b)).  When vertices of core number ``k`` join, components of
    higher-k cores can only merge *through* those new vertices, so each
    union-find set that received new vertices becomes exactly one new
    node whose children are the anchors of the merged sets.

    Accepts either a mutable :class:`AttributedGraph` or a frozen CSR
    snapshot; the frozen case walks the flat ``indptr``/``indices``
    arrays directly (the shard-parallel process-backend builds ship
    frozen subgraphs, see :mod:`repro.engine.backends`).
    """
    if core is None:
        core = core_decomposition(graph)
    n = graph.vertex_count
    if n == 0:
        return CLTree(graph, [], [], [])
    neighbors = neighbor_function(graph)

    by_core = {}
    for v in range(n):
        by_core.setdefault(core[v], []).append(v)

    uf = UnionFind()
    anchors = {}          # union-find root -> set of child CLTreeNodes
    node_of = [None] * n
    next_id = 0

    def merge(a, b):
        """Union two components, re-anchoring their child nodes."""
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            return
        ca = anchors.pop(ra, None)
        cb = anchors.pop(rb, None)
        root = uf.union(ra, rb)
        merged = set()
        if ca:
            merged |= ca
        if cb:
            merged |= cb
        if merged:
            anchors[root] = merged

    for k in sorted(by_core, reverse=True):
        if k == 0:
            break  # isolated vertices are homed at the global root below
        newly = by_core[k]
        for v in newly:
            uf.add(v)
        for v in newly:
            for u in neighbors(v):
                if core[u] >= k and u in uf:
                    merge(v, u)
        # Group the level's vertices by their (final) component.
        groups = {}
        for v in newly:
            groups.setdefault(uf.find(v), []).append(v)
        for root, homed in groups.items():
            node = CLTreeNode(next_id, k, homed, graph)
            next_id += 1
            for child in sorted(anchors.get(root, ()),
                                key=lambda c: c.node_id):
                child.parent = node
                node.children.append(child)
            anchors[root] = {node}
            for v in homed:
                node_of[v] = node

    tops = sorted(
        {node for group in anchors.values() for node in group},
        key=lambda nd: nd.node_id,
    )
    zero_homed = by_core.get(0, [])
    if zero_homed or len(tops) != 1:
        # Paper convention: one root for the whole 0-core.
        root = CLTreeNode(next_id, 0, zero_homed, graph)
        for child in tops:
            child.parent = root
            root.children.append(child)
        for v in zero_homed:
            node_of[v] = root
        roots = [root]
    else:
        roots = tops
    return CLTree(graph, roots, node_of, core)


def build_cltree_basic(graph, core=None):
    """Basic top-down CL-tree construction (the test oracle).

    Starting from whole connected components (the 0-core), each
    component is recursively split: vertices whose core number equals
    the component's minimum stay homed at this node, the rest fall into
    connected sub-components of the next k-core.
    """
    if core is None:
        core = core_decomposition(graph)
    n = graph.vertex_count
    if n == 0:
        return CLTree(graph, [], [], [])

    node_of = [None] * n
    tops = []
    counter = [0]

    def component_split(members):
        """Return (k_min, homed, list of child vertex-sets)."""
        k_min = min(core[v] for v in members)
        homed = [v for v in members if core[v] == k_min]
        rest = {v for v in members if core[v] > k_min}
        child_sets = []
        seen = set()
        for v in rest:
            if v in seen:
                continue
            comp = {v}
            frontier = [v]
            while frontier:
                u = frontier.pop()
                for w in graph.neighbors(u):
                    if w in rest and w not in comp:
                        comp.add(w)
                        frontier.append(w)
            seen |= comp
            child_sets.append(comp)
        return k_min, homed, child_sets

    # Iterative DFS over (component, parent-node) work items; isolated
    # (core 0) vertices are homed at the global root created below.
    all_seen = set()
    zero_homed = [v for v in graph.vertices() if core[v] == 0]
    for v in graph.vertices():
        if v in all_seen or core[v] == 0:
            continue
        comp = graph.connected_component(v)
        all_seen |= comp
        stack = [(comp, None)]
        while stack:
            members, parent = stack.pop()
            k_min, homed, child_sets = component_split(members)
            node = CLTreeNode(counter[0], k_min, homed, graph)
            counter[0] += 1
            node.parent = parent
            if parent is None:
                tops.append(node)
            else:
                parent.children.append(node)
            for u in homed:
                node_of[u] = node
            for child_set in child_sets:
                stack.append((child_set, node))
    if zero_homed or len(tops) != 1:
        root = CLTreeNode(counter[0], 0, zero_homed, graph)
        for child in tops:
            child.parent = root
            root.children.append(child)
        for v in zero_homed:
            node_of[v] = root
        roots = [root]
    else:
        roots = tops
    return CLTree(graph, roots, node_of, core)
