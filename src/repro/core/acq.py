"""ACQ: attributed community queries (Problem 1 of the paper).

Given a graph ``G``, an integer ``k``, a query vertex ``q`` and a
keyword set ``S subseteq W(q)``, an attributed community (AC) is a
connected subgraph ``Gq`` containing ``q`` in which every vertex has
degree >= k *within Gq* and the shared keyword set
``L(Gq, S) = intersection over v of (W(v) & S)`` has maximal size.

Three query algorithms are implemented, as in Section 3.2:

* ``Inc-S`` (:func:`acq_inc_s`) -- incremental, from smaller candidate
  keyword sets to larger ones, computing qualifying vertex sets by
  scanning the structural community (no index help);
* ``Inc-T`` (:func:`acq_inc_t`) -- the same Apriori-style enumeration,
  but qualifying vertex sets come from CL-tree inverted-list
  intersections and keywords are pre-filtered by index support;
* ``Dec`` (:func:`acq_dec`) -- decremental, from larger candidate sets
  to smaller ones, with support-based keyword shrinking.  Because the
  enumeration stops at the *first* (largest) size with a valid AC,
  ``Dec`` wins whenever the answer shares most of ``S`` -- which is the
  common case on real attributed graphs, hence the paper's remark that
  "Dec is generally faster"; C-Explorer ships with ``Dec``.

All three return identical results (a tested invariant).  A brute
force that enumerates every subset of ``S``
(:func:`brute_force_acq`) is included as the exponential strawman the
paper dismisses, and as the oracle for correctness tests.

The multi-vertex variant (a set ``Q`` of query vertices; Section 3.2)
is supported uniformly: every function accepts either a single vertex
id or an iterable of them.
"""

from itertools import combinations

from repro.core.cltree import build_cltree
from repro.core.community import Community
from repro.core.kcore import connected_k_core, peel_to_min_degree
from repro.util.errors import QueryError

_ALGORITHMS = {}


class AcqQuery:
    """A parsed, validated ACQ query.

    Mirrors the ``Query`` object of the paper's Java API (Figure 4):
    query vertices, the degree constraint ``k`` and the keyword set
    ``S``.  ``keywords=None`` means "use all of ``W(q)``" (the default
    the C-Explorer UI presents when the user ticks every keyword).
    """

    def __init__(self, graph, q, k, keywords=None):
        if isinstance(q, int):
            query_vertices = (q,)
        else:
            query_vertices = tuple(dict.fromkeys(q))  # dedupe, keep order
        if not query_vertices:
            raise QueryError("at least one query vertex is required")
        for v in query_vertices:
            if v not in graph:
                raise QueryError("query vertex {!r} not in graph".format(v))
        if k < 0:
            raise QueryError("degree constraint k must be >= 0")
        shared = frozenset.intersection(
            *(graph.keywords(v) for v in query_vertices))
        if keywords is None:
            keywords = shared
        else:
            keywords = frozenset(keywords)
            if not keywords <= shared:
                extra = sorted(keywords - shared)
                raise QueryError(
                    "keywords {} are not in W(q) of every query vertex"
                    .format(extra))
        self.graph = graph
        self.query_vertices = query_vertices
        self.k = k
        self.keywords = keywords

    def __repr__(self):
        names = [self.graph.display_name(v) for v in self.query_vertices]
        return "AcqQuery(q={}, k={}, |S|={})".format(
            names, self.k, len(self.keywords))


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------

def _structural_community(query, index=None):
    """Vertex set of the connected k-core containing all query vertices.

    Returns ``None`` when no such subgraph exists (core number of some
    query vertex below k, or the query vertices fall into different
    k-core components).
    """
    graph, k = query.graph, query.k
    q0 = query.query_vertices[0]
    if index is not None:
        members = index.community_vertices(q0, k)
        if members is None:
            return None
    else:
        members = connected_k_core(graph, q0, k)
        if members is None:
            return None
    for q in query.query_vertices[1:]:
        if q not in members:
            return None
    return members


def _verify(query, candidate_vertices):
    """Check whether ``candidate_vertices`` supports an AC.

    Peels the induced subgraph to min degree >= k and takes the
    connected component of the query vertices.  Returns the community
    vertex set, or ``None``.
    """
    graph, k, qs = query.graph, query.k, query.query_vertices
    survivors = peel_to_min_degree(graph, candidate_vertices, k, protect=qs)
    if survivors is None:
        return None
    comp = {qs[0]}
    frontier = [qs[0]]
    while frontier:
        u = frontier.pop()
        for w in graph.neighbors(u):
            if w in survivors and w not in comp:
                comp.add(w)
                frontier.append(w)
    if not all(q in comp for q in qs):
        return None
    return comp


def _communities_from_sets(query, winning):
    """Build deduplicated Community objects from verified vertex sets."""
    graph = query.graph
    out = []
    seen = set()
    for members in winning:
        key = frozenset(members)
        if key in seen:
            continue
        seen.add(key)
        shared = frozenset.intersection(
            *(graph.keywords(v) for v in members)) & query.keywords
        out.append(Community(
            graph, members, method="ACQ",
            query_vertices=query.query_vertices, k=query.k,
            shared_keywords=shared))
    # Larger shared-keyword sets first, then larger communities; tie-break
    # on sorted members for deterministic output.
    out.sort(key=lambda c: (-len(c.shared_keywords), -len(c),
                            sorted(c.vertices)))
    return out


def _fallback(query, base):
    """No keyword subset works: return the structural community.

    Its shared keyword set is empty; maximality holds trivially.
    """
    return _communities_from_sets(query, [base])


def _candidate_vertex_sets(graph, base, keywords):
    """Map each keyword to the base vertices whose W(v) contains it.

    Frozen (CSR) graphs take the inverted-index fast path: each
    keyword's qualifying set is one postings-list intersection with
    the structural base instead of a scan over every base vertex's
    keyword set (the keyword-verification loop is where ACQ spends
    most of its time, so this is the intersection worth indexing).
    """
    postings = getattr(graph, "keyword_postings", None)
    if postings is not None:
        lists = postings()
        base = base if isinstance(base, (set, frozenset)) \
            else set(base)
        return {w: set(lists[w] & base) if w in lists else set()
                for w in keywords}
    by_kw = {w: set() for w in keywords}
    for v in base:
        kws = graph.keywords(v)
        for w in keywords:
            if w in kws:
                by_kw[w].add(v)
    return by_kw


def _apriori_next(level_sets):
    """Generate size-(c+1) candidates from valid size-c keyword tuples.

    Classic Apriori join: two sorted tuples sharing their first c-1
    items combine; the result is kept only if all of its size-c subsets
    were valid.
    """
    valid = set(level_sets)
    ordered = sorted(level_sets)
    out = []
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            if a[:-1] != b[:-1]:
                break
            cand = a + (b[-1],)
            if all(tuple(x for j, x in enumerate(cand) if j != drop)
                   in valid for drop in range(len(cand) - 1)):
                out.append(cand)
    return out


# ----------------------------------------------------------------------
# the three query algorithms
# ----------------------------------------------------------------------

def acq_inc_s(query, index=None):
    """Incremental ACQ without index support (``Inc-S``).

    Enumerates keyword combinations bottom-up (size 1, 2, ...); the
    qualifying vertex set of every candidate is recomputed by scanning
    the structural community.  Simple, space-efficient, slowest.
    """
    base = _structural_community(query, index)
    if base is None:
        return []
    graph, k = query.graph, query.k
    q_kws = frozenset.intersection(
        *(graph.keywords(q) for q in query.query_vertices))
    keywords = sorted(query.keywords & q_kws)
    if not keywords:
        return _fallback(query, base)

    best = []
    level = [(w,) for w in keywords]
    while level:
        verified = []
        winners = []
        for cand in level:
            cand_set = frozenset(cand)
            members = {v for v in base
                       if cand_set <= graph.keywords(v)}
            if len(members) <= k:
                continue
            community = _verify(query, members)
            if community is not None:
                verified.append(cand)
                winners.append(community)
        if not verified:
            break
        best = winners
        level = _apriori_next(verified)
    if not best:
        return _fallback(query, base)
    return _communities_from_sets(query, best)


def acq_inc_t(query, index=None):
    """Incremental ACQ with CL-tree support (``Inc-T``).

    Same enumeration order as ``Inc-S`` but qualifying vertex sets come
    from inverted-list intersections, and keywords whose support within
    the structural community is at most ``k`` are dropped up front
    (an AC needs at least ``k + 1`` vertices).
    """
    if index is None:
        index = build_cltree(query.graph)
    base = _structural_community(query, index)
    if base is None:
        return []
    graph, k = query.graph, query.k
    q_kws = frozenset.intersection(
        *(graph.keywords(q) for q in query.query_vertices))
    by_kw = _candidate_vertex_sets(graph, base, query.keywords & q_kws)
    keywords = sorted(w for w, vs in by_kw.items() if len(vs) > k)
    if not keywords:
        return _fallback(query, base)

    best = []
    level = [(w,) for w in keywords]
    cache = {(): frozenset(base)}
    while level:
        verified = []
        winners = []
        for cand in level:
            members = cache.get(cand[:-1], frozenset(base)) & by_kw[cand[-1]]
            if len(members) <= k:
                continue
            cache[cand] = members
            community = _verify(query, members)
            if community is not None:
                verified.append(cand)
                winners.append(community)
        if not verified:
            break
        best = winners
        next_level = _apriori_next(verified)
        cache = {cand: cache[cand] for cand in verified}
        level = next_level
    if not best:
        return _fallback(query, base)
    return _communities_from_sets(query, best)


def acq_dec(query, index=None):
    """Decremental ACQ (``Dec``) -- the algorithm C-Explorer ships with.

    Works top-down from the full keyword set:

    1. shrink ``S``: a keyword whose qualifying vertex set has at most
       ``k`` members is dropped; then each surviving keyword ``w`` is
       verified *alone* -- if the singleton ``{w}`` admits no AC, no
       candidate containing ``w`` can either (candidate vertex sets
       only shrink as keywords are added, and k-core peeling is
       monotone in the candidate set), so ``w`` is eliminated from the
       whole enumeration;
    2. try candidate keyword sets by decreasing size, starting from the
       shrunken ``S`` itself; the first size producing any valid AC is
       the answer, and only candidates down to that size are verified.

    On graphs where communities share most of their theme (the typical
    attributed-graph case) step 2 terminates within the first level or
    two, which is why ``Dec`` beats the incremental variants.
    """
    if index is None:
        index = build_cltree(query.graph)
    base = _structural_community(query, index)
    if base is None:
        return []
    graph, k = query.graph, query.k
    q_kws = frozenset.intersection(
        *(graph.keywords(q) for q in query.query_vertices))
    by_kw = _candidate_vertex_sets(graph, base, query.keywords & q_kws)

    # Support filter, then the (sound) singleton-verification filter.
    singleton_hits = {}
    keywords = []
    for w in sorted(by_kw):
        if len(by_kw[w]) <= k:
            continue
        community = _verify(query, by_kw[w])
        if community is not None:
            keywords.append(w)
            singleton_hits[w] = community
    if not keywords:
        return _fallback(query, base)

    for size in range(len(keywords), 0, -1):
        winners = []
        for cand in combinations(keywords, size):
            if size == 1:
                winners.append(singleton_hits[cand[0]])
                continue
            members = frozenset.intersection(
                *(frozenset(by_kw[w]) for w in cand))
            if len(members) <= k:
                continue
            community = _verify(query, members)
            if community is not None:
                winners.append(community)
        if winners:
            return _communities_from_sets(query, winners)
    return _fallback(query, base)


def brute_force_acq(query):
    """Exponential baseline: verify *every* subset of ``S``.

    The strawman of Section 3.2 ("complexity exponential to the size of
    S ... impractical"); kept as the correctness oracle and for the
    crossover benchmark E10.
    """
    base = _structural_community(query)
    if base is None:
        return []
    graph = query.graph
    keywords = sorted(query.keywords)
    for size in range(len(keywords), 0, -1):
        winners = []
        for cand in combinations(keywords, size):
            cand_set = frozenset(cand)
            members = {v for v in base if cand_set <= graph.keywords(v)}
            community = _verify(query, members)
            if community is not None:
                winners.append(community)
        if winners:
            return _communities_from_sets(query, winners)
    return _fallback(query, base)


_ALGORITHMS.update({
    "inc-s": acq_inc_s,
    "inc-t": acq_inc_t,
    "dec": acq_dec,
})


def acq_search(graph, q, k, keywords=None, algorithm="dec", index=None):
    """Run an ACQ query end to end.

    Parameters
    ----------
    graph:
        The attributed graph.
    q:
        A query vertex id, or an iterable of ids for the multi-vertex
        variant.
    k:
        Minimum within-community degree.
    keywords:
        ``S``; defaults to the full shared keyword set of the query
        vertices.
    algorithm:
        ``"dec"`` (default, as in the deployed system), ``"inc-s"`` or
        ``"inc-t"``.
    index:
        An optional prebuilt :class:`~repro.core.cltree.CLTree`;
        ``inc-t`` and ``dec`` build one on the fly when omitted.

    Returns a list of :class:`Community`, all sharing the maximal
    number of keywords from ``S``, sorted largest-theme-first.
    """
    try:
        func = _ALGORITHMS[algorithm]
    except KeyError:
        raise QueryError(
            "unknown ACQ algorithm {!r}; choose from {}".format(
                algorithm, sorted(_ALGORITHMS))) from None
    query = AcqQuery(graph, q, k, keywords)
    return func(query, index=index)
