"""k-truss decomposition.

The k-truss is the alternative structure-cohesiveness measure the
paper cites (Section 2, Huang et al. [7]): the largest subgraph in
which every edge participates in at least ``k - 2`` triangles.  The
truss-based community search built on it lives in
:mod:`repro.algorithms.truss_search`; this module provides the
decomposition substrate.

Support counting has a CSR fast path: over a
:class:`~repro.graph.frozen.FrozenGraph` the per-vertex neighbour
lists are sorted flat-array slices, so each edge's triangle count is a
sorted-merge intersection over two contiguous runs instead of hash
probes into scattered set buckets.  That is the kernel the engine's
process backend runs per shard (see
:func:`repro.engine.backends.shard_truss_job`).
"""


def _edge_support_csr(graph):
    """Support counting over a frozen CSR graph (sorted-merge kernel).

    Each undirected edge ``(u, v)`` with ``u < v`` is visited once from
    ``u``'s row; the triangle count is the size of the sorted-run
    intersection of the two neighbourhoods.
    """
    indptr, indices = graph.csr()
    support = {}
    n = len(indptr) - 1
    for u in range(n):
        u_start, u_end = indptr[u], indptr[u + 1]
        for i in range(u_start, u_end):
            v = indices[i]
            if v <= u:
                continue
            v_start, v_end = indptr[v], indptr[v + 1]
            a, b = u_start, v_start
            count = 0
            while a < u_end and b < v_end:
                x, y = indices[a], indices[b]
                if x < y:
                    a += 1
                elif y < x:
                    b += 1
                else:
                    count += 1
                    a += 1
                    b += 1
            support[(u, v)] = count
    return support


def edge_support(graph, subset=None):
    """Number of triangles through each edge.

    Returns ``{(u, v): support}`` with ``u < v``.  ``subset`` restricts
    the computation to the induced subgraph on those vertices.  Frozen
    (CSR) graphs take the sorted-merge kernel when unrestricted.
    """
    if subset is None and hasattr(graph, "csr"):
        return _edge_support_csr(graph)
    members = set(subset) if subset is not None else None

    def nbrs(v):
        """Neighbour set of ``v``, restricted to the subset."""
        base = graph.neighbors(v)
        if members is None:
            return set(base) if not isinstance(base, set) else base
        # ``intersection`` accepts any iterable, so this works for
        # both set adjacency and CSR array slices (the read protocol
        # does not promise ``&`` on the raw neighbour collection).
        return members.intersection(base)

    support = {}
    vertices = members if members is not None else graph.vertices()
    for u in vertices:
        nu = nbrs(u)
        for v in nu:
            if u < v:
                # Iterate the smaller adjacency for the intersection.
                nv = nbrs(v)
                small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
                support[(u, v)] = sum(1 for w in small if w in large)
    return support


def truss_decomposition(graph, support=None):
    """Truss number of every edge: ``{(u, v): t}`` with u < v.

    Edge e has truss number t when e belongs to the t-truss but not the
    (t+1)-truss.  Peeling follows the standard algorithm: repeatedly
    remove the edge of minimum support, decrementing the support of the
    edges that formed triangles with it.  Isolated edges get truss 2.
    ``support`` optionally reuses a precomputed :func:`edge_support`
    map (it is consumed destructively).
    """
    if support is None:
        support = edge_support(graph)
    if not support:
        return {}
    # Live adjacency we can shrink as edges are peeled.
    adj = {v: set(graph.neighbors(v)) for v in graph.vertices()}

    # Bucket queue over support values.
    max_sup = max(support.values())
    buckets = [set() for _ in range(max_sup + 1)]
    for e, s in support.items():
        buckets[s].add(e)
    truss = {}
    k = 2
    remaining = len(support)
    floor = 0
    while remaining:
        # Find the lowest non-empty bucket at or above `floor`.
        while floor <= max_sup and not buckets[floor]:
            floor += 1
        if floor > max_sup:
            break
        if floor > k - 2:
            k = floor + 2
        e = buckets[floor].pop()
        u, v = e
        truss[e] = k
        remaining -= 1
        # Remove e and decrement support of every triangle through it.
        small, large = (u, v) if len(adj[u]) <= len(adj[v]) else (v, u)
        for w in list(adj[small]):
            if w in adj[large] and w not in (u, v):
                for other in ((min(u, w), max(u, w)),
                              (min(v, w), max(v, w))):
                    s = support.get(other)
                    if other in truss or s is None:
                        continue
                    if s > floor:
                        buckets[s].discard(other)
                        support[other] = s - 1
                        buckets[s - 1].add(other)
                        if s - 1 < floor:
                            floor = s - 1
        adj[u].discard(v)
        adj[v].discard(u)
    return truss


def max_truss_number(graph):
    """Largest k with a non-empty k-truss (2 for any non-empty edge set)."""
    truss = truss_decomposition(graph)
    return max(truss.values()) if truss else 0


def k_truss(graph, k):
    """Edge set of the k-truss: edges with truss number >= k."""
    if k < 2:
        raise ValueError("k must be at least 2 for a k-truss")
    truss = truss_decomposition(graph)
    return {e for e, t in truss.items() if t >= k}


def connected_k_truss(graph, q, k):
    """Vertices of the k-truss component containing ``q``.

    Connectivity here is ordinary vertex connectivity restricted to
    k-truss edges (the stronger triangle-connectivity variant lives in
    :func:`repro.algorithms.truss_search.truss_community_search`).
    Returns ``None`` when ``q`` touches no k-truss edge.
    """
    edges = k_truss(graph, k)
    adj = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    if q not in adj:
        return None
    seen = {q}
    frontier = [q]
    while frontier:
        nxt = []
        for u in frontier:
            for w in adj[u]:
                if w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return seen
