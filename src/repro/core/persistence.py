"""CL-tree persistence: the offline index artefact.

The paper's Indexing module builds the CL-tree offline; a deployment
wants to build once and reload on server restart instead of paying the
decomposition again.  The format stores the tree topology and core
numbers; inverted lists are rebuilt from the graph on load (they are
derived data, and storing them would double the artefact for no read
benefit).
"""

import json
import os

from repro.core.cltree import CLTree, CLTreeNode
from repro.util.errors import GraphFormatError

_FORMAT = "c-explorer-cltree"


def cltree_to_dict(tree):
    """Serialise a CL-tree to a JSON-ready document."""
    nodes = []
    for root in tree.roots:
        for node in root.subtree_nodes():
            nodes.append({
                "id": node.node_id,
                "k": node.k,
                "vertices": list(node.vertices),
                "children": [c.node_id for c in node.children],
            })
    return {
        "format": _FORMAT,
        "version": 1,
        "core": list(tree.core),
        "roots": [r.node_id for r in tree.roots],
        "nodes": nodes,
    }


def save_cltree(tree, path):
    """Write the index document to ``path``; returns the path.

    The write is atomic (tmp file + ``os.replace``): a crashed or
    concurrent writer can never leave a truncated artefact behind for
    a warm restart to trip over.
    """
    path = os.fspath(path)
    tmp = "{}.tmp.{}".format(path, os.getpid())
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(cltree_to_dict(tree), f)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass
    return path


def cltree_from_dict(doc, graph):
    """Rebuild a CL-tree over ``graph`` from a serialised document.

    The graph must be the one the index was built from (checked via
    vertex count and homed-vertex coverage).
    """
    if doc.get("format") != _FORMAT:
        raise GraphFormatError("not a c-explorer-cltree document")
    core = list(doc["core"])
    if len(core) != graph.vertex_count:
        raise GraphFormatError(
            "index built for {} vertices, graph has {}".format(
                len(core), graph.vertex_count))
    for entry in doc["nodes"]:
        for v in entry["vertices"]:
            if not isinstance(v, int) or not 0 <= v < graph.vertex_count:
                raise GraphFormatError(
                    "node {} homes unknown vertex {!r}".format(
                        entry["id"], v))
    nodes = {}
    for entry in doc["nodes"]:
        node = CLTreeNode(entry["id"], entry["k"], entry["vertices"],
                          graph)
        nodes[entry["id"]] = node
    homed = 0
    node_of = [None] * graph.vertex_count
    for entry in doc["nodes"]:
        node = nodes[entry["id"]]
        for child_id in entry["children"]:
            child = nodes.get(child_id)
            if child is None:
                raise GraphFormatError(
                    "node {} references missing child {}".format(
                        entry["id"], child_id))
            child.parent = node
            node.children.append(child)
        for v in node.vertices:
            node_of[v] = node
            homed += 1
    if homed != graph.vertex_count:
        raise GraphFormatError(
            "index homes {} vertices, graph has {}".format(
                homed, graph.vertex_count))
    roots = [nodes[rid] for rid in doc["roots"]]
    return CLTree(graph, roots, node_of, core)


def load_cltree(path, graph):
    """Read an index document from ``path`` and attach it to ``graph``."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return cltree_from_dict(doc, graph)
