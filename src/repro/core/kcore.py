"""k-core decomposition and peeling.

The k-core ``H_k`` is the largest subgraph in which every vertex has
degree at least ``k`` (Section 3.2).  Three entry points matter to the
rest of the system:

* :func:`core_decomposition` -- every vertex's core number in O(n + m)
  (Batagelj & Zaversnik bucket peeling).  The CL-tree builder and the
  statistics module consume this.
* :func:`peel_to_min_degree` -- generic "remove vertices of degree < k
  until stable" over an arbitrary candidate set; the verification
  primitive shared by ACQ, Global and Local.
* :func:`connected_k_core` -- the connected component of ``H_k``
  containing a query vertex, i.e. exactly what the ``Global`` baseline
  returns for a fixed ``k``.  Accepts a precomputed ``core`` array so
  engine-indexed callers reuse the versioned decomposition instead of
  recomputing O(n + m) per query.

Every kernel has two code paths with identical results (a tested
invariant):

* the seed **adjacency-set** path for mutable
  :class:`~repro.graph.attributed.AttributedGraph` objects;
* a **CSR fast path** for :class:`~repro.graph.frozen.FrozenGraph`
  snapshots, walking the flat ``indptr``/``indices`` arrays directly
  (no per-edge set lookups, no per-call bounds checks).  When NumPy is
  importable, :func:`core_decomposition` additionally vectorises the
  CSR case as level-synchronous peeling (remove every vertex below the
  current level at once, decrement neighbours with one scatter-add) --
  the same peeling order as Batagelj-Zaversnik, so core numbers are
  identical, but each round is a handful of array ops instead of a
  Python loop over edges.
"""

from repro.graph.frozen import neighbor_function

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None


def core_decomposition(graph):
    """Return ``core`` with ``core[v]`` = core number of vertex ``v``.

    Implements the Batagelj-Zaversnik O(n + m) algorithm: vertices are
    kept in an array sorted by current degree with bucket boundaries,
    and each removal decrements neighbours in place.  Frozen (CSR)
    graphs take the flat-array fast path instead.
    """
    if hasattr(graph, "csr"):
        return core_decomposition_csr(graph)
    n = graph.vertex_count
    if n == 0:
        return []
    degree = [graph.degree(v) for v in graph.vertices()]
    max_degree = max(degree)

    # bin_start[d] = index in `order` of the first vertex of degree d.
    bin_count = [0] * (max_degree + 1)
    for d in degree:
        bin_count[d] += 1
    bin_start = [0] * (max_degree + 1)
    total = 0
    for d in range(max_degree + 1):
        bin_start[d] = total
        total += bin_count[d]

    order = [0] * n           # vertices sorted by current degree
    position = [0] * n        # position of each vertex in `order`
    fill = list(bin_start)
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1

    core = list(degree)
    for i in range(n):
        v = order[i]
        core_v = core[v]
        for u in graph.neighbors(v):
            if core[u] > core_v:
                # Move u one bucket down: swap it with the first vertex
                # of its current bucket, then shift the boundary.
                du = core[u]
                pu = position[u]
                pw = bin_start[du]
                w = order[pw]
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_start[du] += 1
                core[u] -= 1
    return core


def core_decomposition_csr(graph):
    """Core numbers of a CSR (frozen) graph.

    Dispatches to the vectorised NumPy kernel when available, else the
    pure-Python flat-array kernel; both return the exact Batagelj-
    Zaversnik core numbers as a plain list.
    """
    if len(graph.indptr) <= 1:
        return []
    if _np is not None:
        csr = graph.csr_numpy()
        if csr is not None:
            return _core_csr_numpy(*csr)
    return _core_csr_python(*graph.csr())


def _core_csr_numpy(indptr, indices):
    """Vectorised level-synchronous peeling over int64 CSR arrays.

    Peel level ``k`` removes, in rounds, every still-alive vertex
    whose residual degree is <= k and assigns it core number ``k``;
    neighbours of the removed batch are decremented with one
    ``subtract.at`` scatter.  Exactly the BZ peeling order batched per
    round, so the result is the same core array.
    """
    n = len(indptr) - 1
    deg = indptr[1:] - indptr[:-1]
    core = _np.zeros(n, dtype=_np.int64)
    alive = _np.ones(n, dtype=bool)
    remaining = n
    k = 0
    while remaining:
        peel = _np.flatnonzero(alive & (deg <= k))
        if peel.size == 0:
            k += 1
            continue
        core[peel] = k
        alive[peel] = False
        remaining -= int(peel.size)
        starts = indptr[peel]
        counts = indptr[peel + 1] - starts
        total = int(counts.sum())
        if total:
            # Concatenate the removed batch's index ranges without a
            # Python loop: position j of block i is starts[i] + (j -
            # exclusive_prefix(counts)[i]).
            offs = _np.zeros(peel.size, dtype=_np.int64)
            _np.cumsum(counts[:-1], out=offs[1:])
            pos = _np.arange(total, dtype=_np.int64) \
                + _np.repeat(starts - offs, counts)
            _np.subtract.at(deg, indices[pos], 1)
    return core.tolist()


def _core_csr_python(indptr, indices):
    """Pure-Python BZ bucket peeling over the flat CSR arrays."""
    n = len(indptr) - 1
    degree = [indptr[v + 1] - indptr[v] for v in range(n)]
    max_degree = max(degree)
    bin_count = [0] * (max_degree + 1)
    for d in degree:
        bin_count[d] += 1
    bin_start = [0] * (max_degree + 1)
    total = 0
    for d in range(max_degree + 1):
        bin_start[d] = total
        total += bin_count[d]
    order = [0] * n
    position = [0] * n
    fill = list(bin_start)
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1
    core = list(degree)
    for i in range(n):
        v = order[i]
        core_v = core[v]
        for u in indices[indptr[v]:indptr[v + 1]]:
            cu = core[u]
            if cu > core_v:
                pu = position[u]
                pw = bin_start[cu]
                w = order[pw]
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_start[cu] += 1
                core[u] = cu - 1
    return core


def max_core_number(graph):
    """Largest k such that the k-core is non-empty (0 for empty graph)."""
    core = core_decomposition(graph)
    return max(core) if core else 0


def k_core(graph, k):
    """Vertex set of ``H_k``, the (possibly disconnected) k-core."""
    if k < 0:
        raise ValueError("k must be non-negative")
    core = core_decomposition(graph)
    return {v for v in graph.vertices() if core[v] >= k}


def peel_to_min_degree(graph, candidates, k, protect=()):
    """Largest subset of ``candidates`` whose induced min degree >= k.

    Iteratively deletes vertices whose degree within the surviving set
    is below ``k``.  If any vertex in ``protect`` is deleted the peel
    is considered failed and ``None`` is returned -- this is how ACQ
    verification notices that the query vertex cannot survive.

    Runs in O(sum of candidate degrees); frozen graphs walk the flat
    CSR arrays instead of per-vertex neighbour sets, and -- when NumPy
    is importable -- vectorise the induced-degree initialisation (one
    gather + one segmented sum instead of a Python membership test
    per half-edge).  That initialisation is where ACQ's keyword
    verification loop spends most of its time: every candidate
    keyword set is peeled once, and typically most of it survives.
    """
    alive = set(candidates)
    protect = set(protect)
    if not protect <= alive:
        return None
    neighbors = neighbor_function(graph)
    deg = _induced_degrees(graph, alive)
    if deg is None:
        deg = {v: sum(1 for u in neighbors(v) if u in alive)
               for v in alive}
    queue = [v for v, d in deg.items() if d < k]
    removed = set(queue)
    while queue:
        v = queue.pop()
        if v in protect:
            return None
        alive.discard(v)
        for u in neighbors(v):
            if u in alive:
                deg[u] -= 1
                if deg[u] < k and u not in removed:
                    removed.add(u)
                    queue.append(u)
    if not protect <= alive:
        return None
    return alive


def _induced_degrees(graph, alive):
    """Vectorised ``{v: degree within alive}`` over a CSR graph.

    Returns ``None`` when the fast path does not apply (no NumPy, not
    a CSR graph, or a candidate set too small to amortise the array
    setup); callers fall back to the per-edge Python count.
    """
    if _np is None or len(alive) < 48:
        return None
    csr_numpy = getattr(graph, "csr_numpy", None)
    if csr_numpy is None:
        return None
    csr = csr_numpy()
    if csr is None:
        return None
    indptr, indices = csr
    members = _np.fromiter(alive, dtype=_np.int64, count=len(alive))
    mask = _np.zeros(len(indptr) - 1, dtype=bool)
    mask[members] = True
    starts = indptr[members]
    counts = indptr[members + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return dict.fromkeys(alive, 0)
    # Concatenate the members' index ranges without a Python loop
    # (same trick as the vectorised core kernel), gather the alive
    # mask over them, and reduce per segment.  Zero-degree members
    # are excluded from the reduceat boundaries entirely: an empty
    # segment would make reduceat return a stray element instead of
    # 0, and a *trailing* one would put its boundary at ``total``,
    # which reduceat rejects as out of bounds.
    offsets = _np.zeros(len(members), dtype=_np.int64)
    _np.cumsum(counts[:-1], out=offsets[1:])
    pos = _np.arange(total, dtype=_np.int64) \
        + _np.repeat(starts - offsets, counts)
    alive_hits = mask[indices[pos]].astype(_np.int64)
    degs = _np.zeros(len(members), dtype=_np.int64)
    populated = _np.flatnonzero(counts)
    degs[populated] = _np.add.reduceat(alive_hits, offsets[populated])
    return dict(zip(members.tolist(), degs.tolist()))


def connected_k_core(graph, q, k, core=None):
    """Connected component of ``H_k`` containing ``q``; None if absent.

    This is the community the ``Global`` algorithm (Sozio & Gionis)
    returns when the user fixes the degree constraint to ``k`` -- the
    largest connected subgraph containing ``q`` with min degree >= k.

    ``core`` optionally supplies precomputed core numbers (e.g. the
    engine's versioned per-graph decomposition) so repeated queries
    skip the O(n + m) recomputation; when given it must describe
    ``graph``'s current state.
    """
    if core is None:
        core = core_decomposition(graph)
    if core[q] < k:
        return None
    neighbors = neighbor_function(graph)
    seen = {q}
    frontier = [q]
    while frontier:
        nxt = []
        for u in frontier:
            for w in neighbors(u):
                if core[w] >= k and w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return seen
