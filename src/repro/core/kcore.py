"""k-core decomposition and peeling.

The k-core ``H_k`` is the largest subgraph in which every vertex has
degree at least ``k`` (Section 3.2).  Three entry points matter to the
rest of the system:

* :func:`core_decomposition` -- every vertex's core number in O(n + m)
  (Batagelj & Zaversnik bucket peeling).  The CL-tree builder and the
  statistics module consume this.
* :func:`peel_to_min_degree` -- generic "remove vertices of degree < k
  until stable" over an arbitrary candidate set; the verification
  primitive shared by ACQ, Global and Local.
* :func:`connected_k_core` -- the connected component of ``H_k``
  containing a query vertex, i.e. exactly what the ``Global`` baseline
  returns for a fixed ``k``.
"""


def core_decomposition(graph):
    """Return ``core`` with ``core[v]`` = core number of vertex ``v``.

    Implements the Batagelj-Zaversnik O(n + m) algorithm: vertices are
    kept in an array sorted by current degree with bucket boundaries,
    and each removal decrements neighbours in place.
    """
    n = graph.vertex_count
    if n == 0:
        return []
    degree = [graph.degree(v) for v in graph.vertices()]
    max_degree = max(degree)

    # bin_start[d] = index in `order` of the first vertex of degree d.
    bin_count = [0] * (max_degree + 1)
    for d in degree:
        bin_count[d] += 1
    bin_start = [0] * (max_degree + 1)
    total = 0
    for d in range(max_degree + 1):
        bin_start[d] = total
        total += bin_count[d]

    order = [0] * n           # vertices sorted by current degree
    position = [0] * n        # position of each vertex in `order`
    fill = list(bin_start)
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1

    core = list(degree)
    for i in range(n):
        v = order[i]
        core_v = core[v]
        for u in graph.neighbors(v):
            if core[u] > core_v:
                # Move u one bucket down: swap it with the first vertex
                # of its current bucket, then shift the boundary.
                du = core[u]
                pu = position[u]
                pw = bin_start[du]
                w = order[pw]
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_start[du] += 1
                core[u] -= 1
    return core


def max_core_number(graph):
    """Largest k such that the k-core is non-empty (0 for empty graph)."""
    core = core_decomposition(graph)
    return max(core) if core else 0


def k_core(graph, k):
    """Vertex set of ``H_k``, the (possibly disconnected) k-core."""
    if k < 0:
        raise ValueError("k must be non-negative")
    core = core_decomposition(graph)
    return {v for v in graph.vertices() if core[v] >= k}


def peel_to_min_degree(graph, candidates, k, protect=()):
    """Largest subset of ``candidates`` whose induced min degree >= k.

    Iteratively deletes vertices whose degree within the surviving set
    is below ``k``.  If any vertex in ``protect`` is deleted the peel
    is considered failed and ``None`` is returned -- this is how ACQ
    verification notices that the query vertex cannot survive.

    Runs in O(sum of candidate degrees).
    """
    alive = set(candidates)
    protect = set(protect)
    if not protect <= alive:
        return None
    deg = {}
    queue = []
    for v in alive:
        d = sum(1 for u in graph.neighbors(v) if u in alive)
        deg[v] = d
        if d < k:
            queue.append(v)
    removed = set(queue)
    while queue:
        v = queue.pop()
        if v in protect:
            return None
        alive.discard(v)
        for u in graph.neighbors(v):
            if u in alive:
                deg[u] -= 1
                if deg[u] < k and u not in removed:
                    removed.add(u)
                    queue.append(u)
    if not protect <= alive:
        return None
    return alive


def connected_k_core(graph, q, k):
    """Connected component of ``H_k`` containing ``q``; None if absent.

    This is the community the ``Global`` algorithm (Sozio & Gionis)
    returns when the user fixes the degree constraint to ``k`` -- the
    largest connected subgraph containing ``q`` with min degree >= k.
    """
    core = core_decomposition(graph)
    if core[q] < k:
        return None
    member = {v for v in graph.vertices() if core[v] >= k}
    seen = {q}
    frontier = [q]
    while frontier:
        nxt = []
        for u in frontier:
            for w in graph.neighbors(u):
                if w in member and w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return seen
